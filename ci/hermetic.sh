#!/usr/bin/env bash
# Hermeticity guard: the workspace must have zero registry/git
# dependencies so it builds on machines with no crates.io access.
#
# Two independent checks:
#   1. every `[dependencies]`-section entry in every Cargo.toml must be a
#      path or workspace dependency (no version-only, registry, or git
#      requirements);
#   2. the committed Cargo.lock must list only workspace members (no
#      `source = "registry+..."` entries).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. Manifests: only path/workspace dependency forms allowed. -----------
# Walk each manifest; inside any *dependencies* section, a `name = ...`
# line must contain `path =` or `workspace = true` (table form), and a
# bare `name = "1.0"` version string is rejected.
while IFS= read -r manifest; do
    awk -v file="$manifest" '
        /^\[/ {
            in_deps = ($0 ~ /dependencies([.\]]|$)/)
            next
        }
        in_deps && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=/ {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/) {
                printf "%s: non-path dependency: %s\n", file, $0
                bad = 1
            }
        }
        END { exit bad }
    ' "$manifest" || fail=1
done < <(find . -name Cargo.toml -not -path "./target/*")

# --- 1b. baat-exec: zero dependencies, full stop. ---------------------------
# The worker pool is the one crate allowed `unsafe`; keeping its
# dependency section empty keeps that audit surface self-contained (and
# guarantees the engine's parallelism never grows a hidden runtime).
if awk '
    /^\[/ { in_deps = ($0 ~ /^\[dependencies\]/); next }
    in_deps && /^[[:space:]]*[A-Za-z0-9_.-]+[[:space:]]*=/ { found = 1 }
    END { exit !found }
' crates/exec/Cargo.toml; then
    echo "crates/exec/Cargo.toml declares dependencies — the worker pool must stay dependency-free"
    fail=1
fi

# --- 2. Lockfile: no registry or git sources. ------------------------------
if [ ! -f Cargo.lock ]; then
    echo "Cargo.lock missing — commit it so offline builds are reproducible"
    fail=1
elif grep -n '^source = ' Cargo.lock; then
    echo "Cargo.lock references external sources (above) — workspace is not hermetic"
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "hermeticity check FAILED"
    exit 1
fi
echo "ok: all dependencies are in-tree path crates"
