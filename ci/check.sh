#!/usr/bin/env bash
# Tier-1 gate: everything CI requires, runnable locally with one command.
#
# Runs fully offline — CARGO_NET_OFFLINE forces cargo to fail loudly if
# anything tries to reach a registry instead of hanging or silently
# fetching. Pair with ci/hermetic.sh, which checks the manifests
# themselves.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "ok: tier-1 gate passed"
