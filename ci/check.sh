#!/usr/bin/env bash
# Tier-1 gate: everything CI requires, runnable locally with one command.
#
# Usage: ci/check.sh [MODE]
#
#   lint   — fmt + clippy + rustdoc (all deny-warnings, deprecated APIs denied)
#   test   — release build + full workspace test suite
#   smoke  — faulted-determinism + OpenMetrics-golden console smokes
#   replay — checkpoint/kill/resume gate: an interrupted checkpointing
#            run resumed in a fresh process must byte-match the
#            uninterrupted run's artifacts
#   fleet  — fleet-scale smoke (release): 1k-host wall-clock budget +
#            thread-invariance, 8-thread sharding speedup gate, 10k-host
#            smoke. `fleet --threads N` runs the wall-clock gates with N
#            engine threads (exported as BAAT_ENGINE_THREADS)
#   perf   — perf regression gate against the committed baseline
#   all    — every mode above, in order (the default)
#
# CI runs one mode per matrix job so lint, tests, the fleet smoke and
# the perf gate fail independently and cache independently; `all`
# reproduces the full gate locally.
#
# Runs fully offline — CARGO_NET_OFFLINE forces cargo to fail loudly if
# anything tries to reach a registry instead of hanging or silently
# fetching. Pair with ci/hermetic.sh, which checks the manifests
# themselves.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

MODE="${1:-all}"
if [[ $# -gt 0 ]]; then shift; fi
while [[ $# -gt 0 ]]; do
    case "$1" in
    --threads)
        # Engine worker threads for the fleet wall-clock gates (intra-step
        # sharding; distinct from BAAT_RUNNER_THREADS scenario fan-out).
        export BAAT_ENGINE_THREADS="${2:?--threads needs a count}"
        shift 2
        ;;
    *)
        echo "error: unknown argument '$1' (supported: --threads N)" >&2
        exit 2
        ;;
    esac
done

# Temp dirs registered here are removed on exit, whichever modes ran.
CLEANUP_DIRS=()
cleanup() {
    if ((${#CLEANUP_DIRS[@]})); then
        rm -rf "${CLEANUP_DIRS[@]}"
    fi
}
trap cleanup EXIT

run_lint() {
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy (deny warnings + deprecated)"
    # -D deprecated keeps callers off soft-removed APIs (e.g. the old
    # VariationParams::from_spreads constructor) even where the
    # deprecation warning would otherwise be allowed.
    cargo clippy --workspace --all-targets -- -D warnings -D deprecated

    echo "==> cargo doc (deny warnings)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
}

run_test() {
    echo "==> cargo build --release"
    cargo build --workspace --release

    echo "==> cargo test"
    cargo test --workspace -q
}

run_smoke() {
    echo "==> faulted-scenario determinism smoke"
    # Two identical faulted console runs must emit byte-identical event
    # logs, the faulted log must actually carry fault events, and a clean
    # run must carry none.
    SMOKE_DIR="$(mktemp -d)"
    CLEANUP_DIRS+=("$SMOKE_DIR")
    CONSOLE=(cargo run --release -q -p baat-bench --bin console --)
    "${CONSOLE[@]}" --scheme baat --weather cloudy --seed 7 \
        --faults heavy --jsonl "$SMOKE_DIR/a" >/dev/null
    "${CONSOLE[@]}" --scheme baat --weather cloudy --seed 7 \
        --faults heavy --jsonl "$SMOKE_DIR/b" >/dev/null
    cmp "$SMOKE_DIR/a/events.jsonl" "$SMOKE_DIR/b/events.jsonl"
    grep -q '"kind":"fault_injected"' "$SMOKE_DIR/a/events.jsonl"
    "${CONSOLE[@]}" --scheme baat --weather cloudy --seed 7 \
        --jsonl "$SMOKE_DIR/clean" >/dev/null
    if grep -q '"kind":"fault_injected"' "$SMOKE_DIR/clean/events.jsonl"; then
        echo "error: clean run emitted fault events" >&2
        exit 1
    fi

    echo "==> OpenMetrics golden + trace schema"
    # The faulted run's OpenMetrics snapshot is a golden: byte-compare it
    # against the checked-in reference (regenerate by copying the fresh
    # snapshot over ci/golden/metrics.om after an intended change). The
    # span export must satisfy the trace schema, and `console diff` must
    # agree the two identical runs are identical.
    cmp "$SMOKE_DIR/a/metrics.om" ci/golden/metrics.om
    "${CONSOLE[@]}" trace-check "$SMOKE_DIR/a/spans.jsonl"
    "${CONSOLE[@]}" diff "$SMOKE_DIR/a/events.jsonl" "$SMOKE_DIR/b/events.jsonl" >/dev/null

    echo "==> live scrape endpoint smoke"
    # `console serve` must print its bound address before stepping,
    # answer /healthz and /run while the run progresses, expose a
    # schema-valid OpenMetrics snapshot on /metrics that carries the
    # exec.* pool-introspection family (the scenario is a sharded fleet
    # run), keep serving under --linger after the run completes, and
    # shut down cleanly when a client requests /quit. Probes use bash's
    # /dev/tcp so the smoke stays dependency-free.
    SERVE_LOG="$SMOKE_DIR/serve.log"
    "${CONSOLE[@]}" serve --linger --scheme baat --weather cloudy --seed 7 \
        --fleet 1000 --threads 4 >"$SERVE_LOG" 2>&1 &
    SERVE_PID=$!
    PORT=""
    for _ in $(seq 1 600); do
        PORT="$(sed -n 's|^serving http://127\.0\.0\.1:\([0-9]*\)/.*|\1|p' "$SERVE_LOG")"
        [ -n "$PORT" ] && break
        sleep 0.05
    done
    if [ -z "$PORT" ]; then
        echo "error: console serve never printed its bound address" >&2
        cat "$SERVE_LOG" >&2
        exit 1
    fi
    http_get() {
        # One HTTP/1.0 exchange against the serving console; body only.
        exec 3<>"/dev/tcp/127.0.0.1/$PORT"
        printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
        sed '1,/^\r*$/d' <&3 >"$2"
        exec 3<&- 3>&-
    }
    http_get /healthz "$SMOKE_DIR/healthz.body"
    grep -q '^ok' "$SMOKE_DIR/healthz.body"
    http_get /run "$SMOKE_DIR/run.body"
    grep -q '"seed":7' "$SMOKE_DIR/run.body"
    # A scrape taken while the run is still stepping must already be
    # schema-valid (the exporter snapshots atomically).
    http_get /metrics "$SMOKE_DIR/scrape.om"
    grep -q '# EOF' "$SMOKE_DIR/scrape.om"
    "${CONSOLE[@]}" trace-check "$SMOKE_DIR/scrape.om"
    # Wait for the run to finish lingering, then take a final scrape:
    # it must still validate and now carry the full exec.* family.
    for _ in $(seq 1 2400); do
        grep -q 'run complete' "$SERVE_LOG" && break
        sleep 0.05
    done
    grep -q 'run complete' "$SERVE_LOG"
    http_get /metrics "$SMOKE_DIR/scrape-final.om"
    grep -q '^exec_pool_threads' "$SMOKE_DIR/scrape-final.om"
    grep -q '^exec_worker_0_busy_ns' "$SMOKE_DIR/scrape-final.om"
    grep -q '^exec_merge_wait_' "$SMOKE_DIR/scrape-final.om"
    "${CONSOLE[@]}" trace-check "$SMOKE_DIR/scrape-final.om"
    http_get /quit "$SMOKE_DIR/quit.body"
    grep -q '^bye' "$SMOKE_DIR/quit.body"
    wait "$SERVE_PID"

    echo "==> chemistry ablation smoke"
    # Both chemistries run the same short day. An explicit
    # --chemistry lead-acid run must stay byte-identical to the default
    # run (the flag only adds run metadata and the run.chemistry gauge),
    # while the li-ion run must actually diverge — a real ablation, not a
    # relabelled rerun. Run metadata records the chemistry either way.
    "${CONSOLE[@]}" --scheme baat --weather cloudy --seed 7 \
        --chemistry lead-acid --jsonl "$SMOKE_DIR/pb" >/dev/null
    "${CONSOLE[@]}" --scheme baat --weather cloudy --seed 7 \
        --chemistry li-ion --jsonl "$SMOKE_DIR/li" >/dev/null
    cmp "$SMOKE_DIR/pb/events.jsonl" "$SMOKE_DIR/clean/events.jsonl"
    grep -q '"chemistry":"lead-acid"' "$SMOKE_DIR/pb/run.jsonl"
    grep -q '"chemistry":"li-ion"' "$SMOKE_DIR/li/run.jsonl"
    grep -q 'run_chemistry\|run\.chemistry' "$SMOKE_DIR/li/metrics.om"
    if cmp -s "$SMOKE_DIR/li/events.jsonl" "$SMOKE_DIR/clean/events.jsonl"; then
        echo "error: li-ion run replayed the lead-acid event stream" >&2
        exit 1
    fi
    "${CONSOLE[@]}" trace-check "$SMOKE_DIR/li/spans.jsonl"
}

run_replay() {
    echo "==> checkpoint / kill / resume replay gate"
    # An interrupted checkpointing run, resumed from its last complete
    # snapshot in a fresh process, must rebuild byte-identical run
    # artifacts to the same scenario run uninterrupted — and `replay`
    # must land on the same state hash from two different checkpoints.
    # The console binary is invoked directly (not through `cargo run`)
    # so the kill below hits the simulation process itself.
    cargo build --release -q -p baat-bench --bin console
    CONSOLE_BIN=target/release/console
    REPLAY_DIR="$(mktemp -d)"
    CLEANUP_DIRS+=("$REPLAY_DIR")
    SCENARIO=(--scheme baat --weather cloudy,rainy,cloudy --seed 11 --faults light)

    "$CONSOLE_BIN" checkpoint --dir "$REPLAY_DIR/full" --every 400 \
        "${SCENARIO[@]}" >/dev/null

    "$CONSOLE_BIN" checkpoint --dir "$REPLAY_DIR/cut" --every 400 \
        "${SCENARIO[@]}" >/dev/null &
    CUT_PID=$!
    for _ in $(seq 1 600); do
        if [ "$(ls "$REPLAY_DIR/cut"/step-*.snap 2>/dev/null | wc -l)" -ge 3 ]; then
            break
        fi
        sleep 0.05
    done
    kill -9 "$CUT_PID" 2>/dev/null || true
    wait "$CUT_PID" 2>/dev/null || true

    # Snapshots are sunk sequentially, so every file except the
    # lexically-newest is complete; drop the newest (the kill may have
    # cut it off mid-write) and resume from the survivor in a fresh
    # process. A resumed run rewrites events/trace/result from step 0,
    # so the artifacts must byte-match the uninterrupted run's.
    rm -f "$REPLAY_DIR/cut"/events.jsonl "$REPLAY_DIR/cut"/trace.jsonl \
        "$REPLAY_DIR/cut"/result.jsonl
    NEWEST="$(ls "$REPLAY_DIR/cut"/step-*.snap | sort | tail -1)"
    rm -f "$NEWEST"
    LAST="$(ls "$REPLAY_DIR/cut"/step-*.snap | sort | tail -1)"
    "$CONSOLE_BIN" resume "$LAST" >/dev/null
    cmp "$REPLAY_DIR/full/events.jsonl" "$REPLAY_DIR/cut/events.jsonl"
    cmp "$REPLAY_DIR/full/trace.jsonl" "$REPLAY_DIR/cut/trace.jsonl"
    cmp "$REPLAY_DIR/full/result.jsonl" "$REPLAY_DIR/cut/result.jsonl"

    # Replaying to one step from two different checkpoints — the full
    # run's snapshot at the target (zero re-steps) vs the cut run's
    # earlier one (400 re-steps) — must print the same state hash.
    TARGET="$(basename "$LAST" .snap)"
    TARGET="$((10#${TARGET#step-} + 400))"
    HASH_FULL="$("$CONSOLE_BIN" replay --dir "$REPLAY_DIR/full" --to "$TARGET" |
        grep -oE 'state hash [0-9a-f]+')"
    HASH_CUT="$("$CONSOLE_BIN" replay --dir "$REPLAY_DIR/cut" --to "$TARGET" |
        grep -oE 'state hash [0-9a-f]+')"
    [ -n "$HASH_FULL" ] && [ "$HASH_FULL" = "$HASH_CUT" ]

    # `replay --event` resolves a recorded event's line index to the
    # first state containing it and must land there cleanly.
    FAULT_LINE="$(grep -n '"kind":"fault_injected"' "$REPLAY_DIR/full/events.jsonl" |
        head -1 | cut -d: -f1)"
    "$CONSOLE_BIN" replay --dir "$REPLAY_DIR/full" --event "$((FAULT_LINE - 1))" |
        grep -qE 'state hash [0-9a-f]+'
}

run_fleet() {
    echo "==> fleet-scale smoke (1k + 10k hosts, release, ${BAAT_ENGINE_THREADS:-1} engine threads)"
    # A seeded 1,000-host window must fit the wall-clock budget at the
    # requested engine thread count, the 8-thread sharded engine must be
    # >=4x faster than sequential (skipped below 8 CPUs), a 10k-host
    # window must fit its own budget, and a full 1k-host day must be
    # byte-identical between 1 and 8 runner threads. `--ignored` selects
    # the release-only fleet gates; the small always-on test rides along.
    cargo test --release -p baat-bench --test fleet -- --include-ignored
}

run_perf() {
    if [[ "${BAAT_SKIP_PERF:-0}" != "1" ]]; then
        echo "==> perf regression smoke (set BAAT_SKIP_PERF=1 to skip)"
        # Re-measures the hot paths and fails when best-case throughput
        # falls >20% below the committed BENCH_10.json baseline, or when
        # tracing+health overhead on a faulted day exceeds 1µs/step.
        # Each run is also appended to the registry named by
        # BAAT_PERF_HISTORY (if set), so CI can feed `console perf-trend`.
        cargo bench -p baat-bench --bench perf -- --check
    else
        echo "==> perf regression smoke skipped (BAAT_SKIP_PERF=1)"
    fi
}

case "$MODE" in
lint) run_lint ;;
test) run_test ;;
smoke) run_smoke ;;
replay) run_replay ;;
fleet) run_fleet ;;
perf) run_perf ;;
all)
    run_lint
    run_test
    run_smoke
    run_replay
    run_fleet
    run_perf
    ;;
*)
    echo "error: unknown mode '$MODE' (lint|test|smoke|replay|fleet|perf|all)" >&2
    exit 2
    ;;
esac

echo "ok: ci/check.sh $MODE passed"
