//! BAAT reproduction — umbrella crate.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can write `baat_repro::core::Scheme` etc. The
//! individual crates are:
//!
//! * [`units`] — typed physical quantities;
//! * [`battery`] — lead-acid electrochemistry and the five aging
//!   mechanisms;
//! * [`solar`] — irradiance, weather and PV generation;
//! * [`workload`] — the six paper workloads and VMs;
//! * [`server`] — hosts, DVFS, hypervisor, cluster;
//! * [`power`] — switcher, charger, sensors, power tables;
//! * [`metrics`] — NAT, CF, PC, DDT, DR and the Eq-6/Eq-7 decision
//!   values;
//! * [`obs`] — observability: metric registry, step profiler, JSONL
//!   export;
//! * [`sim`] — the discrete-time green-datacenter engine;
//! * [`core`] — the BAAT policies (e-Buff, BAAT-s, BAAT-h, BAAT),
//!   lifetime and availability analyses;
//! * [`cost`] — depreciation and TCO models.
//!
//! # Examples
//!
//! ```
//! use baat_repro::core::Scheme;
//! use baat_repro::sim::{run_simulation, SimConfig};
//! use baat_repro::solar::Weather;
//!
//! let config = SimConfig::prototype_day(Weather::Cloudy, 7);
//! let report = run_simulation(config, &mut Scheme::Baat.build())?;
//! assert!(report.total_work > 0.0);
//! # Ok::<(), baat_repro::sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baat_battery as battery;
pub use baat_core as core;
pub use baat_cost as cost;
pub use baat_metrics as metrics;
pub use baat_obs as obs;
pub use baat_power as power;
pub use baat_server as server;
pub use baat_sim as sim;
pub use baat_solar as solar;
pub use baat_units as units;
pub use baat_workload as workload;
