//! Planned aging (paper §IV.D): when replacement batteries would outlive
//! the datacenter, BAAT deepens the allowed depth of discharge (Eq 7) to
//! convert the unusable tail of battery life into present performance.
//!
//! This example sweeps the expected service horizon and shows the Eq-7
//! DoD goal, the work gained, and the battery damage spent — the Fig
//! 21/22 trade-off as a program.
//!
//! Run with: `cargo run --release --example planned_aging`

use baat_repro::core::{Baat, PlannedAging, Scheme};
use baat_repro::metrics::{dod_goal, PlannedAgingInputs};
use baat_repro::sim::{SimConfig, Simulation};
use baat_repro::solar::Weather;
use baat_repro::units::{AmpHours, SimDuration};

fn config(seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![Weather::Cloudy, Weather::Rainy])
        .dt(SimDuration::from_secs(30))
        .sample_every(20)
        .seed(seed);
    b.build().expect("config is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // First, the raw Eq-7 arithmetic: what DoD does a given plan imply?
    println!("Eq 7 — DoD goal for a fresh 70 Ah node (35 000 Ah life-long):");
    for (cycles, label) in [
        (3000.0, "10-year horizon"),
        (1000.0, "~3-year horizon"),
        (600.0, "~2-year horizon"),
        (350.0, "~1-year horizon"),
    ] {
        let goal = dod_goal(&PlannedAgingInputs {
            total_throughput: AmpHours::new(35_000.0),
            used_throughput: AmpHours::ZERO,
            capacity: AmpHours::new(70.0),
            planned_cycles: cycles,
        })
        .expect("fresh battery has remaining life");
        println!("  {label:>16} ({cycles:>5.0} cycles) → DoD goal {goal}");
    }

    // Then the closed loop: run the simulator with planned aging at
    // different horizons against the e-Buff baseline.
    let baseline = {
        let sim = Simulation::new(config(7))?;
        sim.run(&mut Scheme::EBuff.build())?
    };
    println!(
        "\ntwo hard days (cloudy+rainy), e-Buff baseline: {:.1} core-h, damage {:.4}\n",
        baseline.total_work,
        baseline.mean_damage()
    );
    println!(
        "{:>16} {:>10} {:>10} {:>10}",
        "service horizon", "work c-h", "vs e-Buff", "damage"
    );
    for service_days in [200.0, 400.0, 800.0, 1600.0, 3200.0] {
        let mut policy = Baat::with_planned_aging(PlannedAging {
            service_days,
            cycles_per_day: 1.0,
        });
        let sim = Simulation::new(config(7))?;
        let report = sim.run(&mut policy)?;
        println!(
            "{:>14.0} d {:>10.1} {:>9.1}% {:>10.4}",
            service_days,
            report.total_work,
            (report.total_work / baseline.total_work - 1.0) * 100.0,
            report.mean_damage(),
        );
    }
    println!(
        "\nShort horizons license deep discharge (more work, more damage); long \
         horizons\nprotect batteries the datacenter will outlive anyway — the paper's \
         Fig 22 shape."
    );
    Ok(())
}
