//! A day in the life of a green datacenter: run all four Table-4 schemes
//! over the same matched solar days (sunny / cloudy / rainy, young and
//! old batteries) and compare throughput, downtime and battery stress —
//! the experiment behind the paper's Figs 13 and 20.
//!
//! Run with: `cargo run --release --example green_datacenter_day`

use baat_repro::core::Scheme;
use baat_repro::sim::{SimConfig, Simulation};
use baat_repro::solar::Weather;

const OLD_DAMAGE: f64 = 0.55;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:<7} {:<6} {:>9} {:>6} {:>9} {:>9} {:>8}",
        "weather", "battery", "scheme", "work c-h", "jobs", "down (s)", "deep (s)", "damage"
    );
    for weather in [Weather::Sunny, Weather::Cloudy, Weather::Rainy] {
        for old in [false, true] {
            for scheme in Scheme::ALL {
                // Matched days: the same seed reproduces the same solar
                // trace and workload arrivals for every scheme (§VI.B's
                // similar-day methodology).
                let config = SimConfig::prototype_day(weather, 42);
                let mut sim = Simulation::new(config)?;
                if old {
                    sim.pre_age_batteries(OLD_DAMAGE);
                }
                let mut policy = scheme.build();
                let report = sim.run(&mut policy)?;
                let downtime: u64 = report.nodes.iter().map(|n| n.downtime.as_secs()).sum();
                let worst = report.worst_node().expect("report has nodes");
                println!(
                    "{:<8} {:<7} {:<6} {:>9.1} {:>6} {:>9} {:>9} {:>8.4}",
                    weather.to_string(),
                    if old { "old" } else { "young" },
                    report.policy,
                    report.total_work,
                    report.completed_jobs,
                    downtime,
                    worst.deep_discharge_time.as_secs(),
                    report.mean_damage() - if old { OLD_DAMAGE } else { 0.0 },
                );
            }
            println!();
        }
    }
    println!(
        "Reading: e-Buff crashes servers when batteries trip (downtime), BAAT-s \
         throttles\nthem preemptively, BAAT-h shuffles VMs off hot batteries, and \
         coordinated BAAT\nkeeps servers up at near-full speed while aging the \
         batteries slowest."
    );
    Ok(())
}
