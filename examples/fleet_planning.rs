//! Fleet planning: estimate battery service life per site, derive the
//! annual depreciation bill, and see how many servers the BAAT savings
//! buy — the Figs 14, 16 and 17 pipeline as a capacity-planning tool.
//!
//! Run with: `cargo run --release --example fleet_planning`

use baat_repro::core::{estimate_lifetime, weather_plan_for_sunshine, Scheme};
use baat_repro::cost::{BatteryCostModel, TcoModel};
use baat_repro::sim::SimConfig;
use baat_repro::solar::Location;
use baat_repro::units::{Dollars, SimDuration, WattHours, Watts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let battery_cost =
        BatteryCostModel::from_energy_price(WattHours::new(840.0), Dollars::new(150.0))?;
    let tco = TcoModel::new(Dollars::new(180.0), battery_cost)?;
    let fleet = 1000;

    println!(
        "{:<14} {:>9} {:>11} {:>11} {:>11} {:>10}",
        "site", "sunshine", "e-Buff life", "BAAT life", "saving/yr", "expansion"
    );
    for site in Location::presets() {
        let plan = weather_plan_for_sunshine(site.sunshine_fraction(), 8, 7);
        let mut builder = SimConfig::builder();
        builder
            .weather_plan(plan)
            .dt(SimDuration::from_secs(30))
            .sample_every(40)
            .seed(7);
        let config = builder.build()?;

        let ebuff =
            estimate_lifetime(Scheme::EBuff, config.clone())?.expect("cycling causes damage");
        let baat = estimate_lifetime(Scheme::Baat, config)?.expect("cycling causes damage");

        let saving_per_node = battery_cost.annual_depreciation(ebuff.worst_days)?.as_f64()
            - battery_cost.annual_depreciation(baat.worst_days)?.as_f64();
        let headroom =
            Watts::new((site.sunshine_fraction().value() - 0.35).max(0.0) * fleet as f64 * 55.0);
        let expansion = tco.expansion_ratio(
            fleet,
            ebuff.worst_days,
            baat.worst_days,
            headroom,
            Watts::new(130.0),
        )?;

        println!(
            "{:<14} {:>9} {:>9.0} d {:>9.0} d {:>9.2} $ {:>10}",
            site.name(),
            format!("{}", site.sunshine_fraction()),
            ebuff.worst_days,
            baat.worst_days,
            saving_per_node,
            format!("{expansion}"),
        );
    }
    println!(
        "\nSavings are per battery node per year; expansion is the share of extra \
         servers a\n{fleet}-node site can add without raising TCO (paper Fig 17)."
    );
    Ok(())
}
