//! Battery forensics: drive one lead-acid unit through contrasting abuse
//! patterns and read back what the five aging mechanisms did — the §II.B
//! aging-mechanism story and the §III metrics, without the datacenter on
//! top.
//!
//! Run with: `cargo run --release --example battery_forensics`

use baat_repro::battery::{Battery, BatteryOp, BatterySpec, Manufacturer};
use baat_repro::metrics::{AgingMetrics, BatteryRatings};
use baat_repro::units::{Celsius, Dod, SimDuration, SimInstant, Watts};

/// Applies `days` of a usage pattern and reports the damage breakdown.
fn abuse(label: &str, days: u32, pattern: impl Fn(&mut Battery, &mut SimInstant)) {
    let mut battery = Battery::new(BatterySpec::prototype());
    let mut now = SimInstant::START;
    for _ in 0..days {
        pattern(&mut battery, &mut now);
    }
    let ratings = BatteryRatings {
        capacity: battery.spec().capacity(),
        lifetime_throughput: battery.spec().lifetime_throughput(),
    };
    let metrics = AgingMetrics::from_accumulator(battery.telemetry().lifetime(), &ratings);
    println!("— {label} ({days} days) —");
    for (mechanism, damage) in battery.aging().breakdown().iter() {
        println!("  {mechanism:<15} {damage:>8.5}");
    }
    println!(
        "  total {:.4} → capacity {:.1}%, NAT {:.4}, CF {}, PC(Eq4) {:.2}, DDT {}",
        battery.aging().total_damage(),
        battery.aging().capacity_fraction() * 100.0,
        metrics.nat,
        metrics.cf.map_or("—".to_owned(), |v| format!("{v:.2}")),
        metrics.pc.weighted_value(),
        metrics.ddt,
    );
    println!();
}

fn steps(battery: &mut Battery, now: &mut SimInstant, op: BatteryOp, count: u32) {
    let dt = SimDuration::from_minutes(5);
    for _ in 0..count {
        battery.step(op, Celsius::new(27.0), *now, dt);
        *now += dt;
    }
}

fn main() {
    // Backup-style float service: barely used.
    abuse("float service (backup battery)", 60, |b, now| {
        steps(b, now, BatteryOp::Charge(Watts::new(20.0)), 288);
    });

    // Healthy shallow cycling: discharge to ~70 % SoC, recharge.
    abuse("shallow daily cycling", 60, |b, now| {
        steps(b, now, BatteryOp::Discharge(Watts::new(80.0)), 18);
        steps(b, now, BatteryOp::Charge(Watts::new(100.0)), 30);
        steps(b, now, BatteryOp::Idle, 240);
    });

    // The killer: deep discharge and late recharge (sulphation country).
    abuse("deep discharge, late recharge", 60, |b, now| {
        steps(b, now, BatteryOp::Discharge(Watts::new(110.0)), 40);
        steps(b, now, BatteryOp::Idle, 120); // sits discharged
        steps(b, now, BatteryOp::Charge(Watts::new(100.0)), 60);
        steps(b, now, BatteryOp::Idle, 68);
    });

    // What the manufacturers promise at different depths (Fig 10).
    println!("— manufacturer cycle-life curves (Fig 10) —");
    for dod in [0.25, 0.50, 0.80] {
        let d = Dod::new(dod).expect("static DoD");
        print!("  DoD {:>3.0}%:", dod * 100.0);
        for m in Manufacturer::ALL {
            print!("  {} {:>5.0} cycles", m, m.cycles_to_eol(d));
        }
        println!();
    }
}
