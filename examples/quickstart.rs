//! Quickstart: simulate one cloudy day of the paper's six-server solar
//! prototype under full BAAT, and print what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use baat_repro::core::Scheme;
use baat_repro::sim::{run_simulation, SimConfig};
use baat_repro::solar::Weather;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The prototype defaults: six servers, per-server 70 Ah lead-acid
    // bank, an 8 kWh-sunny-day PV array, servers powered 08:30–18:30.
    let config = SimConfig::prototype_day(Weather::Cloudy, 42);

    let mut policy = Scheme::Baat.build();
    let report = run_simulation(config, &mut policy)?;

    println!("policy           : {}", report.policy);
    println!("useful work      : {:.1} core-hours", report.total_work);
    println!("batch jobs done  : {}", report.completed_jobs);
    println!("VM migrations    : {}", report.migrations);
    println!("unserved demand  : {}", report.unserved_energy);
    println!("curtailed solar  : {}", report.curtailed_energy);
    println!("overnight grid   : {}", report.grid_charge_energy);
    println!();
    println!("per-battery outcome:");
    for node in &report.nodes {
        println!(
            "  node {} — damage {:.4}, capacity {:.1}%, NAT {:.4}, CF {}, deep time {}",
            node.node,
            node.damage,
            node.capacity_fraction * 100.0,
            node.lifetime_metrics.nat,
            node.lifetime_metrics
                .cf
                .map_or("—".to_owned(), |v| format!("{v:.2}")),
            node.deep_discharge_time,
        );
    }
    let worst = report.worst_node().expect("report has nodes");
    println!();
    println!(
        "worst battery node: {} (damage {:.4}) — the node BAAT's hiding targets",
        worst.node, worst.damage
    );
    Ok(())
}
