//! Aging-health monitoring and the flight recorder.
//!
//! [`HealthMonitor`] evaluates per-node rule-based checks once per
//! control interval — SoC-floor violations, aging-rate anomalies
//! against a trailing baseline, sustained degraded mode, and charger
//! mode thrash — and emits edge-triggered typed [`HealthEvent`]s
//! (one when a check enters violation, one when it recovers).
//!
//! [`FlightRecorder`] is the post-mortem companion: a bounded ring
//! buffer of recent pre-encoded JSONL lines (telemetry rows, events,
//! span markers) that the engine dumps whenever a node enters degraded
//! mode or a server shuts down, so a crash can be triaged without a
//! full-fidelity trace.
//!
//! Both are engine-fed, deterministic, and inert when built from a
//! disabled [`Obs`]: no samples are buffered, no events allocated, no
//! lines retained.

use std::collections::VecDeque;

use crate::json::JsonLine;
use crate::registry::{Counter, Obs};

/// Tuning knobs for the per-node health checks.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// A SoC-floor violation fires when `soc < floor - margin`.
    pub soc_floor_margin: f64,
    /// An aging anomaly fires when the per-interval damage rate exceeds
    /// `factor ×` the trailing-baseline mean rate.
    pub aging_rate_factor: f64,
    /// Number of trailing intervals in the aging-rate baseline; the
    /// check stays quiet until the baseline window is full.
    pub aging_baseline_window: usize,
    /// Damage-rate floor below which the anomaly check never fires
    /// (suppresses noise around a near-zero baseline).
    pub aging_rate_epsilon: f64,
    /// Consecutive degraded intervals before "sustained degraded"
    /// fires.
    pub sustained_degraded_intervals: u32,
    /// Trailing window (in intervals) over which charger mode switches
    /// are counted.
    pub thrash_window_intervals: usize,
    /// Mode switches within the window at or above which "charger
    /// thrash" fires.
    pub thrash_switch_limit: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            soc_floor_margin: 0.01,
            aging_rate_factor: 4.0,
            aging_baseline_window: 16,
            aging_rate_epsilon: 1e-9,
            sustained_degraded_intervals: 3,
            thrash_window_intervals: 16,
            thrash_switch_limit: 6,
        }
    }
}

/// The rule-based checks the monitor evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthCheck {
    /// Battery SoC dropped below its enforced floor.
    SocFloorViolation,
    /// Per-interval aging rate spiked against the trailing baseline.
    AgingRateAnomaly,
    /// Node has been in degraded (stale-telemetry) mode for several
    /// consecutive intervals.
    SustainedDegraded,
    /// Charger is oscillating between charge stages.
    ChargerModeThrash,
}

impl HealthCheck {
    /// All checks, in evaluation order.
    pub const ALL: [HealthCheck; 4] = [
        HealthCheck::SocFloorViolation,
        HealthCheck::AgingRateAnomaly,
        HealthCheck::SustainedDegraded,
        HealthCheck::ChargerModeThrash,
    ];

    /// Stable snake-case name used in exports and metric names.
    pub fn name(self) -> &'static str {
        match self {
            HealthCheck::SocFloorViolation => "soc_floor_violation",
            HealthCheck::AgingRateAnomaly => "aging_rate_anomaly",
            HealthCheck::SustainedDegraded => "sustained_degraded",
            HealthCheck::ChargerModeThrash => "charger_mode_thrash",
        }
    }

    fn index(self) -> usize {
        match self {
            HealthCheck::SocFloorViolation => 0,
            HealthCheck::AgingRateAnomaly => 1,
            HealthCheck::SustainedDegraded => 2,
            HealthCheck::ChargerModeThrash => 3,
        }
    }
}

/// One edge-triggered health transition.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// Simulated second the transition was observed.
    pub at_s: u64,
    /// Node the check applies to.
    pub node: usize,
    /// Which check transitioned.
    pub check: HealthCheck,
    /// The observed value that tripped (or cleared) the check.
    pub value: f64,
    /// The threshold it was compared against.
    pub threshold: f64,
    /// `true` when the check entered violation, `false` on recovery.
    pub active: bool,
}

impl HealthEvent {
    /// Serializes the event as one JSON object line.
    pub fn to_json(&self) -> String {
        let mut line = JsonLine::new();
        line.u64_field("at_s", self.at_s)
            .u64_field("node", self.node as u64)
            .str_field("check", self.check.name())
            .f64_field("value", self.value)
            .f64_field("threshold", self.threshold)
            .bool_field("active", self.active);
        line.finish()
    }
}

/// One node's observation for one control interval, fed by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeHealthSample {
    /// Node index.
    pub node: usize,
    /// Battery state of charge, 0..=1.
    pub soc: f64,
    /// Currently enforced SoC floor, 0..=1.
    pub soc_floor: f64,
    /// Cumulative aging damage of the node's battery.
    pub damage: f64,
    /// `true` while the node runs on stale telemetry.
    pub degraded: bool,
    /// Cumulative charger mode switches of the node's bank.
    pub charger_mode_switches: u64,
    /// `true` while the host is powered on.
    pub online: bool,
}

#[derive(Debug, Clone, Default)]
struct NodeState {
    last_damage: Option<f64>,
    rate_baseline: VecDeque<f64>,
    degraded_streak: u32,
    switch_history: VecDeque<u64>,
    active: [bool; 4],
}

/// Per-node rule-based health monitor.
///
/// The engine pushes one [`NodeHealthSample`] per node each control
/// interval and then calls [`HealthMonitor::evaluate`]; transitions are
/// appended to the event log and counted in lazily registered
/// `health.<check>` counters. Inert (allocation-free) when built from a
/// disabled [`Obs`].
#[derive(Debug, Clone, Default)]
pub struct HealthMonitor {
    enabled: bool,
    config: HealthConfig,
    obs: Obs,
    nodes: Vec<NodeState>,
    pending: Vec<NodeHealthSample>,
    events: Vec<HealthEvent>,
    counters: [Option<Counter>; 4],
}

impl HealthMonitor {
    /// Creates a monitor bound to `obs`; inert if `obs` is disabled.
    pub fn new(config: HealthConfig, obs: &Obs) -> Self {
        Self {
            enabled: obs.is_enabled(),
            config,
            obs: obs.clone(),
            nodes: Vec::new(),
            pending: Vec::new(),
            events: Vec::new(),
            counters: [None, None, None, None],
        }
    }

    /// `true` when the monitor records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Buffers one node's observation for the next [`evaluate`] call.
    /// No-op (allocation-free) when disabled.
    ///
    /// [`evaluate`]: HealthMonitor::evaluate
    pub fn push_sample(&mut self, sample: NodeHealthSample) {
        if self.enabled {
            self.pending.push(sample);
        }
    }

    /// Evaluates every buffered sample at simulated second `at_s`,
    /// emitting edge-triggered events. No-op when disabled.
    pub fn evaluate(&mut self, at_s: u64) {
        if !self.enabled {
            return;
        }
        for i in 0..self.pending.len() {
            let sample = self.pending[i];
            if self.nodes.len() <= sample.node {
                self.nodes.resize(sample.node + 1, NodeState::default());
            }
            self.evaluate_node(at_s, sample);
        }
        self.pending.clear();
    }

    fn evaluate_node(&mut self, at_s: u64, s: NodeHealthSample) {
        let cfg = self.config.clone();
        let state = &mut self.nodes[s.node];

        // 1. SoC-floor violation.
        let floor_threshold = s.soc_floor - cfg.soc_floor_margin;
        let floor_violated = s.online && s.soc < floor_threshold;

        // 2. Aging-rate anomaly vs the trailing baseline.
        let rate = state
            .last_damage
            .map_or(0.0, |prev| (s.damage - prev).max(0.0));
        let baseline_full = state.rate_baseline.len() >= cfg.aging_baseline_window;
        let baseline_mean = if state.rate_baseline.is_empty() {
            0.0
        } else {
            state.rate_baseline.iter().sum::<f64>() / state.rate_baseline.len() as f64
        };
        let rate_threshold = (baseline_mean * cfg.aging_rate_factor).max(cfg.aging_rate_epsilon);
        let rate_anomalous = baseline_full && rate > rate_threshold;

        // 3. Sustained degraded mode.
        state.degraded_streak = if s.degraded {
            state.degraded_streak.saturating_add(1)
        } else {
            0
        };
        let sustained = state.degraded_streak >= cfg.sustained_degraded_intervals;

        // 4. Charger mode thrash over the trailing window.
        let switches_in_window = state
            .switch_history
            .front()
            .map_or(0, |&oldest| s.charger_mode_switches.saturating_sub(oldest));
        let window_full = state.switch_history.len() >= cfg.thrash_window_intervals;
        let thrashing = window_full && switches_in_window >= cfg.thrash_switch_limit;

        let observations = [
            (
                HealthCheck::SocFloorViolation,
                floor_violated,
                s.soc,
                floor_threshold,
            ),
            (
                HealthCheck::AgingRateAnomaly,
                rate_anomalous,
                rate,
                rate_threshold,
            ),
            (
                HealthCheck::SustainedDegraded,
                sustained,
                state.degraded_streak as f64,
                cfg.sustained_degraded_intervals as f64,
            ),
            (
                HealthCheck::ChargerModeThrash,
                thrashing,
                switches_in_window as f64,
                cfg.thrash_switch_limit as f64,
            ),
        ];

        // Roll the trailing state forward *after* evaluation so the
        // baseline never includes the interval being judged.
        state.last_damage = Some(s.damage);
        state.rate_baseline.push_back(rate);
        while state.rate_baseline.len() > cfg.aging_baseline_window {
            state.rate_baseline.pop_front();
        }
        state.switch_history.push_back(s.charger_mode_switches);
        while state.switch_history.len() > cfg.thrash_window_intervals {
            state.switch_history.pop_front();
        }

        let mut transitions: [Option<HealthEvent>; 4] = [None, None, None, None];
        for (check, active, value, threshold) in observations {
            let idx = check.index();
            let state = &mut self.nodes[s.node];
            if state.active[idx] != active {
                state.active[idx] = active;
                transitions[idx] = Some(HealthEvent {
                    at_s,
                    node: s.node,
                    check,
                    value,
                    threshold,
                    active,
                });
            }
        }
        for event in transitions.into_iter().flatten() {
            if event.active {
                self.counter(event.check).inc();
            }
            self.events.push(event);
        }
    }

    fn counter(&mut self, check: HealthCheck) -> &Counter {
        let idx = check.index();
        if self.counters[idx].is_none() {
            // Registered lazily so runs that never trip a check export
            // exactly the same metric set as before this module existed.
            let name = match check {
                HealthCheck::SocFloorViolation => "health.soc_floor_violation",
                HealthCheck::AgingRateAnomaly => "health.aging_rate_anomaly",
                HealthCheck::SustainedDegraded => "health.sustained_degraded",
                HealthCheck::ChargerModeThrash => "health.charger_mode_thrash",
            };
            self.counters[idx] = Some(self.obs.counter(name));
        }
        self.counters[idx].as_ref().expect("just inserted")
    }

    /// All transitions emitted so far, in emission order.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Number of transitions emitted so far.
    pub fn events_len(&self) -> usize {
        self.events.len()
    }

    /// `true` while `check` is in violation on `node`.
    pub fn is_active(&self, node: usize, check: HealthCheck) -> bool {
        self.nodes
            .get(node)
            .is_some_and(|s| s.active[check.index()])
    }

    /// Drains the event log (used to flush into the [`Obs`] store at
    /// end of run).
    pub fn take_events(&mut self) -> Vec<HealthEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Maximum dumps a [`FlightRecorder`] retains (oldest evicted first).
pub const MAX_FLIGHT_DUMPS: usize = 16;

/// One flight-recorder dump: the ring contents at trigger time.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Simulated second of the trigger.
    pub at_s: u64,
    /// Stable trigger name (`degraded_mode`, `server_shutdown`).
    pub reason: &'static str,
    /// The buffered JSONL lines, oldest first.
    pub lines: Vec<String>,
}

/// Bounded ring buffer of recent pre-encoded JSONL lines, dumped on
/// degraded-mode entry or server shutdown.
///
/// The recorder never encodes anything itself — the engine pushes lines
/// it already has (telemetry rows, timed events, span markers), and
/// only when [`FlightRecorder::is_enabled`] is true, keeping the
/// disabled path allocation-free.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    enabled: bool,
    cap: usize,
    ring: VecDeque<String>,
    dumps: Vec<FlightDump>,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `cap` lines; inert when
    /// `enabled` is false.
    pub fn new(cap: usize, enabled: bool) -> Self {
        Self {
            enabled: enabled && cap > 0,
            cap,
            ring: VecDeque::new(),
            dumps: Vec::new(),
        }
    }

    /// `true` when the recorder retains lines. Callers gate line
    /// construction on this so a disabled recorder costs nothing.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends one pre-encoded JSONL line, evicting the oldest when
    /// full. No-op when disabled.
    pub fn push(&mut self, line: String) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(line);
    }

    /// Snapshots the ring as a dump tagged with `reason`. The ring
    /// keeps its contents (a later trigger sees the same recent past).
    /// At most [`MAX_FLIGHT_DUMPS`] dumps are retained, oldest evicted.
    pub fn dump(&mut self, reason: &'static str, at_s: u64) {
        if !self.enabled {
            return;
        }
        if self.dumps.len() == MAX_FLIGHT_DUMPS {
            self.dumps.remove(0);
        }
        self.dumps.push(FlightDump {
            at_s,
            reason,
            lines: self.ring.iter().cloned().collect(),
        });
    }

    /// Dumps captured so far.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Drains the captured dumps (used to flush into the [`Obs`] store
    /// at end of run).
    pub fn take_dumps(&mut self) -> Vec<FlightDump> {
        std::mem::take(&mut self.dumps)
    }
}

impl Obs {
    /// Stores health events for export (no-op when disabled).
    pub fn record_health_events(&self, events: Vec<HealthEvent>) {
        if let Some(inner) = self.inner.as_ref() {
            inner
                .health_events
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .extend(events);
        }
    }

    /// Renders the stored health events as JSONL (one event per line).
    pub fn health_jsonl(&self) -> String {
        let Some(inner) = self.inner.as_ref() else {
            return String::new();
        };
        let events = inner
            .health_events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut out = String::new();
        for event in events.iter() {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Stores flight-recorder dumps for export (no-op when disabled).
    pub fn record_flight_dumps(&self, dumps: Vec<FlightDump>) {
        if let Some(inner) = self.inner.as_ref() {
            inner
                .flight_dumps
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .extend(dumps);
        }
    }

    /// Renders the stored flight dumps as JSONL: each dump is one
    /// header line (`flight_dump`, `reason`, `at_s`, `lines`) followed
    /// by its buffered lines wrapped as `{"flight_dump":i,"data":…}`.
    pub fn flight_jsonl(&self) -> String {
        let Some(inner) = self.inner.as_ref() else {
            return String::new();
        };
        let dumps = inner
            .flight_dumps
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut out = String::new();
        for (i, dump) in dumps.iter().enumerate() {
            let mut header = JsonLine::new();
            header
                .u64_field("flight_dump", i as u64)
                .str_field("reason", dump.reason)
                .u64_field("at_s", dump.at_s)
                .u64_field("lines", dump.lines.len() as u64);
            out.push_str(&header.finish());
            out.push('\n');
            for line in &dump.lines {
                let mut wrapped = JsonLine::new();
                wrapped
                    .u64_field("flight_dump", i as u64)
                    .raw_field("data", line);
                out.push_str(&wrapped.finish());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: usize) -> NodeHealthSample {
        NodeHealthSample {
            node,
            soc: 0.8,
            soc_floor: 0.3,
            damage: 0.0,
            degraded: false,
            charger_mode_switches: 0,
            online: true,
        }
    }

    fn run_interval(m: &mut HealthMonitor, at_s: u64, s: NodeHealthSample) {
        m.push_sample(s);
        m.evaluate(at_s);
    }

    #[test]
    fn soc_floor_violation_is_edge_triggered() {
        let obs = Obs::enabled();
        let mut m = HealthMonitor::new(HealthConfig::default(), &obs);
        run_interval(&mut m, 0, sample(0));
        let mut low = sample(0);
        low.soc = 0.2;
        run_interval(&mut m, 60, low);
        run_interval(&mut m, 120, low); // still low: no second event
        run_interval(&mut m, 180, sample(0)); // recovered
        let events = m.events();
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(events[0].active && events[0].at_s == 60);
        assert!(!events[1].active && events[1].at_s == 180);
        assert_eq!(events[0].check, HealthCheck::SocFloorViolation);
        assert!(obs
            .metrics_jsonl()
            .contains(r#""name":"health.soc_floor_violation","value":1"#));
    }

    #[test]
    fn offline_node_is_not_a_floor_violation() {
        let obs = Obs::enabled();
        let mut m = HealthMonitor::new(HealthConfig::default(), &obs);
        let mut s = sample(0);
        s.soc = 0.1;
        s.online = false;
        run_interval(&mut m, 0, s);
        assert!(m.events().is_empty());
    }

    #[test]
    fn aging_anomaly_needs_a_full_baseline() {
        let obs = Obs::enabled();
        let cfg = HealthConfig {
            aging_baseline_window: 3,
            aging_rate_factor: 2.0,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg, &obs);
        let mut s = sample(0);
        // Steady rate of 0.001 per interval fills the baseline.
        for i in 0..5u64 {
            s.damage = 0.001 * i as f64;
            run_interval(&mut m, i * 60, s);
        }
        assert!(m.events().is_empty());
        // A 10× spike trips the anomaly.
        s.damage += 0.01;
        run_interval(&mut m, 360, s);
        let events = m.events();
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].check, HealthCheck::AgingRateAnomaly);
        assert!(events[0].active);
        assert!(m.is_active(0, HealthCheck::AgingRateAnomaly));
    }

    #[test]
    fn sustained_degraded_fires_after_streak() {
        let obs = Obs::enabled();
        let mut m = HealthMonitor::new(HealthConfig::default(), &obs);
        let mut s = sample(1);
        s.degraded = true;
        run_interval(&mut m, 0, s);
        run_interval(&mut m, 60, s);
        assert!(m.events().is_empty());
        run_interval(&mut m, 120, s); // third consecutive interval
        assert_eq!(m.events().len(), 1);
        assert_eq!(m.events()[0].check, HealthCheck::SustainedDegraded);
        assert_eq!(m.events()[0].node, 1);
        s.degraded = false;
        run_interval(&mut m, 180, s);
        assert_eq!(m.events().len(), 2);
        assert!(!m.events()[1].active);
    }

    #[test]
    fn charger_thrash_counts_switches_in_window() {
        let obs = Obs::enabled();
        let cfg = HealthConfig {
            thrash_window_intervals: 4,
            thrash_switch_limit: 4,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg, &obs);
        let mut s = sample(0);
        // Two switches per interval: window of 4 sees 8 ≥ 4 once full.
        for i in 0..6u64 {
            s.charger_mode_switches = 2 * i;
            run_interval(&mut m, i * 60, s);
        }
        let events = m.events();
        assert!(!events.is_empty(), "{events:?}");
        assert_eq!(events[0].check, HealthCheck::ChargerModeThrash);
    }

    #[test]
    fn disabled_monitor_buffers_nothing() {
        let obs = Obs::disabled();
        let mut m = HealthMonitor::new(HealthConfig::default(), &obs);
        assert!(!m.is_enabled());
        let mut s = sample(0);
        s.soc = 0.0;
        run_interval(&mut m, 0, s);
        assert!(m.events().is_empty());
        assert!(m.pending.is_empty());
        assert!(m.nodes.is_empty());
    }

    #[test]
    fn health_events_export_through_obs() {
        let obs = Obs::enabled();
        let mut m = HealthMonitor::new(HealthConfig::default(), &obs);
        let mut s = sample(2);
        s.soc = 0.1;
        run_interval(&mut m, 30, s);
        obs.record_health_events(m.take_events());
        let jsonl = obs.health_jsonl();
        assert!(
            jsonl.contains(r#""check":"soc_floor_violation""#),
            "{jsonl}"
        );
        assert!(jsonl.contains(r#""node":2"#));
        assert!(m.events().is_empty(), "take_events drained the log");
    }

    #[test]
    fn flight_recorder_ring_is_bounded_and_dumps() {
        let mut f = FlightRecorder::new(3, true);
        for i in 0..5 {
            f.push(format!("{{\"i\":{i}}}"));
        }
        f.dump("degraded_mode", 900);
        assert_eq!(f.dumps().len(), 1);
        let dump = &f.dumps()[0];
        assert_eq!(dump.lines.len(), 3);
        assert_eq!(dump.lines[0], "{\"i\":2}"); // oldest two evicted
        assert_eq!(dump.reason, "degraded_mode");

        let obs = Obs::enabled();
        obs.record_flight_dumps(f.take_dumps());
        let jsonl = obs.flight_jsonl();
        assert!(jsonl.starts_with(
            "{\"flight_dump\":0,\"reason\":\"degraded_mode\",\"at_s\":900,\"lines\":3}\n"
        ));
        assert!(jsonl.contains("\"data\":{\"i\":4}"));
    }

    #[test]
    fn disabled_flight_recorder_retains_nothing() {
        let mut f = FlightRecorder::new(8, false);
        assert!(!f.is_enabled());
        f.push("x".to_owned());
        f.dump("server_shutdown", 1);
        assert!(f.dumps().is_empty());
        assert!(f.ring.is_empty());
    }

    #[test]
    fn dump_count_is_bounded() {
        let mut f = FlightRecorder::new(2, true);
        f.push("a".to_owned());
        for i in 0..(MAX_FLIGHT_DUMPS as u64 + 4) {
            f.dump("degraded_mode", i);
        }
        assert_eq!(f.dumps().len(), MAX_FLIGHT_DUMPS);
        assert_eq!(f.dumps()[0].at_s, 4); // oldest evicted
    }
}
