//! OpenMetrics-style text exporter for the metric registry.
//!
//! Renders the [`Obs`] snapshot in the OpenMetrics text format so the
//! registry can be scraped (or golden-snapshot checked) without any
//! JSONL-aware tooling: a `# TYPE` line per metric family, `_total`
//! samples for counters, cumulative `_bucket{le="…"}` series plus
//! `_sum`/`_count` for histograms, and a closing `# EOF`.
//!
//! Metric names are sanitized to the OpenMetrics charset: every
//! character outside `[a-zA-Z0-9_:]` (the registry uses dots) maps to
//! `_`.

use crate::registry::{Obs, SampleValue};

/// Maps a registry metric name onto the OpenMetrics charset.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Formats a float the OpenMetrics way (`+Inf`/`-Inf`/`NaN` tokens).
fn number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

impl Obs {
    /// Renders the metric snapshot in the OpenMetrics text format.
    ///
    /// Deterministic: families are emitted in snapshot (name) order and
    /// values use Rust's shortest-roundtrip float formatting, so a
    /// seeded run produces a byte-identical export.
    ///
    /// # Examples
    ///
    /// ```
    /// use baat_obs::Obs;
    ///
    /// let obs = Obs::enabled();
    /// obs.counter("sim.actions.applied").add(3);
    /// let text = obs.metrics_openmetrics();
    /// assert!(text.contains("sim_actions_applied_total 3\n"));
    /// assert!(text.ends_with("# EOF\n"));
    /// ```
    pub fn metrics_openmetrics(&self) -> String {
        let mut out = String::new();
        for sample in self.snapshot() {
            let name = sanitize(&sample.name);
            match &sample.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n"));
                    out.push_str(&format!("{name}_total {v}\n"));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n"));
                    out.push_str(&format!("{name} {}\n", number(*v)));
                }
                SampleValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    // Registry buckets are disjoint; OpenMetrics wants
                    // cumulative counts per upper bound.
                    let mut cumulative = 0u64;
                    for (i, &count) in h.buckets.iter().enumerate() {
                        if count == 0 {
                            continue;
                        }
                        cumulative += count;
                        let bound = if i == 0 { 0 } else { 1u64 << (i - 1) };
                        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gain_the_total_suffix() {
        let obs = Obs::enabled();
        obs.counter("sim.steps").add(42);
        let text = obs.metrics_openmetrics();
        assert!(text.contains("# TYPE sim_steps counter\n"));
        assert!(text.contains("sim_steps_total 42\n"));
    }

    #[test]
    fn gauges_render_plain_values() {
        let obs = Obs::enabled();
        obs.gauge("battery.soc").set(0.75);
        let text = obs.metrics_openmetrics();
        assert!(text.contains("# TYPE battery_soc gauge\n"));
        assert!(text.contains("battery_soc 0.75\n"));
    }

    #[test]
    fn non_finite_gauges_use_openmetrics_tokens() {
        let obs = Obs::enabled();
        obs.gauge("a").set(f64::NAN);
        obs.gauge("b").set(f64::INFINITY);
        obs.gauge("c").set(f64::NEG_INFINITY);
        let text = obs.metrics_openmetrics();
        assert!(text.contains("a NaN\n"));
        assert!(text.contains("b +Inf\n"));
        assert!(text.contains("c -Inf\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let obs = Obs::enabled();
        let h = obs.histogram("sizes");
        for v in [0, 1, 2, 3, 1024] {
            h.observe(v);
        }
        let text = obs.metrics_openmetrics();
        assert!(text.contains("# TYPE sizes histogram\n"));
        assert!(text.contains("sizes_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("sizes_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("sizes_bucket{le=\"2\"} 4\n"));
        assert!(text.contains("sizes_bucket{le=\"1024\"} 5\n"));
        assert!(text.contains("sizes_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("sizes_sum 1030\n"));
        assert!(text.contains("sizes_count 5\n"));
    }

    #[test]
    fn export_always_ends_with_eof() {
        assert_eq!(Obs::disabled().metrics_openmetrics(), "# EOF\n");
        assert!(Obs::enabled().metrics_openmetrics().ends_with("# EOF\n"));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("sim.fallback.actions"), "sim_fallback_actions");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("ok_name:sub"), "ok_name:sub");
    }
}
