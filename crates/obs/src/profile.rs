//! Per-stage step profiler.
//!
//! The simulation step is a fixed pipeline (solar → switcher → charger →
//! battery-step → policy-control → placement-rank → placement →
//! recorder). Each stage is
//! timed with an RAII guard: [`Obs::time`] returns a [`StageTimer`]
//! whose `Drop` records the elapsed wall-clock nanoseconds and bumps the
//! call count. When the context is disabled the guard is empty and
//! `Instant::now` is never called, so profiling is free when off.
//!
//! Wall-clock durations are inherently non-deterministic; they are kept
//! out of `SimReport` and out of golden snapshots. Only *call counts*
//! are stable across runs.

use std::sync::atomic::Ordering;
use std::time::Instant;

use crate::registry::Obs;

/// A pipeline stage of one simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Solar-array output computation (weather, clouds, irradiance).
    Solar,
    /// Power-path switcher routing decisions.
    Switcher,
    /// Charger stage/acceptance computation.
    Charger,
    /// Electro-chemical battery integration step.
    BatteryStep,
    /// Policy `control` invocation (the BAAT decision pass).
    PolicyControl,
    /// Placement-order production: incremental fleet-score refresh and
    /// ranked-order maintenance (or, for custom policies, the
    /// `placement_order` call itself). Split out of `Placement` so
    /// ranking cost and admission cost report separately.
    PlacementRank,
    /// VM arrival placement and pending-queue retries (admission walks;
    /// order production is timed as [`Stage::PlacementRank`]).
    Placement,
    /// Trace-row sampling into the `Recorder`.
    Recorder,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 8;

    /// All stages, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Solar,
        Stage::Switcher,
        Stage::Charger,
        Stage::BatteryStep,
        Stage::PolicyControl,
        Stage::PlacementRank,
        Stage::Placement,
        Stage::Recorder,
    ];

    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Solar => "solar",
            Stage::Switcher => "switcher",
            Stage::Charger => "charger",
            Stage::BatteryStep => "battery_step",
            Stage::PolicyControl => "policy_control",
            Stage::PlacementRank => "placement_rank",
            Stage::Placement => "placement",
            Stage::Recorder => "recorder",
        }
    }
}

impl Obs {
    /// Starts timing `stage`; the elapsed time is recorded when the
    /// returned guard drops. A disabled context returns an inert guard
    /// without reading the clock.
    ///
    /// # Examples
    ///
    /// ```
    /// use baat_obs::{Obs, Stage};
    ///
    /// let obs = Obs::enabled();
    /// {
    ///     let _t = obs.time(Stage::Solar);
    ///     // ... stage work ...
    /// }
    /// assert_eq!(obs.stage_stats()[0].calls, 1);
    /// ```
    #[inline]
    pub fn time(&self, stage: Stage) -> StageTimer<'_> {
        StageTimer {
            ctx: self.inner.as_deref().map(|inner| (inner, Instant::now())),
            stage,
        }
    }
}

impl Obs {
    /// Starts a boundary clock for timing several consecutive stages
    /// with one clock read per boundary (instead of two per stage, as
    /// [`Obs::time`] does). Hot loops that run stages back-to-back use
    /// this to keep profiling overhead in the noise.
    ///
    /// A disabled context returns an inert clock without reading the
    /// clock.
    ///
    /// # Examples
    ///
    /// ```
    /// use baat_obs::{Obs, Stage};
    ///
    /// let obs = Obs::enabled();
    /// let mut clock = obs.stage_clock();
    /// // ... charger work ...
    /// clock.lap(Stage::Charger);
    /// // ... switcher work ...
    /// clock.lap(Stage::Switcher);
    /// assert_eq!(obs.stage_stats().len(), 2);
    /// ```
    #[inline]
    pub fn stage_clock(&self) -> StageClock<'_> {
        StageClock {
            ctx: self.inner.as_deref().map(|inner| (inner, Instant::now())),
        }
    }
}

/// Boundary clock over consecutive stages; see [`Obs::stage_clock`].
#[derive(Debug)]
pub struct StageClock<'a> {
    ctx: Option<(&'a crate::registry::Inner, Instant)>,
}

impl StageClock<'static> {
    /// A clock that records nothing and never reads the system clock.
    /// Callers that *sample* stage timings hand out an inert clock on
    /// unsampled iterations.
    pub const fn inert() -> Self {
        Self { ctx: None }
    }
}

impl StageClock<'_> {
    /// Records the time since the previous boundary (or since the clock
    /// started) against `stage`, and makes *now* the next boundary.
    #[inline]
    pub fn lap(&mut self, stage: Stage) {
        if let Some((inner, prev)) = self.ctx.as_mut() {
            let now = Instant::now();
            let elapsed = now.duration_since(*prev).as_nanos() as u64;
            let cell = &inner.stages[stage as usize];
            cell.calls.fetch_add(1, Ordering::Relaxed);
            cell.total_ns.fetch_add(elapsed, Ordering::Relaxed);
            *prev = now;
        }
    }

    /// Discards the time since the previous boundary without recording
    /// it — used after work that is timed by other means (e.g. an RAII
    /// [`StageTimer`]) ran between two lapped stages.
    #[inline]
    pub fn skip(&mut self) {
        if let Some((_, prev)) = self.ctx.as_mut() {
            *prev = Instant::now();
        }
    }

    /// `true` when this clock records (enabled context on a sampled
    /// step). Parallel stage passes consult this before measuring
    /// per-shard elapsed time for [`StageClock::add`].
    #[inline]
    pub fn is_active(&self) -> bool {
        self.ctx.is_some()
    }

    /// Records `total_ns` of externally measured time against `stage`
    /// as one call, without moving the boundary. Sharded stage passes
    /// measure each shard's elapsed nanoseconds on its worker, then add
    /// the shard-index-ordered sum here — an order-independent integer
    /// sum, so the aggregate is deterministic in everything but the
    /// wall-clock readings themselves (which are inherently noisy, see
    /// the module docs). The recorded value is CPU time across shards,
    /// not wall time.
    #[inline]
    pub fn add(&mut self, stage: Stage, total_ns: u64) {
        if let Some((inner, _)) = self.ctx.as_ref() {
            let cell = &inner.stages[stage as usize];
            cell.calls.fetch_add(1, Ordering::Relaxed);
            cell.total_ns.fetch_add(total_ns, Ordering::Relaxed);
        }
    }
}

/// RAII guard recording one timed stage execution on drop.
#[derive(Debug)]
pub struct StageTimer<'a> {
    ctx: Option<(&'a crate::registry::Inner, Instant)>,
    stage: Stage,
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        if let Some((inner, started)) = self.ctx.take() {
            let elapsed = started.elapsed().as_nanos() as u64;
            let cell = &inner.stages[self.stage as usize];
            cell.calls.fetch_add(1, Ordering::Relaxed);
            cell.total_ns.fetch_add(elapsed, Ordering::Relaxed);
        }
    }
}

/// Aggregated statistics for one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Which stage.
    pub stage: Stage,
    /// Times the stage ran.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub total_ns: u64,
}

impl StageStats {
    /// Mean nanoseconds per call (0 when never called).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }

    /// Serializes the stats as one JSON object line.
    pub fn to_json(&self) -> String {
        let mut line = crate::json::JsonLine::new();
        line.str_field("stage", self.stage.name())
            .u64_field("calls", self.calls)
            .u64_field("total_ns", self.total_ns)
            .u64_field("mean_ns", self.mean_ns());
        line.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_count_calls_per_stage() {
        let obs = Obs::enabled();
        for _ in 0..3 {
            let _t = obs.time(Stage::Solar);
        }
        {
            let _t = obs.time(Stage::Recorder);
        }
        let stats = obs.stage_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].stage, Stage::Solar);
        assert_eq!(stats[0].calls, 3);
        assert_eq!(stats[1].stage, Stage::Recorder);
        assert_eq!(stats[1].calls, 1);
    }

    #[test]
    fn disabled_timer_records_nothing() {
        let obs = Obs::disabled();
        {
            let _t = obs.time(Stage::Charger);
        }
        let mut clock = obs.stage_clock();
        clock.lap(Stage::Switcher);
        assert!(obs.stage_stats().is_empty());
        assert!(obs.profile_jsonl().is_empty());
    }

    #[test]
    fn stage_clock_attributes_consecutive_laps() {
        let obs = Obs::enabled();
        let mut clock = obs.stage_clock();
        clock.lap(Stage::Charger);
        clock.skip();
        clock.lap(Stage::Switcher);
        clock.lap(Stage::BatteryStep);
        let stats = obs.stage_stats();
        assert_eq!(stats.len(), 3);
        for s in stats {
            assert_eq!(s.calls, 1);
        }
    }

    #[test]
    fn inert_stage_clock_is_a_no_op() {
        let obs = Obs::enabled();
        let mut clock = StageClock::inert();
        clock.lap(Stage::Solar);
        clock.skip();
        assert!(obs.stage_stats().is_empty());
    }

    #[test]
    fn profile_jsonl_is_stable_in_shape() {
        let obs = Obs::enabled();
        {
            let _t = obs.time(Stage::BatteryStep);
        }
        let line = obs.profile_jsonl();
        assert!(line.starts_with(r#"{"stage":"battery_step","calls":1,"total_ns":"#));
    }

    #[test]
    fn stage_names_are_unique_and_ordered() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), Stage::COUNT);
        assert_eq!(names, dedup);
        assert_eq!(
            Stage::ALL[Stage::PolicyControl as usize],
            Stage::PolicyControl
        );
    }
}
