//! A minimal JSON-lines writer.
//!
//! The workspace is hermetic (no serde), so structured export is built on
//! this tiny encoder. It covers exactly what the observability layer
//! needs: one flat-ish JSON object per line, deterministic float
//! formatting (Rust's shortest-roundtrip `Display`), and correct string
//! escaping.

use core::fmt::Write;

/// Escapes `s` as JSON string *contents* (no surrounding quotes) into
/// `out`.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes `v` as a JSON number token into `out`.
///
/// JSON has no NaN/∞, so non-finite values are emitted as `null` — a
/// reader sees "no value" rather than a parse error.
pub fn f64_into(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Builder for one JSON object serialized on a single line.
///
/// # Examples
///
/// ```
/// use baat_obs::json::JsonLine;
///
/// let mut line = JsonLine::new();
/// line.str_field("kind", "counter")
///     .u64_field("value", 3)
///     .f64_field("ratio", 0.5);
/// assert_eq!(line.finish(), r#"{"kind":"counter","value":3,"ratio":0.5}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonLine {
    buf: String,
}

impl JsonLine {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64_field(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        f64_into(&mut self.buf, value);
        self
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim (arrays, nested
    /// objects). The caller is responsible for its validity.
    pub fn raw_field(&mut self, key: &str, raw: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and returns the line (without a trailing
    /// newline).
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            self.buf.push('{');
        }
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut line = JsonLine::new();
        line.f64_field("x", f64::NAN).f64_field("y", 1.5);
        assert_eq!(line.finish(), r#"{"x":null,"y":1.5}"#);
    }

    #[test]
    fn every_non_finite_value_becomes_null() {
        // Pins the contract: JSON has no NaN/∞ tokens, so all three
        // non-finite values (and both NaN sign bits) serialize as null.
        for v in [f64::NAN, -f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut s = String::new();
            f64_into(&mut s, v);
            assert_eq!(s, "null", "{v} must serialize as null");
        }
        let mut s = String::new();
        f64_into(&mut s, -0.0);
        assert_eq!(s, "-0", "negative zero is finite and keeps its sign");
    }

    #[test]
    fn all_control_characters_are_escaped() {
        // Pins the contract: U+0000–U+001F never appear raw in output.
        // The common whitespace controls use their short escapes, the
        // rest the \u00XX form; U+0020 and above pass through.
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let mut s = String::new();
            escape_into(&mut s, &c.to_string());
            let expected = match c {
                '\n' => "\\n".to_owned(),
                '\r' => "\\r".to_owned(),
                '\t' => "\\t".to_owned(),
                _ => format!("\\u{code:04x}"),
            };
            assert_eq!(s, expected, "U+{code:04X} must be escaped");
        }
        let mut s = String::new();
        escape_into(&mut s, "\u{0000}lo\u{001f}hi\u{0020}");
        assert_eq!(s, "\\u0000lo\\u001fhi ");
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonLine::new().finish(), "{}");
    }

    #[test]
    fn raw_field_passes_through() {
        let mut line = JsonLine::new();
        line.raw_field("buckets", "[[1,2],[4,1]]");
        assert_eq!(line.finish(), r#"{"buckets":[[1,2],[4,1]]}"#);
    }
}
