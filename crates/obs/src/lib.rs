//! In-tree observability for the BAAT reproduction.
//!
//! The DSN'15 prototype ships a display module that "visualizes data
//! captured by sensors, system log trace, and various aging metrics …
//! in real time". This crate is the reproduction's equivalent
//! substrate: a metric registry ([`Obs`], [`Counter`], [`Gauge`],
//! [`Histogram`]), a per-stage step profiler ([`Stage`], [`StageTimer`]),
//! causal trace spans ([`Tracer`], [`SpanId`]), an aging-health monitor
//! with flight recorder ([`HealthMonitor`], [`FlightRecorder`]), an
//! OpenMetrics text exporter ([`openmetrics`]), a dependency-free live
//! scrape endpoint ([`serve`]) and a dependency-free JSONL encoder
//! ([`json`]) used by every subsystem to export metrics, events and
//! traces.
//!
//! Two invariants shape the design:
//!
//! 1. **Free when disabled.** [`Obs::disabled`] hands out handles that
//!    carry no storage; every update is a branch on `None`, and the
//!    profiler never reads the clock. Simulations built without
//!    observation pay nothing.
//! 2. **Side-effect-free when enabled.** Metric updates are relaxed
//!    atomics read only after the fact; no simulated decision depends on
//!    a metric value. The determinism suite pins this: a seeded run
//!    produces bit-identical `SimReport`s with observation on or off.
//!
//! Wall-clock stage timings are inherently non-reproducible and are
//! therefore kept out of reports and golden snapshots; only call counts
//! and domain counters are deterministic. Trace spans and health events
//! are stamped with *simulated* seconds and numbered sequentially, so —
//! unlike stage timings — their exports are byte-reproducible for a
//! seeded run.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod health;
pub mod json;
pub mod openmetrics;
pub mod profile;
pub mod registry;
pub mod serve;
pub mod trace;

pub use health::{
    FlightDump, FlightRecorder, HealthCheck, HealthConfig, HealthEvent, HealthMonitor,
    NodeHealthSample, MAX_FLIGHT_DUMPS,
};
pub use profile::{Stage, StageClock, StageStats, StageTimer};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSample, MetricSample, Obs, SampleValue, HISTOGRAM_BUCKETS,
};
pub use serve::{MetricsServer, OPENMETRICS_CONTENT_TYPE};
pub use trace::{AttrValue, SpanId, SpanRecord, Tracer};
