//! Dependency-free live scrape endpoint for the metric registry.
//!
//! [`MetricsServer::start`] binds a TCP listener and serves, on a
//! single background thread, the handful of plain-text routes a
//! scraper needs while a simulation steps in the foreground:
//!
//! | route      | payload                                               |
//! |------------|-------------------------------------------------------|
//! | `/metrics` | the live [`Obs`] snapshot in OpenMetrics text format  |
//! | `/healthz` | `ok` — liveness probe                                 |
//! | `/run`     | the run's JSON metadata line (set by the host)        |
//! | `/quit`    | acknowledges, then flags the host to shut down        |
//!
//! The server is deliberately minimal — blocking I/O, one connection
//! at a time, `Connection: close` on every response — because its one
//! client is a scraper polling every few seconds, and the workspace is
//! hermetic (no HTTP crate). Responses are honest HTTP/1.0 with a
//! `Content-Length`, so `curl`, Prometheus, or a bash `/dev/tcp` probe
//! all parse them.
//!
//! The registry side is lock-free for writers: a scrape snapshots the
//! shared [`Obs`] atomics, so the stepping thread is never blocked by
//! a slow client.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Obs;

/// Per-connection socket timeout: a stalled client cannot wedge the
/// accept loop for longer than this.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(2);

/// OpenMetrics content type, per the OpenMetrics 1.0 spec.
pub const OPENMETRICS_CONTENT_TYPE: &str =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// State shared between the host and the serving thread.
struct ServerShared {
    obs: Obs,
    /// The `/run` payload; hosts update it as the run progresses.
    run_info: Mutex<String>,
    /// Set by [`MetricsServer::shutdown`]; the accept loop exits on the
    /// next connection (shutdown self-connects to force one).
    stop: AtomicBool,
    /// Set once a client requests `/quit`; hosts poll or wait on it to
    /// end a `--linger` run cleanly.
    quit: Mutex<bool>,
    quit_cv: Condvar,
}

/// Handle to a running scrape endpoint; see the module docs for the
/// routes. Dropping the handle shuts the server down.
pub struct MetricsServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks an ephemeral port — read
    /// it back from [`addr`](Self::addr)) and starts serving scrapes of
    /// `obs` on a background thread. `run_info` seeds the `/run`
    /// payload; update it later with [`set_run_info`](Self::set_run_info).
    ///
    /// # Errors
    ///
    /// Returns the bind error if the port is taken or privileged.
    pub fn start(port: u16, obs: Obs, run_info: String) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            obs,
            run_info: Mutex::new(run_info),
            stop: AtomicBool::new(false),
            quit: Mutex::new(false),
            quit_cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("baat-obs-serve".to_owned())
            .spawn(move || accept_loop(&listener, &thread_shared))?;
        Ok(Self {
            shared,
            addr,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the `/run` payload.
    pub fn set_run_info(&self, run_info: String) {
        *lock(&self.shared.run_info) = run_info;
    }

    /// `true` once a client has requested `/quit`.
    pub fn quit_requested(&self) -> bool {
        *lock(&self.shared.quit)
    }

    /// Blocks until a client requests `/quit`.
    pub fn wait_for_quit(&self) {
        let mut quit = lock(&self.shared.quit);
        while !*quit {
            quit = self
                .shared
                .quit_cv
                .wait(quit)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Stops the accept loop and joins the serving thread. Called by
    /// `Drop` too; the explicit form exists so hosts can shut down at a
    /// deterministic point and observe join completion.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::Relaxed);
        // The accept loop only observes `stop` between connections;
        // poke it with one so it never waits for an external client.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn accept_loop(listener: &TcpListener, shared: &ServerShared) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Client faults (timeouts, broken pipes, malformed requests)
        // must never take the endpoint down; drop the connection and
        // keep serving.
        let _ = handle_client(stream, shared);
    }
}

/// Reads one request, writes one response, closes. Returns `Err` only
/// on socket-level failures — the caller ignores it either way.
fn handle_client(stream: TcpStream, shared: &ServerShared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see the full exchange.
    let mut header = String::new();
    loop {
        header.clear();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let target = request_line.split_whitespace().nth(1).unwrap_or("");
    let path = target.split('?').next().unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            OPENMETRICS_CONTENT_TYPE,
            shared.obs.metrics_openmetrics(),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
        "/run" => {
            let mut line = lock(&shared.run_info).clone();
            if !line.ends_with('\n') {
                line.push('\n');
            }
            ("200 OK", "application/json; charset=utf-8", line)
        }
        "/quit" => {
            *lock(&shared.quit) = true;
            shared.quit_cv.notify_all();
            ("200 OK", "text/plain; charset=utf-8", "bye\n".to_owned())
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_owned(),
        ),
    };
    let mut stream = reader.into_inner();
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// One full HTTP exchange against the server; returns the raw
    /// response text.
    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    fn body(response: &str) -> &str {
        response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b)
            .unwrap_or("")
    }

    #[test]
    fn metrics_route_serves_live_openmetrics() {
        let obs = Obs::enabled();
        let counter = obs.counter("sim.steps");
        let server = MetricsServer::start(0, obs, "{}".to_owned()).expect("server starts");
        counter.add(7);
        let response = get(server.addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("application/openmetrics-text"));
        assert!(body(&response).contains("sim_steps_total 7\n"));
        assert!(body(&response).ends_with("# EOF\n"));
        // A later scrape sees newer values: the snapshot is live.
        counter.add(3);
        assert!(body(&get(server.addr(), "/metrics")).contains("sim_steps_total 10\n"));
        server.shutdown();
    }

    #[test]
    fn healthz_and_run_and_404() {
        let server = MetricsServer::start(0, Obs::disabled(), r#"{"scenario":"x"}"#.to_owned())
            .expect("server starts");
        assert_eq!(body(&get(server.addr(), "/healthz")), "ok\n");
        let run = get(server.addr(), "/run");
        assert!(run.contains("application/json"));
        assert_eq!(body(&run), "{\"scenario\":\"x\"}\n");
        server.set_run_info(r#"{"scenario":"y"}"#.to_owned());
        assert_eq!(body(&get(server.addr(), "/run")), "{\"scenario\":\"y\"}\n");
        assert!(get(server.addr(), "/nope").starts_with("HTTP/1.0 404"));
        server.shutdown();
    }

    #[test]
    fn quit_route_flags_the_host() {
        let server = MetricsServer::start(0, Obs::disabled(), String::new()).expect("starts");
        assert!(!server.quit_requested());
        assert_eq!(body(&get(server.addr(), "/quit")), "bye\n");
        assert!(server.quit_requested());
        // Does not block: the flag is already set.
        server.wait_for_quit();
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_without_a_client() {
        let server = MetricsServer::start(0, Obs::enabled(), String::new()).expect("starts");
        let addr = server.addr();
        server.shutdown();
        // The port is released once the thread exits.
        assert!(TcpListener::bind(addr).is_ok());
    }
}
