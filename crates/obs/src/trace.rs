//! Causal trace spans.
//!
//! A span is a named interval of simulated time with an optional causal
//! parent and a small set of key/value attributes. Spans let the engine
//! link a whole causal chain — `fault → degraded mode → fallback action
//! → aging delta` — into one trace that can be walked by id, exported as
//! JSONL alongside the metrics, and diffed across runs.
//!
//! The module follows the two crate invariants:
//!
//! 1. **Free when disabled.** A [`Tracer`] obtained from a disabled
//!    [`Obs`] starts no spans: [`Tracer::start`] returns
//!    [`SpanId::NONE`] without allocating or locking, and every other
//!    operation on a `NONE` id is a no-op.
//! 2. **Deterministic when enabled.** Span ids are handed out by a
//!    sequential counter and timestamps are *simulated* seconds, never
//!    wall clock, so a seeded run produces a byte-identical span export.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::JsonLine;
use crate::registry::Obs;

/// Identifier of one span within a [`Tracer`].
///
/// Id `0` is the reserved "no span" sentinel ([`SpanId::NONE`]); real
/// spans are numbered sequentially from 1 in creation order, so a parent
/// id is always smaller than any of its children's ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The "no span" sentinel: used as the parent of root spans and
    /// returned by every operation on a disabled tracer.
    pub const NONE: SpanId = SpanId(0);

    /// `true` for the sentinel id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The raw numeric id (0 for the sentinel).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One attribute value attached to a span.
///
/// String attributes are `&'static str` on purpose: every producer in
/// the engine attaches stable names (fault kinds, DVFS levels, charge
/// stages), and keeping them static makes attribute attachment
/// allocation-free on the hot path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer attribute.
    U64(u64),
    /// Floating-point attribute (non-finite values export as `null`).
    F64(f64),
    /// Static string attribute.
    Str(&'static str),
    /// Boolean attribute.
    Bool(bool),
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Sequential id (1-based).
    pub id: u64,
    /// Causal parent id, if any.
    pub parent: Option<u64>,
    /// Stable span name (e.g. `fault`, `degraded`, `fallback.action`).
    pub name: &'static str,
    /// Simulated start time, seconds since the run began.
    pub start_s: u64,
    /// Simulated end time; `None` while the span is still open.
    pub end_s: Option<u64>,
    /// Attributes in attachment order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Serializes the span as one JSON object line.
    ///
    /// Core fields (`span`, `name`, `start_s`, then optional `parent`
    /// and `end_s`) come first; attributes follow flattened, in
    /// attachment order. Producers keep attribute keys disjoint from
    /// the core field names.
    pub fn to_json(&self) -> String {
        let mut line = JsonLine::new();
        line.u64_field("span", self.id)
            .str_field("name", self.name)
            .u64_field("start_s", self.start_s);
        if let Some(parent) = self.parent {
            line.u64_field("parent", parent);
        }
        if let Some(end) = self.end_s {
            line.u64_field("end_s", end);
        }
        for (key, value) in &self.attrs {
            match value {
                AttrValue::U64(v) => line.u64_field(key, *v),
                AttrValue::F64(v) => line.f64_field(key, *v),
                AttrValue::Str(v) => line.str_field(key, v),
                AttrValue::Bool(v) => line.bool_field(key, *v),
            };
        }
        line.finish()
    }
}

/// Span storage shared by all [`Tracer`] clones of one [`Obs`].
#[derive(Debug, Default)]
pub(crate) struct TraceStore {
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceStore {
    fn with_span<R>(&self, id: SpanId, f: impl FnOnce(&mut SpanRecord) -> R) -> Option<R> {
        if id.is_none() {
            return None;
        }
        let mut spans = self
            .spans
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Ids are handed out sequentially, so id N lives at index N-1.
        spans.get_mut(id.0 as usize - 1).map(f)
    }
}

/// Handle for emitting spans.
///
/// Cheap to clone (it shares the [`Obs`] storage) and inert when the
/// originating `Obs` was disabled. Subsystems keep a `Tracer` next to
/// their metric handles instead of threading an `Obs` through every
/// call.
///
/// # Examples
///
/// ```
/// use baat_obs::{Obs, SpanId};
///
/// let obs = Obs::enabled();
/// let tracer = obs.tracer();
/// let fault = tracer.start("fault", SpanId::NONE, 100);
/// let degraded = tracer.start("degraded", fault, 400);
/// tracer.attr_u64(degraded, "node", 3);
/// tracer.end(degraded, 700);
/// tracer.end(fault, 900);
/// assert_eq!(obs.spans().len(), 2);
/// assert_eq!(obs.spans()[1].parent, Some(fault.raw()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<std::sync::Arc<crate::registry::Inner>>,
}

impl Tracer {
    /// A permanently inert tracer, for contexts built without an
    /// [`Obs`].
    pub const fn disabled() -> Self {
        Self { inner: None }
    }

    /// `true` if this tracer records spans.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a span at simulated second `at_s`. Pass
    /// [`SpanId::NONE`] as `parent` for a root span. Returns
    /// [`SpanId::NONE`] (without allocating) when disabled.
    pub fn start(&self, name: &'static str, parent: SpanId, at_s: u64) -> SpanId {
        let Some(inner) = self.inner.as_ref() else {
            return SpanId::NONE;
        };
        let store = &inner.trace;
        let id = store.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let record = SpanRecord {
            id,
            parent: (!parent.is_none()).then_some(parent.0),
            name,
            start_s: at_s,
            end_s: None,
            attrs: Vec::new(),
        };
        let mut spans = store
            .spans
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        spans.push(record);
        SpanId(id)
    }

    /// Ends a span at simulated second `at_s`. No-op on
    /// [`SpanId::NONE`] or an unknown id.
    pub fn end(&self, id: SpanId, at_s: u64) {
        if let Some(inner) = self.inner.as_ref() {
            inner.trace.with_span(id, |span| span.end_s = Some(at_s));
        }
    }

    fn attr(&self, id: SpanId, key: &'static str, value: AttrValue) {
        if let Some(inner) = self.inner.as_ref() {
            inner
                .trace
                .with_span(id, |span| span.attrs.push((key, value)));
        }
    }

    /// Attaches an unsigned integer attribute.
    pub fn attr_u64(&self, id: SpanId, key: &'static str, value: u64) {
        self.attr(id, key, AttrValue::U64(value));
    }

    /// Attaches a floating-point attribute.
    pub fn attr_f64(&self, id: SpanId, key: &'static str, value: f64) {
        self.attr(id, key, AttrValue::F64(value));
    }

    /// Attaches a static string attribute.
    pub fn attr_str(&self, id: SpanId, key: &'static str, value: &'static str) {
        self.attr(id, key, AttrValue::Str(value));
    }

    /// Attaches a boolean attribute.
    pub fn attr_bool(&self, id: SpanId, key: &'static str, value: bool) {
        self.attr(id, key, AttrValue::Bool(value));
    }
}

impl Obs {
    /// A [`Tracer`] sharing this context's span storage (inert when the
    /// context is disabled).
    pub fn tracer(&self) -> Tracer {
        Tracer {
            inner: self.inner.clone(),
        }
    }

    /// Snapshot of every recorded span, in creation (id) order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let Some(inner) = self.inner.as_ref() else {
            return Vec::new();
        };
        inner
            .trace
            .spans
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Renders the span snapshot as JSONL (one span per line).
    pub fn spans_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.spans() {
            out.push_str(&span.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_parents_attrs_and_times() {
        let obs = Obs::enabled();
        let t = obs.tracer();
        let root = t.start("fault", SpanId::NONE, 10);
        t.attr_str(root, "fault", "sensor_dropout");
        let child = t.start("degraded", root, 40);
        t.attr_u64(child, "node", 2);
        t.attr_f64(child, "staleness_s", 330.0);
        t.attr_bool(child, "active", true);
        t.end(child, 90);
        t.end(root, 100);

        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, 1);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].end_s, Some(100));
        assert_eq!(spans[1].parent, Some(1));
        assert_eq!(spans[1].start_s, 40);
        assert_eq!(spans[1].attrs.len(), 3);
    }

    #[test]
    fn span_jsonl_is_stable() {
        let obs = Obs::enabled();
        let t = obs.tracer();
        let root = t.start("fault", SpanId::NONE, 10);
        let child = t.start("degraded", root, 40);
        t.attr_u64(child, "node", 2);
        t.end(child, 90);
        let jsonl = obs.spans_jsonl();
        assert_eq!(
            jsonl,
            "{\"span\":1,\"name\":\"fault\",\"start_s\":10}\n\
             {\"span\":2,\"name\":\"degraded\",\"start_s\":40,\"parent\":1,\"end_s\":90,\"node\":2}\n"
        );
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let obs = Obs::disabled();
        let t = obs.tracer();
        assert!(!t.is_enabled());
        let id = t.start("fault", SpanId::NONE, 0);
        assert!(id.is_none());
        t.attr_u64(id, "k", 1);
        t.end(id, 5);
        assert!(obs.spans().is_empty());
        assert!(obs.spans_jsonl().is_empty());
    }

    #[test]
    fn unknown_and_none_ids_are_ignored() {
        let obs = Obs::enabled();
        let t = obs.tracer();
        t.end(SpanId::NONE, 1);
        t.attr_u64(SpanId(99), "k", 1); // never started
        assert!(obs.spans().is_empty());
    }

    #[test]
    fn ids_are_sequential_across_tracer_clones() {
        let obs = Obs::enabled();
        let a = obs.tracer();
        let b = obs.tracer();
        let s1 = a.start("x", SpanId::NONE, 0);
        let s2 = b.start("y", SpanId::NONE, 1);
        assert_eq!(s1.raw(), 1);
        assert_eq!(s2.raw(), 2);
    }
}
