//! The metric registry and its static handles.
//!
//! Subsystems register a metric once (cold path, by name) and keep the
//! returned handle; updates through a handle are lock-free atomic
//! operations. A handle obtained from a *disabled* [`Obs`] carries no
//! cell at all, so every update is a branch on `None` — observation is
//! free when switched off and needs no `#[cfg]` gymnastics at call
//! sites.
//!
//! Counters and histograms are updated with relaxed atomics: metric
//! reads happen after the simulation finished (or between steps), never
//! concurrently with a decision that could feed back into simulated
//! state, so observation cannot perturb a run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::health::{FlightDump, HealthEvent};
use crate::profile::{Stage, StageStats};
use crate::trace::TraceStore;

/// Number of power-of-two histogram buckets (bucket `i` counts samples
/// `< 2^i`, the last bucket is a catch-all).
pub const HISTOGRAM_BUCKETS: usize = 32;

#[derive(Debug, Default)]
struct CounterCell(AtomicU64);

#[derive(Debug, Default)]
struct GaugeCell(AtomicU64); // f64 bit pattern

#[derive(Debug)]
struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramCell {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: core::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[derive(Debug, Clone)]
enum MetricCell {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

#[derive(Debug)]
pub(crate) struct StageCell {
    pub(crate) calls: AtomicU64,
    pub(crate) total_ns: AtomicU64,
}

#[derive(Debug)]
pub(crate) struct Inner {
    metrics: Mutex<Vec<(String, MetricCell)>>,
    pub(crate) stages: [StageCell; Stage::COUNT],
    pub(crate) trace: TraceStore,
    pub(crate) health_events: Mutex<Vec<HealthEvent>>,
    pub(crate) flight_dumps: Mutex<Vec<FlightDump>>,
}

impl Inner {
    fn new() -> Self {
        Self {
            metrics: Mutex::new(Vec::new()),
            stages: core::array::from_fn(|_| StageCell {
                calls: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
            }),
            trace: TraceStore::default(),
            health_events: Mutex::new(Vec::new()),
            flight_dumps: Mutex::new(Vec::new()),
        }
    }
}

/// Handle to the observability subsystem.
///
/// Cheap to clone (an `Arc` under the hood, or nothing at all when
/// disabled). One `Obs` is typically created per simulation run so that
/// metric values are attributable to a single scenario.
///
/// # Examples
///
/// ```
/// use baat_obs::Obs;
///
/// let obs = Obs::enabled();
/// let hits = obs.counter("cache.hits");
/// hits.inc();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
///
/// let off = Obs::disabled();
/// let miss = off.counter("cache.misses");
/// miss.inc(); // no-op, no allocation, no atomics
/// assert_eq!(miss.get(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Obs {
    pub(crate) inner: Option<Arc<Inner>>,
}

impl Obs {
    /// Creates an enabled observability context.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner::new())),
        }
    }

    /// Creates a disabled context: every handle it hands out is inert.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// `true` if this context records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn register(&self, name: &str, make: impl FnOnce() -> MetricCell) -> Option<MetricCell> {
        let inner = self.inner.as_ref()?;
        let mut metrics = inner
            .metrics
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some((_, cell)) = metrics.iter().find(|(n, _)| n == name) {
            return Some(cell.clone());
        }
        let cell = make();
        metrics.push((name.to_owned(), cell.clone()));
        Some(cell)
    }

    /// Registers (or looks up) a monotonically increasing counter.
    ///
    /// Registering the same name twice returns handles to the same cell;
    /// a name collision across metric *kinds* yields a detached cell that
    /// counts but is never exported (callers namespace their metrics, so
    /// this is a programming-error escape hatch, not a supported mode).
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || MetricCell::Counter(Arc::default())) {
            Some(MetricCell::Counter(c)) => Counter(Some(c)),
            Some(_) => Counter(Some(Arc::default())),
            None => Counter(None),
        }
    }

    /// Registers (or looks up) a last-value-wins gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || MetricCell::Gauge(Arc::default())) {
            Some(MetricCell::Gauge(g)) => Gauge(Some(g)),
            Some(_) => Gauge(Some(Arc::default())),
            None => Gauge(None),
        }
    }

    /// Registers (or looks up) a power-of-two-bucketed histogram of
    /// unsigned samples.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, || MetricCell::Histogram(Arc::default())) {
            Some(MetricCell::Histogram(h)) => Histogram(Some(h)),
            Some(_) => Histogram(Some(Arc::default())),
            None => Histogram(None),
        }
    }

    /// Snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let Some(inner) = self.inner.as_ref() else {
            return Vec::new();
        };
        let metrics = inner
            .metrics
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut samples: Vec<MetricSample> = metrics
            .iter()
            .map(|(name, cell)| MetricSample {
                name: name.clone(),
                value: match cell {
                    MetricCell::Counter(c) => SampleValue::Counter(c.0.load(Ordering::Relaxed)),
                    MetricCell::Gauge(g) => {
                        SampleValue::Gauge(f64::from_bits(g.0.load(Ordering::Relaxed)))
                    }
                    MetricCell::Histogram(h) => SampleValue::Histogram(Box::new(HistogramSample {
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets: core::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
                    })),
                },
            })
            .collect();
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        samples
    }

    /// Renders the metric snapshot as JSONL (one metric per line).
    pub fn metrics_jsonl(&self) -> String {
        let mut out = String::new();
        for sample in self.snapshot() {
            out.push_str(&sample.to_json());
            out.push('\n');
        }
        out
    }

    /// Per-stage profiler statistics (stages with zero calls omitted).
    pub fn stage_stats(&self) -> Vec<StageStats> {
        let Some(inner) = self.inner.as_ref() else {
            return Vec::new();
        };
        Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let cell = &inner.stages[stage as usize];
                let calls = cell.calls.load(Ordering::Relaxed);
                (calls > 0).then(|| StageStats {
                    stage,
                    calls,
                    total_ns: cell.total_ns.load(Ordering::Relaxed),
                })
            })
            .collect()
    }

    /// Renders the stage profile as JSONL (one stage per line).
    pub fn profile_jsonl(&self) -> String {
        let mut out = String::new();
        for stat in self.stage_stats() {
            out.push_str(&stat.to_json());
            out.push('\n');
        }
        out
    }
}

/// Handle to a monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<CounterCell>>);

impl Counter {
    /// A permanently inert counter, for contexts built without an
    /// [`Obs`].
    pub const fn disabled() -> Self {
        Self(None)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.0.load(Ordering::Relaxed))
    }
}

/// Handle to a last-value-wins gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

impl Gauge {
    /// A permanently inert gauge.
    pub const fn disabled() -> Self {
        Self(None)
    }

    /// Stores a new value.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.0.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.0.load(Ordering::Relaxed)))
    }
}

/// Handle to a power-of-two-bucketed histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    /// A permanently inert histogram.
    pub const fn disabled() -> Self {
        Self(None)
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(cell) = &self.0 {
            let bucket =
                (u64::BITS - value.leading_zeros()).min(HISTOGRAM_BUCKETS as u32 - 1) as usize;
            cell.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Number of samples recorded (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.count.load(Ordering::Relaxed))
    }
}

/// One metric read from a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Registered metric name.
    pub name: String,
    /// Its value at snapshot time.
    pub value: SampleValue,
}

/// A snapshot value, by metric kind.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary (boxed: much larger than the scalar variants).
    Histogram(Box<HistogramSample>),
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket counts; bucket `i` holds samples `< 2^i`.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl MetricSample {
    /// Serializes the sample as one JSON object line.
    pub fn to_json(&self) -> String {
        let mut line = crate::json::JsonLine::new();
        match &self.value {
            SampleValue::Counter(v) => {
                line.str_field("kind", "counter")
                    .str_field("name", &self.name)
                    .u64_field("value", *v);
            }
            SampleValue::Gauge(v) => {
                line.str_field("kind", "gauge")
                    .str_field("name", &self.name)
                    .f64_field("value", *v);
            }
            SampleValue::Histogram(h) => {
                let mut buckets = String::from("[");
                for (i, &count) in h.buckets.iter().enumerate() {
                    if count > 0 {
                        if buckets.len() > 1 {
                            buckets.push(',');
                        }
                        // Upper bound of the bucket: 2^i (the first bucket
                        // holds the zero sample).
                        let bound = if i == 0 { 0 } else { 1u64 << (i - 1) };
                        buckets.push_str(&format!("[{bound},{count}]"));
                    }
                }
                buckets.push(']');
                line.str_field("kind", "histogram")
                    .str_field("name", &self.name)
                    .u64_field("count", h.count)
                    .u64_field("sum", h.sum)
                    .raw_field("buckets", &buckets);
            }
        }
        line.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export() {
        let obs = Obs::enabled();
        let c = obs.counter("a.hits");
        c.inc();
        c.add(4);
        let again = obs.counter("a.hits");
        again.inc();
        assert_eq!(c.get(), 6);
        assert!(obs.metrics_jsonl().contains(r#""name":"a.hits","value":6"#));
    }

    #[test]
    fn disabled_handles_are_inert() {
        let obs = Obs::disabled();
        let c = obs.counter("x");
        let g = obs.gauge("y");
        let h = obs.histogram("z");
        c.inc();
        g.set(3.5);
        h.observe(9);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert!(obs.snapshot().is_empty());
        assert!(obs.metrics_jsonl().is_empty());
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let obs = Obs::enabled();
        let g = obs.gauge("soc");
        g.set(0.4);
        g.set(0.9);
        assert_eq!(g.get(), 0.9);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let obs = Obs::enabled();
        let h = obs.histogram("sizes");
        for v in [0, 1, 2, 3, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        let snapshot = obs.snapshot();
        let SampleValue::Histogram(hist) = &snapshot[0].value else {
            panic!("expected histogram");
        };
        assert_eq!(hist.sum, 1030);
        assert_eq!(hist.buckets[0], 1); // the zero sample
        assert_eq!(hist.buckets[1], 1); // 1
        assert_eq!(hist.buckets[2], 2); // 2, 3
        assert_eq!(hist.buckets[11], 1); // 1024
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let obs = Obs::enabled();
        obs.counter("z.last");
        obs.counter("a.first");
        let names: Vec<String> = obs.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
    }

    #[test]
    fn kind_collision_yields_detached_cell() {
        let obs = Obs::enabled();
        let c = obs.counter("dual");
        let g = obs.gauge("dual"); // kind mismatch
        c.add(2);
        g.set(1.0);
        assert_eq!(c.get(), 2);
        // The registry keeps the first registration only.
        assert_eq!(obs.snapshot().len(), 1);
    }
}
