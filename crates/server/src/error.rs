//! Error types for server and hypervisor operations.

use baat_workload::VmId;

/// Why a structurally valid migration request could not start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationBlock {
    /// The VM is already in flight.
    AlreadyInFlight,
    /// The target is the VM's current host.
    TargetIsSource,
}

impl core::fmt::Display for MigrationBlock {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MigrationBlock::AlreadyInFlight => write!(f, "already migrating"),
            MigrationBlock::TargetIsSource => write!(f, "target equals source"),
        }
    }
}

/// Errors returned by hosts and clusters.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The host lacks CPU or memory for the requested VM.
    InsufficientResources {
        /// The VM that could not be admitted.
        vm: VmId,
        /// Requested (cores, memory GiB).
        requested: (u32, u32),
        /// Free (cores, memory GiB).
        free: (u32, u32),
    },
    /// No host in the cluster holds the VM.
    UnknownVm {
        /// The missing VM.
        vm: VmId,
    },
    /// A server index was out of range.
    UnknownServer {
        /// The requested index.
        index: usize,
        /// Number of servers in the cluster.
        len: usize,
    },
    /// The migration could not be performed (e.g. source equals target, or
    /// the VM is already in flight).
    MigrationRejected {
        /// The VM whose migration was rejected.
        vm: VmId,
        /// What blocked it.
        block: MigrationBlock,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
}

impl core::fmt::Display for ServerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServerError::InsufficientResources {
                vm,
                requested,
                free,
            } => write!(
                f,
                "cannot admit {vm}: needs {}c/{}g, only {}c/{}g free",
                requested.0, requested.1, free.0, free.1
            ),
            ServerError::UnknownVm { vm } => write!(f, "no host holds {vm}"),
            ServerError::UnknownServer { index, len } => {
                write!(f, "server index {index} out of range for cluster of {len}")
            }
            ServerError::MigrationRejected { vm, block } => {
                write!(f, "migration of {vm} rejected: {block}")
            }
            ServerError::InvalidConfig { field, reason } => {
                write!(f, "invalid server config field `{field}`: {reason}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ServerError::InsufficientResources {
            vm: VmId(3),
            requested: (4, 8),
            free: (2, 4),
        };
        let msg = err.to_string();
        assert!(msg.contains("vm-3") && msg.contains("4c/8g"));
    }
}
