//! A virtualized server host: VM admission, execution, DVFS and
//! checkpointing.

use baat_units::{Fraction, SimDuration, TimeOfDay, Watts};
use baat_workload::{Vm, VmId, VmSnapshot, VmState};

use crate::dvfs::DvfsLevel;
use crate::error::ServerError;
use crate::power_model::ServerPowerModel;

/// Time from power-on until the hypervisor can run VMs again (server
/// boot + Xen + checkpoint restore). Crash-cycling a node is not free.
pub const BOOT_DELAY: SimDuration = SimDuration::from_minutes(3);

/// Identifier of a server (and, in the per-server battery architecture,
/// of its associated battery node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub usize);

impl core::fmt::Display for ServerId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

/// Schedulable resources of one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServerCapacity {
    /// vCPU cores.
    pub cores: u32,
    /// Memory in GiB.
    pub memory_gb: u32,
}

impl Default for ServerCapacity {
    fn default() -> Self {
        Self {
            cores: 8,
            memory_gb: 16,
        }
    }
}

/// Checkpointable runtime state of one [`Host`].
///
/// The static side (id, power model, capacity) is reproduced by
/// reconstructing the host from configuration; this carries only what
/// stepping mutates. The cached usage counters are not included — they
/// are re-derived from the restored VM list.
#[derive(Debug, Clone, PartialEq)]
pub struct HostState {
    /// Current DVFS level.
    pub dvfs: DvfsLevel,
    /// `true` if the host is powered on.
    pub online: bool,
    /// Remaining boot time (zero once booted).
    pub boot_remaining: SimDuration,
    /// Total useful work done (core-hours).
    pub work_done: f64,
    /// Number of batch jobs completed.
    pub completed_jobs: u64,
    /// Hosted VMs, in hosting order.
    pub vms: Vec<VmSnapshot>,
}

/// A virtualized server: power model, DVFS state, hosted VMs.
#[derive(Debug, Clone, PartialEq)]
pub struct Host {
    id: ServerId,
    power_model: ServerPowerModel,
    capacity: ServerCapacity,
    dvfs: DvfsLevel,
    vms: Vec<Vm>,
    online: bool,
    boot_remaining: SimDuration,
    work_done: f64,
    completed_jobs: u64,
    /// Resources held by live (non-completed) VMs, maintained
    /// incrementally at admission, eviction and completion so
    /// [`Host::fits`] is O(1) instead of a scan of the VM list —
    /// placement retries call it for every pending VM × candidate host.
    used_cores: u32,
    used_memory_gb: u32,
}

impl Host {
    /// Creates an online, idle host.
    pub fn new(id: ServerId, power_model: ServerPowerModel, capacity: ServerCapacity) -> Self {
        Self {
            id,
            power_model,
            capacity,
            dvfs: DvfsLevel::P0,
            vms: Vec::new(),
            online: true,
            boot_remaining: SimDuration::ZERO,
            work_done: 0.0,
            completed_jobs: 0,
            used_cores: 0,
            used_memory_gb: 0,
        }
    }

    /// Charges a live VM's request against the cached usage counters.
    fn charge(&mut self, request: (u32, u32)) {
        self.used_cores += request.0;
        self.used_memory_gb += request.1;
    }

    /// Releases a no-longer-live VM's request from the cached counters.
    fn release(&mut self, request: (u32, u32)) {
        self.used_cores -= request.0;
        self.used_memory_gb -= request.1;
    }

    /// Host identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The host's power model.
    pub fn power_model(&self) -> &ServerPowerModel {
        &self.power_model
    }

    /// Schedulable capacity.
    pub fn capacity(&self) -> ServerCapacity {
        self.capacity
    }

    /// Current DVFS level.
    pub fn dvfs(&self) -> DvfsLevel {
        self.dvfs
    }

    /// Sets the DVFS level (BAAT's power-capping actuator).
    pub fn set_dvfs(&mut self, level: DvfsLevel) {
        self.dvfs = level;
    }

    /// `true` if the host is powered on.
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Powers the host on (VMs stay paused until resumed). A freshly
    /// powered host spends [`BOOT_DELAY`] booting: it draws idle power
    /// but runs no VMs until the boot completes.
    pub fn power_on(&mut self) {
        if !self.online {
            self.online = true;
            self.boot_remaining = BOOT_DELAY;
        }
    }

    /// `true` while the host is powered but still booting.
    pub fn is_booting(&self) -> bool {
        self.online && !self.boot_remaining.is_zero()
    }

    /// Powers the host off, checkpointing (pausing) every VM — the
    /// prototype's behaviour when solar is exhausted (§V.B).
    pub fn power_off(&mut self) {
        self.online = false;
        for vm in &mut self.vms {
            vm.pause();
        }
    }

    /// Resumes all paused VMs (after power-on or a restored budget).
    pub fn resume_all(&mut self) {
        if !self.online {
            return;
        }
        for vm in &mut self.vms {
            if vm.state() == VmState::Paused {
                vm.resume();
            }
        }
    }

    /// Resources consumed by live (non-completed) VMs.
    ///
    /// Served from counters maintained at admission, eviction and
    /// completion (O(1)); debug builds re-derive the value from the VM
    /// list and assert the two agree.
    pub fn used_resources(&self) -> (u32, u32) {
        debug_assert_eq!(
            (self.used_cores, self.used_memory_gb),
            self.vms
                .iter()
                .filter(|vm| !vm.is_completed())
                .map(|vm| vm.kind().resource_request())
                .fold((0, 0), |(c, m), (vc, vm_)| (c + vc, m + vm_)),
            "cached usage counters drifted from the VM list"
        );
        (self.used_cores, self.used_memory_gb)
    }

    /// Resources still free for admission.
    pub fn free_resources(&self) -> (u32, u32) {
        let (uc, um) = self.used_resources();
        (
            self.capacity.cores.saturating_sub(uc),
            self.capacity.memory_gb.saturating_sub(um),
        )
    }

    /// `true` if a VM with the given request fits right now.
    pub fn fits(&self, request: (u32, u32)) -> bool {
        let (fc, fm) = self.free_resources();
        request.0 <= fc && request.1 <= fm
    }

    /// Admits a VM, validating resource availability.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::InsufficientResources`] if the VM does not
    /// fit.
    pub fn admit(&mut self, vm: Vm) -> Result<(), ServerError> {
        let request = vm.kind().resource_request();
        if !self.fits(request) {
            return Err(ServerError::InsufficientResources {
                vm: vm.id(),
                requested: request,
                free: self.free_resources(),
            });
        }
        if !vm.is_completed() {
            self.charge(request);
        }
        self.vms.push(vm);
        Ok(())
    }

    /// Admits a VM without a resource check.
    ///
    /// Used when completing a migration whose capacity was reserved at
    /// initiation; normal placement must use [`Host::admit`].
    pub fn admit_unchecked(&mut self, vm: Vm) {
        if !vm.is_completed() {
            self.charge(vm.kind().resource_request());
        }
        self.vms.push(vm);
    }

    /// Removes and returns a VM.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownVm`] if the host does not hold it.
    pub fn evict(&mut self, vm: VmId) -> Result<Vm, ServerError> {
        let idx = self
            .vms
            .iter()
            .position(|v| v.id() == vm)
            .ok_or(ServerError::UnknownVm { vm })?;
        let evicted = self.vms.remove(idx);
        if !evicted.is_completed() {
            self.release(evicted.kind().resource_request());
        }
        Ok(evicted)
    }

    /// Immutable view of a hosted VM.
    pub fn vm(&self, vm: VmId) -> Option<&Vm> {
        self.vms.iter().find(|v| v.id() == vm)
    }

    /// Mutable view of a hosted VM.
    pub fn vm_mut(&mut self, vm: VmId) -> Option<&mut Vm> {
        self.vms.iter_mut().find(|v| v.id() == vm)
    }

    /// Iterates over hosted VMs.
    pub fn vms(&self) -> impl Iterator<Item = &Vm> {
        self.vms.iter()
    }

    /// Aggregate CPU utilization demanded by running VMs, in `[0, 1]`.
    pub fn utilization(&self, tod: TimeOfDay) -> Fraction {
        if !self.online || self.is_booting() {
            return Fraction::ZERO;
        }
        let demanded: f64 = self
            .vms
            .iter()
            .map(|vm| {
                let (cores, _) = vm.kind().resource_request();
                f64::from(cores) * vm.utilization(tod).value()
            })
            .sum();
        Fraction::saturating(demanded / f64::from(self.capacity.cores))
    }

    /// Electrical power drawn right now (zero when offline).
    pub fn power(&self, tod: TimeOfDay) -> Watts {
        if !self.online {
            return Watts::ZERO;
        }
        self.power_model.power(self.utilization(tod), self.dvfs)
    }

    /// Advances all VMs one step; returns useful work done (core-hours).
    pub fn step(&mut self, tod: TimeOfDay, dt: SimDuration) -> f64 {
        if !self.online {
            return 0.0;
        }
        if self.is_booting() {
            self.boot_remaining = self.boot_remaining.saturating_sub(dt);
            return 0.0;
        }
        let speed = self.dvfs.speed();
        let mut work = 0.0;
        for vm in &mut self.vms {
            let before = vm.is_completed();
            work += vm.advance(speed, tod, dt);
            if !before && vm.is_completed() {
                self.completed_jobs += 1;
                let (c, m) = vm.kind().resource_request();
                self.used_cores -= c;
                self.used_memory_gb -= m;
            }
        }
        self.work_done += work;
        work
    }

    /// Total useful work done by this host (core-hours).
    pub fn work_done(&self) -> f64 {
        self.work_done
    }

    /// Number of batch jobs completed on this host.
    pub fn completed_jobs(&self) -> u64 {
        self.completed_jobs
    }

    /// Captures the host's runtime state for checkpointing.
    pub fn capture_state(&self) -> HostState {
        HostState {
            dvfs: self.dvfs,
            online: self.online,
            boot_remaining: self.boot_remaining,
            work_done: self.work_done,
            completed_jobs: self.completed_jobs,
            vms: self.vms.iter().map(Vm::capture).collect(),
        }
    }

    /// Re-applies a captured runtime state onto this host (same id,
    /// power model and capacity as the captured one). The cached usage
    /// counters are re-derived from the restored VM list.
    pub fn restore_state(&mut self, state: &HostState) {
        self.dvfs = state.dvfs;
        self.online = state.online;
        self.boot_remaining = state.boot_remaining;
        self.work_done = state.work_done;
        self.completed_jobs = state.completed_jobs;
        self.vms = state.vms.iter().copied().map(Vm::restore).collect();
        self.used_cores = 0;
        self.used_memory_gb = 0;
        let requests: Vec<_> = self
            .vms
            .iter()
            .filter(|vm| !vm.is_completed())
            .map(|vm| vm.kind().resource_request())
            .collect();
        for request in requests {
            self.charge(request);
        }
    }

    /// Drops completed batch VMs, returning how many were reaped.
    pub fn reap_completed(&mut self) -> usize {
        let before = self.vms.len();
        self.vms.retain(|vm| !vm.is_completed());
        before - self.vms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_workload::WorkloadKind;

    fn host() -> Host {
        Host::new(
            ServerId(0),
            ServerPowerModel::prototype(),
            ServerCapacity::default(),
        )
    }

    fn vm(id: u64, kind: WorkloadKind) -> Vm {
        Vm::new(VmId(id), kind)
    }

    #[test]
    fn admission_respects_capacity() {
        let mut h = host();
        // 8 cores: SoftwareTesting (6) + WordCount (2) fills it.
        h.admit(vm(0, WorkloadKind::SoftwareTesting)).unwrap();
        h.admit(vm(1, WorkloadKind::WordCount)).unwrap();
        let err = h.admit(vm(2, WorkloadKind::KMeans)).unwrap_err();
        assert!(matches!(err, ServerError::InsufficientResources { .. }));
    }

    #[test]
    fn eviction_frees_resources() {
        let mut h = host();
        h.admit(vm(0, WorkloadKind::SoftwareTesting)).unwrap();
        assert!(!h.fits((4, 8)));
        let evicted = h.evict(VmId(0)).unwrap();
        assert_eq!(evicted.id(), VmId(0));
        assert!(h.fits((4, 8)));
        assert!(matches!(
            h.evict(VmId(9)),
            Err(ServerError::UnknownVm { .. })
        ));
    }

    #[test]
    fn utilization_aggregates_running_vms() {
        let mut h = host();
        h.admit(vm(0, WorkloadKind::SoftwareTesting)).unwrap(); // 6c × 0.95
        let u = h.utilization(TimeOfDay::NOON).value();
        assert!((u - 6.0 * 0.95 / 8.0).abs() < 1e-9, "u {u}");
    }

    #[test]
    fn offline_host_draws_nothing_and_does_nothing() {
        let mut h = host();
        h.admit(vm(0, WorkloadKind::KMeans)).unwrap();
        h.power_off();
        assert_eq!(h.power(TimeOfDay::NOON), Watts::ZERO);
        assert_eq!(h.step(TimeOfDay::NOON, SimDuration::from_minutes(10)), 0.0);
        assert_eq!(h.vm(VmId(0)).unwrap().state(), VmState::Paused);
    }

    #[test]
    fn power_off_then_on_resumes_checkpointed_vms() {
        let mut h = host();
        h.admit(vm(0, WorkloadKind::KMeans)).unwrap();
        h.power_off();
        h.power_on();
        assert_eq!(h.vm(VmId(0)).unwrap().state(), VmState::Paused);
        h.resume_all();
        assert_eq!(h.vm(VmId(0)).unwrap().state(), VmState::Running);
    }

    #[test]
    fn dvfs_reduces_power_and_work() {
        let mut fast = host();
        let mut slow = host();
        fast.admit(vm(0, WorkloadKind::SoftwareTesting)).unwrap();
        slow.admit(vm(0, WorkloadKind::SoftwareTesting)).unwrap();
        slow.set_dvfs(DvfsLevel::P4);
        assert!(slow.power(TimeOfDay::NOON) < fast.power(TimeOfDay::NOON));
        let dt = SimDuration::from_minutes(30);
        let wf = fast.step(TimeOfDay::NOON, dt);
        let ws = slow.step(TimeOfDay::NOON, dt);
        assert!(ws < wf);
    }

    #[test]
    fn completed_jobs_counted_and_reaped() {
        let mut h = host();
        h.admit(vm(0, WorkloadKind::WordCount)).unwrap();
        for _ in 0..12 {
            h.step(TimeOfDay::NOON, SimDuration::from_minutes(10));
        }
        assert_eq!(h.completed_jobs(), 1);
        assert_eq!(h.reap_completed(), 1);
        assert_eq!(h.vms().count(), 0);
    }

    #[test]
    fn completed_vms_free_capacity_without_reaping() {
        let mut h = host();
        h.admit(vm(0, WorkloadKind::SoftwareTesting)).unwrap();
        h.admit(vm(1, WorkloadKind::WordCount)).unwrap();
        // Run WordCount to completion (1 h nominal).
        for _ in 0..12 {
            h.step(TimeOfDay::NOON, SimDuration::from_minutes(10));
        }
        assert!(h.vm(VmId(1)).unwrap().is_completed());
        assert!(h.fits((2, 4)), "completed VM no longer holds resources");
    }
}
