//! Virtualized server models — the compute substrate of the BAAT
//! reproduction.
//!
//! The paper's prototype runs six servers (three IBM x330, three HP
//! ProLiant) under Xen 4.1.2, with per-server batteries; BAAT actuates
//! DVFS and VM migration through a software driver (§IV.A, §V). This
//! crate provides:
//!
//! * [`ServerPowerModel`] — idle/peak utilization-linear power with DVFS
//!   scaling;
//! * [`DvfsLevel`] — the five-state frequency ladder (speed vs `f^2.5`
//!   power);
//! * [`Host`] — a hypervisor: VM admission by CPU/memory, execution,
//!   checkpoint on power-off;
//! * [`Cluster`] — multiple hosts with live migration (memory-
//!   proportional transfer time, capacity reservation, stop-and-copy
//!   downtime).
//!
//! # Examples
//!
//! ```
//! use baat_server::Cluster;
//! use baat_units::{SimDuration, SimInstant, TimeOfDay};
//! use baat_workload::{Vm, VmId, WorkloadKind};
//!
//! let mut cluster = Cluster::prototype();
//! cluster
//!     .host_mut(0)?
//!     .admit(Vm::new(VmId(0), WorkloadKind::KMeans))?;
//! let report = cluster.step(
//!     SimInstant::from_secs(10),
//!     TimeOfDay::NOON,
//!     SimDuration::from_secs(10),
//! );
//! assert!(report.work > 0.0);
//! # Ok::<(), baat_server::ServerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod dvfs;
mod error;
mod hypervisor;
mod power_model;

pub use cluster::{Cluster, ClusterState, ClusterStep, InFlightState, MigrationSpec};
pub use dvfs::DvfsLevel;
pub use error::{MigrationBlock, ServerError};
pub use hypervisor::{Host, HostState, ServerCapacity, ServerId, BOOT_DELAY};
pub use power_model::ServerPowerModel;
