//! The server cluster: cross-host VM migration and aggregate accounting.

use baat_units::{SimDuration, SimInstant, TimeOfDay, Watts};
use baat_workload::{Vm, VmId, VmSnapshot};

use crate::error::{MigrationBlock, ServerError};
use crate::hypervisor::{Host, HostState, ServerCapacity, ServerId};
use crate::power_model::ServerPowerModel;

/// Live-migration cost model.
///
/// The paper notes BAAT-h's naive migrations cause "frequent VM stop and
/// restart" overhead (§VI.F); transfer time scales with VM memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationSpec {
    /// Transfer time per GiB of VM memory.
    pub seconds_per_gb: u64,
    /// Fixed stop-and-copy downtime added per migration.
    pub fixed_overhead: SimDuration,
}

impl Default for MigrationSpec {
    fn default() -> Self {
        Self {
            seconds_per_gb: 30,
            fixed_overhead: SimDuration::from_secs(30),
        }
    }
}

impl MigrationSpec {
    /// Total out-of-service time for a VM with the given memory footprint.
    pub fn duration_for(&self, memory_gb: u32) -> SimDuration {
        SimDuration::from_secs(self.seconds_per_gb * u64::from(memory_gb)) + self.fixed_overhead
    }
}

#[derive(Debug, Clone, PartialEq)]
struct InFlight {
    vm: Vm,
    to: ServerId,
    completes_at: SimInstant,
}

/// Checkpoint view of one in-flight migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InFlightState {
    /// The migrating VM.
    pub vm: VmSnapshot,
    /// Destination host.
    pub to: ServerId,
    /// When the transfer completes.
    pub completes_at: SimInstant,
}

/// Checkpointable runtime state of a whole [`Cluster`]: per-host state,
/// in-flight migrations and the migration counter. The migration cost
/// model and host construction parameters are reproduced from
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterState {
    /// Per-host runtime state, in host order.
    pub hosts: Vec<HostState>,
    /// Migrations currently in flight, in initiation order.
    pub in_flight: Vec<InFlightState>,
    /// Total migrations initiated.
    pub migrations_started: u64,
}

/// Aggregate outcome of one cluster step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterStep {
    /// Useful work done this step (core-hours).
    pub work: f64,
    /// Migrations that completed this step.
    pub migrations_completed: usize,
}

/// A cluster of virtualized servers with live migration.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    hosts: Vec<Host>,
    in_flight: Vec<InFlight>,
    migration_spec: MigrationSpec,
    migrations_started: u64,
}

impl Cluster {
    /// Creates a cluster of `count` identical hosts.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::InvalidConfig`] if `count` is zero.
    pub fn homogeneous(
        count: usize,
        power_model: ServerPowerModel,
        capacity: ServerCapacity,
        migration_spec: MigrationSpec,
    ) -> Result<Self, ServerError> {
        if count == 0 {
            return Err(ServerError::InvalidConfig {
                field: "count",
                reason: "cluster needs at least one server".to_owned(),
            });
        }
        Ok(Self {
            hosts: (0..count)
                .map(|i| Host::new(ServerId(i), power_model, capacity))
                .collect(),
            in_flight: Vec::new(),
            migration_spec,
            migrations_started: 0,
        })
    }

    /// The paper's six-server prototype cluster.
    pub fn prototype() -> Self {
        Self::homogeneous(
            6,
            ServerPowerModel::prototype(),
            ServerCapacity::default(),
            MigrationSpec::default(),
        )
        .expect("six is non-zero")
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// `true` if the cluster has no hosts (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Immutable host access.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownServer`] for an out-of-range index.
    pub fn host(&self, index: usize) -> Result<&Host, ServerError> {
        self.hosts.get(index).ok_or(ServerError::UnknownServer {
            index,
            len: self.hosts.len(),
        })
    }

    /// Mutable host access.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownServer`] for an out-of-range index.
    pub fn host_mut(&mut self, index: usize) -> Result<&mut Host, ServerError> {
        let len = self.hosts.len();
        self.hosts
            .get_mut(index)
            .ok_or(ServerError::UnknownServer { index, len })
    }

    /// Iterates over hosts.
    pub fn hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts.iter()
    }

    /// Iterates mutably over hosts.
    pub fn hosts_mut(&mut self) -> impl Iterator<Item = &mut Host> {
        self.hosts.iter_mut()
    }

    /// The migration cost model.
    pub fn migration_spec(&self) -> MigrationSpec {
        self.migration_spec
    }

    /// Total migrations initiated.
    pub fn migrations_started(&self) -> u64 {
        self.migrations_started
    }

    /// Locates the host currently running a VM.
    pub fn locate(&self, vm: VmId) -> Option<ServerId> {
        self.hosts
            .iter()
            .find(|h| h.vm(vm).is_some())
            .map(|h| h.id())
    }

    /// Free resources on a host *minus* reservations for in-flight
    /// migrations targeting it. An unknown target has no resources.
    pub fn reservable_resources(&self, target: ServerId) -> (u32, u32) {
        let Some(host) = self.hosts.get(target.0) else {
            return (0, 0);
        };
        let (mut fc, mut fm) = host.free_resources();
        for mig in self.in_flight.iter().filter(|m| m.to == target) {
            let (c, m) = mig.vm.kind().resource_request();
            fc = fc.saturating_sub(c);
            fm = fm.saturating_sub(m);
        }
        (fc, fm)
    }

    /// Starts a live migration of `vm` to `target`.
    ///
    /// The VM stops making progress immediately and resumes on the target
    /// when the transfer completes (memory-proportional duration).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownVm`] if no host runs the VM,
    /// [`ServerError::MigrationRejected`] if the VM is already migrating
    /// or the target is its current host, and
    /// [`ServerError::InsufficientResources`] if the target (net of
    /// reservations) cannot fit it.
    pub fn begin_migration(
        &mut self,
        vm: VmId,
        target: ServerId,
        now: SimInstant,
    ) -> Result<(), ServerError> {
        if target.0 >= self.hosts.len() {
            return Err(ServerError::UnknownServer {
                index: target.0,
                len: self.hosts.len(),
            });
        }
        if self.in_flight.iter().any(|m| m.vm.id() == vm) {
            return Err(ServerError::MigrationRejected {
                vm,
                block: MigrationBlock::AlreadyInFlight,
            });
        }
        let source = self.locate(vm).ok_or(ServerError::UnknownVm { vm })?;
        if source == target {
            return Err(ServerError::MigrationRejected {
                vm,
                block: MigrationBlock::TargetIsSource,
            });
        }
        let request = self
            .host(source.0)?
            .vm(vm)
            .ok_or(ServerError::UnknownVm { vm })?
            .kind()
            .resource_request();
        let (fc, fm) = self.reservable_resources(target);
        if request.0 > fc || request.1 > fm {
            return Err(ServerError::InsufficientResources {
                vm,
                requested: request,
                free: (fc, fm),
            });
        }
        let mut evicted = self.host_mut(source.0)?.evict(vm)?;
        evicted.begin_migration();
        let duration = self.migration_spec.duration_for(request.1);
        self.in_flight.push(InFlight {
            vm: evicted,
            to: target,
            completes_at: now + duration,
        });
        self.migrations_started += 1;
        Ok(())
    }

    /// Number of migrations currently in flight.
    pub fn migrations_in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Advances the whole cluster one step: completes due migrations,
    /// then steps every host.
    pub fn step(&mut self, now: SimInstant, tod: TimeOfDay, dt: SimDuration) -> ClusterStep {
        let mut completed = 0;
        let mut remaining = Vec::with_capacity(self.in_flight.len());
        for mut mig in self.in_flight.drain(..) {
            if mig.completes_at <= now {
                // Capacity was reserved when the migration started; a
                // target that has somehow vanished keeps the VM in
                // flight rather than dropping it (or panicking).
                if let Some(host) = self.hosts.get_mut(mig.to.0) {
                    mig.vm.resume();
                    host.admit_unchecked(mig.vm);
                    completed += 1;
                } else {
                    remaining.push(mig);
                }
            } else {
                remaining.push(mig);
            }
        }
        self.in_flight = remaining;

        let work = self.hosts.iter_mut().map(|h| h.step(tod, dt)).sum();
        ClusterStep {
            work,
            migrations_completed: completed,
        }
    }

    /// Total electrical power drawn by all hosts.
    pub fn total_power(&self, tod: TimeOfDay) -> Watts {
        self.hosts.iter().map(|h| h.power(tod)).sum()
    }

    /// Total useful work done (core-hours) across all hosts.
    pub fn total_work_done(&self) -> f64 {
        self.hosts.iter().map(Host::work_done).sum()
    }

    /// Captures the cluster's runtime state for checkpointing.
    pub fn capture_state(&self) -> ClusterState {
        ClusterState {
            hosts: self.hosts.iter().map(Host::capture_state).collect(),
            in_flight: self
                .in_flight
                .iter()
                .map(|m| InFlightState {
                    vm: m.vm.capture(),
                    to: m.to,
                    completes_at: m.completes_at,
                })
                .collect(),
            migrations_started: self.migrations_started,
        }
    }

    /// Re-applies a captured runtime state onto this cluster.
    ///
    /// The cluster must have been constructed with the same host count
    /// and parameters as the captured one.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::InvalidConfig`] if the host counts differ.
    pub fn restore_state(&mut self, state: &ClusterState) -> Result<(), ServerError> {
        if state.hosts.len() != self.hosts.len() {
            return Err(ServerError::InvalidConfig {
                field: "hosts",
                reason: format!(
                    "checkpoint has {} hosts, cluster has {}",
                    state.hosts.len(),
                    self.hosts.len()
                ),
            });
        }
        for (host, hs) in self.hosts.iter_mut().zip(&state.hosts) {
            host.restore_state(hs);
        }
        self.in_flight = state
            .in_flight
            .iter()
            .map(|m| InFlight {
                vm: Vm::restore(m.vm),
                to: m.to,
                completes_at: m.completes_at,
            })
            .collect();
        self.migrations_started = state.migrations_started;
        Ok(())
    }

    /// Powers every host on and resumes checkpointed VMs.
    pub fn power_on_all(&mut self) {
        for h in &mut self.hosts {
            h.power_on();
            h.resume_all();
        }
    }

    /// Powers every host off (checkpointing all VMs).
    pub fn power_off_all(&mut self) {
        for h in &mut self.hosts {
            h.power_off();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_workload::{VmState, WorkloadKind};

    fn cluster() -> Cluster {
        Cluster::prototype()
    }

    fn vm(id: u64, kind: WorkloadKind) -> Vm {
        Vm::new(VmId(id), kind)
    }

    #[test]
    fn prototype_has_six_servers() {
        assert_eq!(cluster().len(), 6);
    }

    #[test]
    fn out_of_range_indices_error_instead_of_panicking() {
        let mut c = cluster();
        assert_eq!(c.reservable_resources(ServerId(99)), (0, 0));
        c.host_mut(0)
            .unwrap()
            .admit(vm(1, WorkloadKind::KMeans))
            .unwrap();
        assert!(matches!(
            c.begin_migration(VmId(1), ServerId(99), SimInstant::START),
            Err(ServerError::UnknownServer { index: 99, .. })
        ));
        assert_eq!(c.locate(VmId(1)), Some(ServerId(0)), "VM stays put");
    }

    #[test]
    fn locate_finds_hosted_vm() {
        let mut c = cluster();
        c.host_mut(2)
            .unwrap()
            .admit(vm(7, WorkloadKind::KMeans))
            .unwrap();
        assert_eq!(c.locate(VmId(7)), Some(ServerId(2)));
        assert_eq!(c.locate(VmId(8)), None);
    }

    #[test]
    fn migration_moves_vm_after_duration() {
        let mut c = cluster();
        c.host_mut(0)
            .unwrap()
            .admit(vm(1, WorkloadKind::KMeans))
            .unwrap();
        let t0 = SimInstant::START;
        c.begin_migration(VmId(1), ServerId(3), t0).unwrap();
        assert_eq!(c.migrations_in_flight(), 1);
        assert_eq!(c.locate(VmId(1)), None, "in transit");

        // K-Means: 6 GiB × 30 s + 30 s = 210 s.
        let dt = SimDuration::from_secs(60);
        let mut now = t0;
        for _ in 0..3 {
            now += dt;
            c.step(now, TimeOfDay::NOON, dt);
        }
        assert_eq!(c.migrations_in_flight(), 1, "not yet complete");
        now += dt;
        let report = c.step(now, TimeOfDay::NOON, dt);
        assert_eq!(report.migrations_completed, 1);
        assert_eq!(c.locate(VmId(1)), Some(ServerId(3)));
        assert_eq!(
            c.host(3).unwrap().vm(VmId(1)).unwrap().state(),
            VmState::Running
        );
    }

    #[test]
    fn migration_to_same_host_rejected() {
        let mut c = cluster();
        c.host_mut(0)
            .unwrap()
            .admit(vm(1, WorkloadKind::KMeans))
            .unwrap();
        let err = c
            .begin_migration(VmId(1), ServerId(0), SimInstant::START)
            .unwrap_err();
        assert!(matches!(err, ServerError::MigrationRejected { .. }));
    }

    #[test]
    fn double_migration_rejected() {
        let mut c = cluster();
        c.host_mut(0)
            .unwrap()
            .admit(vm(1, WorkloadKind::KMeans))
            .unwrap();
        c.begin_migration(VmId(1), ServerId(1), SimInstant::START)
            .unwrap();
        let err = c
            .begin_migration(VmId(1), ServerId(2), SimInstant::START)
            .unwrap_err();
        assert!(matches!(err, ServerError::MigrationRejected { .. }));
    }

    #[test]
    fn migration_respects_target_reservations() {
        let mut c = cluster();
        // Fill target host 1 to 6/8 cores so only one 4-core VM more fits
        // by reservation.
        c.host_mut(1)
            .unwrap()
            .admit(vm(9, WorkloadKind::SoftwareTesting)) // 6 cores
            .unwrap();
        c.host_mut(0)
            .unwrap()
            .admit(vm(1, WorkloadKind::WordCount))
            .unwrap(); // 2 cores
        c.host_mut(0)
            .unwrap()
            .admit(vm(2, WorkloadKind::WordCount))
            .unwrap();
        c.begin_migration(VmId(1), ServerId(1), SimInstant::START)
            .unwrap();
        // Second 2-core VM no longer fits (6 + 2 reserved = 8 cores, but
        // memory: 8 + 4 = 12 of 16 — cores are the binding constraint).
        let err = c
            .begin_migration(VmId(2), ServerId(1), SimInstant::START)
            .unwrap_err();
        assert!(matches!(err, ServerError::InsufficientResources { .. }));
    }

    #[test]
    fn migration_pauses_progress() {
        let mut c = cluster();
        c.host_mut(0)
            .unwrap()
            .admit(vm(1, WorkloadKind::KMeans))
            .unwrap();
        c.begin_migration(VmId(1), ServerId(1), SimInstant::START)
            .unwrap();
        let report = c.step(
            SimInstant::from_secs(10),
            TimeOfDay::NOON,
            SimDuration::from_secs(10),
        );
        assert_eq!(report.work, 0.0, "migrating VM does no work");
    }

    #[test]
    fn power_off_all_stops_cluster_power() {
        let mut c = cluster();
        c.host_mut(0)
            .unwrap()
            .admit(vm(1, WorkloadKind::SoftwareTesting))
            .unwrap();
        assert!(c.total_power(TimeOfDay::NOON).as_f64() > 0.0);
        c.power_off_all();
        assert_eq!(c.total_power(TimeOfDay::NOON), Watts::ZERO);
        c.power_on_all();
        assert!(c.total_power(TimeOfDay::NOON).as_f64() > 0.0);
        assert_eq!(
            c.host(0).unwrap().vm(VmId(1)).unwrap().state(),
            VmState::Running
        );
    }

    #[test]
    fn work_accumulates_across_hosts() {
        let mut c = cluster();
        c.host_mut(0)
            .unwrap()
            .admit(vm(1, WorkloadKind::KMeans))
            .unwrap();
        c.host_mut(1)
            .unwrap()
            .admit(vm(2, WorkloadKind::WordCount))
            .unwrap();
        let mut now = SimInstant::START;
        let dt = SimDuration::from_minutes(10);
        for _ in 0..6 {
            now += dt;
            c.step(now, TimeOfDay::NOON, dt);
        }
        assert!(c.total_work_done() > 0.0);
        assert!(c.host(0).unwrap().work_done() > 0.0);
        assert!(c.host(1).unwrap().work_done() > 0.0);
    }
}
