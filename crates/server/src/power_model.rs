//! Server power model: idle/peak linear interpolation with DVFS scaling.

use baat_units::{Fraction, Watts};

use crate::dvfs::DvfsLevel;
use crate::error::ServerError;

/// Utilization-linear server power model.
///
/// `P(u) = P_idle + (P_peak − P_idle) · u · power_factor(dvfs)` — the
/// standard datacenter approximation; DVFS scales only the dynamic
/// component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerPowerModel {
    idle: Watts,
    peak: Watts,
}

impl ServerPowerModel {
    /// Creates a model from idle and peak power.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::InvalidConfig`] if `idle` is negative, not
    /// finite, or at least `peak`.
    pub fn new(idle: Watts, peak: Watts) -> Result<Self, ServerError> {
        if !idle.as_f64().is_finite() || !peak.as_f64().is_finite() || idle.as_f64() < 0.0 {
            return Err(ServerError::InvalidConfig {
                field: "idle/peak",
                reason: format!("powers must be finite and non-negative: {idle}, {peak}"),
            });
        }
        if idle >= peak {
            return Err(ServerError::InvalidConfig {
                field: "peak",
                reason: format!("peak {peak} must exceed idle {idle}"),
            });
        }
        Ok(Self { idle, peak })
    }

    /// The paper-prototype class of server (IBM x330 / HP ProLiant era):
    /// 70 W idle, 240 W peak. Against the default two-battery 70 Ah node
    /// this is ~3.4 W/Ah, inside the paper's Fig 15 sweep range.
    pub fn prototype() -> Self {
        Self::new(Watts::new(70.0), Watts::new(240.0)).expect("static values are valid")
    }

    /// Idle power.
    pub fn idle(&self) -> Watts {
        self.idle
    }

    /// Peak power.
    pub fn peak(&self) -> Watts {
        self.peak
    }

    /// Power drawn at the given utilization and DVFS level while online.
    pub fn power(&self, utilization: Fraction, dvfs: DvfsLevel) -> Watts {
        self.idle + (self.peak - self.idle) * (utilization.value() * dvfs.power_factor())
    }
}

impl Default for ServerPowerModel {
    fn default() -> Self {
        Self::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frac(v: f64) -> Fraction {
        Fraction::new(v).unwrap()
    }

    #[test]
    fn idle_at_zero_utilization() {
        let m = ServerPowerModel::prototype();
        assert_eq!(m.power(Fraction::ZERO, DvfsLevel::P0), m.idle());
    }

    #[test]
    fn peak_at_full_utilization_full_speed() {
        let m = ServerPowerModel::prototype();
        assert_eq!(m.power(Fraction::ONE, DvfsLevel::P0), m.peak());
    }

    #[test]
    fn throttling_cuts_power_at_same_utilization() {
        let m = ServerPowerModel::prototype();
        let full = m.power(frac(0.8), DvfsLevel::P0);
        let slow = m.power(frac(0.8), DvfsLevel::P4);
        assert!(slow < full);
        assert!(slow > m.idle());
    }

    #[test]
    fn rejects_idle_at_or_above_peak() {
        assert!(ServerPowerModel::new(Watts::new(150.0), Watts::new(150.0)).is_err());
        assert!(ServerPowerModel::new(Watts::new(200.0), Watts::new(150.0)).is_err());
        assert!(ServerPowerModel::new(Watts::new(-1.0), Watts::new(150.0)).is_err());
    }

    #[test]
    fn power_is_monotone_in_utilization() {
        let m = ServerPowerModel::prototype();
        let mut prev = Watts::ZERO;
        for u in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = m.power(frac(u), DvfsLevel::P1);
            assert!(p > prev || u == 0.0);
            prev = p;
        }
    }
}
