//! DVFS frequency ladder.
//!
//! BAAT's slowdown policy throttles CPU frequency to cap server power when
//! a battery nears its DDT/DR thresholds (paper §IV.C, Fig 9). The ladder
//! models five P-states; dynamic power scales roughly with `f·V²`, which
//! we approximate as `speed^2.5` on the dynamic (above-idle) component.

use baat_units::Fraction;

/// A DVFS performance state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum DvfsLevel {
    /// Full frequency.
    #[default]
    P0,
    /// 85 % frequency.
    P1,
    /// 70 % frequency.
    P2,
    /// 55 % frequency.
    P3,
    /// 40 % frequency — the deepest throttle.
    P4,
}

impl DvfsLevel {
    /// All levels, fastest first.
    pub const ALL: [DvfsLevel; 5] = [
        DvfsLevel::P0,
        DvfsLevel::P1,
        DvfsLevel::P2,
        DvfsLevel::P3,
        DvfsLevel::P4,
    ];

    /// Relative execution speed (1.0 at P0).
    pub fn speed(self) -> Fraction {
        let v = match self {
            DvfsLevel::P0 => 1.0,
            DvfsLevel::P1 => 0.85,
            DvfsLevel::P2 => 0.70,
            DvfsLevel::P3 => 0.55,
            DvfsLevel::P4 => 0.40,
        };
        Fraction::saturating(v)
    }

    /// Multiplier on the *dynamic* power component (`speed^2.5`).
    pub fn power_factor(self) -> f64 {
        self.speed().value().powf(2.5)
    }

    /// The next slower level, or `None` at the deepest throttle.
    pub fn slower(self) -> Option<DvfsLevel> {
        match self {
            DvfsLevel::P0 => Some(DvfsLevel::P1),
            DvfsLevel::P1 => Some(DvfsLevel::P2),
            DvfsLevel::P2 => Some(DvfsLevel::P3),
            DvfsLevel::P3 => Some(DvfsLevel::P4),
            DvfsLevel::P4 => None,
        }
    }

    /// Static P-state name ("P0" … "P4").
    pub fn name(self) -> &'static str {
        match self {
            DvfsLevel::P0 => "P0",
            DvfsLevel::P1 => "P1",
            DvfsLevel::P2 => "P2",
            DvfsLevel::P3 => "P3",
            DvfsLevel::P4 => "P4",
        }
    }

    /// The next faster level, or `None` at full speed.
    pub fn faster(self) -> Option<DvfsLevel> {
        match self {
            DvfsLevel::P0 => None,
            DvfsLevel::P1 => Some(DvfsLevel::P0),
            DvfsLevel::P2 => Some(DvfsLevel::P1),
            DvfsLevel::P3 => Some(DvfsLevel::P2),
            DvfsLevel::P4 => Some(DvfsLevel::P3),
        }
    }
}

impl core::fmt::Display for DvfsLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_in_speed_and_power() {
        for pair in DvfsLevel::ALL.windows(2) {
            assert!(pair[0].speed() > pair[1].speed());
            assert!(pair[0].power_factor() > pair[1].power_factor());
        }
    }

    #[test]
    fn power_saves_more_than_speed_costs() {
        // The whole point of DVFS: cubic-ish power vs linear speed.
        for level in &DvfsLevel::ALL[1..] {
            assert!(level.power_factor() < level.speed().value());
        }
    }

    #[test]
    fn slower_faster_are_inverses() {
        for level in DvfsLevel::ALL {
            if let Some(s) = level.slower() {
                assert_eq!(s.faster(), Some(level));
            }
            if let Some(f) = level.faster() {
                assert_eq!(f.slower(), Some(level));
            }
        }
        assert_eq!(DvfsLevel::P4.slower(), None);
        assert_eq!(DvfsLevel::P0.faster(), None);
    }

    #[test]
    fn p0_is_identity() {
        assert_eq!(DvfsLevel::P0.speed(), Fraction::ONE);
        assert_eq!(DvfsLevel::P0.power_factor(), 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(DvfsLevel::P0.to_string(), "P0");
        assert_eq!(DvfsLevel::P4.to_string(), "P4");
    }
}
