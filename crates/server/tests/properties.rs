//! Property-based tests for the hypervisor and cluster.

use baat_server::{
    Cluster, DvfsLevel, Host, MigrationSpec, ServerCapacity, ServerId, ServerPowerModel,
};
use baat_testkit::prelude::*;
use baat_units::{Fraction, SimDuration, SimInstant, TimeOfDay};
use baat_workload::{Vm, VmId, WorkloadKind};

fn kind_strategy() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::NutchIndexing),
        Just(WorkloadKind::KMeans),
        Just(WorkloadKind::WordCount),
        Just(WorkloadKind::SoftwareTesting),
        Just(WorkloadKind::WebServing),
        Just(WorkloadKind::DataAnalytics),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Admission never over-commits CPU or memory.
    #[test]
    fn admission_respects_capacity(kinds in baat_testkit::collection::vec(kind_strategy(), 1..20)) {
        let mut host = Host::new(
            ServerId(0),
            ServerPowerModel::prototype(),
            ServerCapacity::default(),
        );
        for (i, kind) in kinds.into_iter().enumerate() {
            let _ = host.admit(Vm::new(VmId(i as u64), kind));
            let (used_c, used_m) = host.used_resources();
            prop_assert!(used_c <= host.capacity().cores);
            prop_assert!(used_m <= host.capacity().memory_gb);
        }
    }

    /// Utilization and power are bounded for any VM mix and DVFS level.
    #[test]
    fn power_bounded(
        kinds in baat_testkit::collection::vec(kind_strategy(), 0..6),
        level in 0usize..5,
        hour in 0u32..24,
    ) {
        let mut host = Host::new(
            ServerId(0),
            ServerPowerModel::prototype(),
            ServerCapacity::default(),
        );
        for (i, kind) in kinds.into_iter().enumerate() {
            let _ = host.admit(Vm::new(VmId(i as u64), kind));
        }
        host.set_dvfs(DvfsLevel::ALL[level]);
        let tod = TimeOfDay::from_hm(hour, 0);
        let u = host.utilization(tod);
        prop_assert!(u <= Fraction::ONE);
        let p = host.power(tod);
        prop_assert!(p >= host.power_model().idle());
        prop_assert!(p <= host.power_model().peak());
    }

    /// Migration preserves the VM: it is on exactly one host (or in
    /// flight) at all times, and arrives eventually.
    #[test]
    fn migration_conserves_vms(kind in kind_strategy(), target in 1usize..6) {
        let mut cluster = Cluster::homogeneous(
            6,
            ServerPowerModel::prototype(),
            ServerCapacity::default(),
            MigrationSpec::default(),
        ).expect("cluster builds");
        cluster.host_mut(0).expect("host 0").admit(Vm::new(VmId(9), kind)).expect("fits");
        let t0 = SimInstant::START;
        cluster.begin_migration(VmId(9), ServerId(target), t0).expect("migration starts");
        // While in flight it is nowhere.
        prop_assert_eq!(cluster.locate(VmId(9)), None);
        prop_assert_eq!(cluster.migrations_in_flight(), 1);
        // Step far enough for any memory size to transfer.
        let dt = SimDuration::from_minutes(1);
        let mut now = t0;
        for _ in 0..60 {
            now += dt;
            cluster.step(now, TimeOfDay::NOON, dt);
        }
        prop_assert_eq!(cluster.locate(VmId(9)), Some(ServerId(target)));
        prop_assert_eq!(cluster.migrations_in_flight(), 0);
    }

    /// Work done by a host is monotone over time and zero while offline.
    #[test]
    fn work_monotone(kind in kind_strategy(), steps in 1usize..50) {
        let mut host = Host::new(
            ServerId(0),
            ServerPowerModel::prototype(),
            ServerCapacity::default(),
        );
        host.admit(Vm::new(VmId(0), kind)).expect("fits");
        let mut last = 0.0;
        for i in 0..steps {
            if i == steps / 2 {
                host.power_off();
            }
            let before = host.work_done();
            host.step(TimeOfDay::NOON, SimDuration::from_minutes(5));
            prop_assert!(host.work_done() >= before);
            prop_assert!(host.work_done() >= last);
            last = host.work_done();
        }
    }
}
