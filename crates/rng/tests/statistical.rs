//! Statistical smoke tests for `baat-rng`: seed reproducibility, range
//! bounds, and rough uniformity (chi-square). These are deterministic —
//! fixed seeds, fixed thresholds — so they can never flake in CI.

use baat_rng::{derive_seed, StdRng};

/// Chi-square statistic of `draws` uniform draws into `bins` buckets.
fn chi_square(seed: u64, bins: usize, draws: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0u64; bins];
    for _ in 0..draws {
        counts[rng.random_range(0..bins)] += 1;
    }
    let expected = draws as f64 / bins as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

#[test]
fn integer_draws_are_roughly_uniform() {
    // 64 bins ⇒ 63 degrees of freedom. The 0.999 quantile of χ²(63) is
    // ≈ 103.4; a healthy generator sits near 63. Three fixed seeds keep
    // one unlucky stream from masking a real defect.
    for seed in [1, 2015, 0xDEAD_BEEF] {
        let stat = chi_square(seed, 64, 100_000);
        assert!(stat < 103.4, "chi-square {stat} too high for seed {seed}");
        assert!(
            stat > 20.0,
            "chi-square {stat} suspiciously low for seed {seed}"
        );
    }
}

#[test]
fn float_draws_are_roughly_uniform() {
    let mut rng = StdRng::seed_from_u64(99);
    let bins = 50;
    let draws = 100_000;
    let mut counts = vec![0u64; bins];
    for _ in 0..draws {
        let x: f64 = rng.random_range(0.0..1.0);
        counts[((x * bins as f64) as usize).min(bins - 1)] += 1;
    }
    let expected = draws as f64 / bins as f64;
    let stat: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    // 0.999 quantile of χ²(49) ≈ 85.4.
    assert!(stat < 85.4, "chi-square {stat} too high");
}

#[test]
fn float_range_mean_is_centred() {
    let mut rng = StdRng::seed_from_u64(7);
    let n = 200_000;
    let sum: f64 = (0..n).map(|_| rng.random_range(-1.0..=1.0)).sum();
    let mean = sum / f64::from(n);
    assert!(mean.abs() < 0.01, "mean {mean} off-centre");
}

#[test]
fn same_seed_same_stream_across_types() {
    let mut a = StdRng::seed_from_u64(123);
    let mut b = StdRng::seed_from_u64(123);
    for _ in 0..100 {
        assert_eq!(a.random_range(0..1000u64), b.random_range(0..1000u64));
        let x: f64 = a.random_range(0.0..1.0);
        let y: f64 = b.random_range(0.0..1.0);
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "float draws must be bit-identical"
        );
    }
}

#[test]
fn derived_seeds_produce_decorrelated_streams() {
    let mut a = StdRng::seed_from_u64(derive_seed(42, 0));
    let mut b = StdRng::seed_from_u64(derive_seed(42, 1));
    let matches = (0..1000)
        .filter(|_| a.random_range(0..64u32) == b.random_range(0..64u32))
        .count();
    // Independent uniform draws over 64 buckets agree ~1/64 of the time;
    // 1000 trials should land well under 40 agreements.
    assert!(matches < 40, "streams look correlated: {matches} matches");
}

#[test]
fn bool_draws_are_balanced() {
    let mut rng = StdRng::seed_from_u64(55);
    let heads = (0..100_000).filter(|_| rng.random::<bool>()).count();
    assert!((48_000..52_000).contains(&heads), "heads {heads}");
}
