//! Uniform sampling from range expressions.
//!
//! [`SampleRange`] lets [`StdRng::random_range`](crate::StdRng::random_range)
//! accept `a..b` and `a..=b` for `f64` and all primitive integers,
//! matching the `rand` call sites this crate replaced.
//!
//! Integer ranges use Lemire's multiply-shift reduction
//! (`(x * span) >> 64`): for the spans the simulator draws (day slots,
//! fleet indices, workload tables — all ≪ 2^32) the modulo bias is below
//! 2^−32 and irrelevant next to the model's own approximations, while the
//! mapping stays branch-free and, critically for the determinism
//! contract, consumes exactly one generator word per draw.

use core::ops::{Range, RangeInclusive};

use crate::StdRng;

/// A range that a uniform value can be drawn from.
///
/// Implemented for `Range` and `RangeInclusive` over `f64` and the
/// primitive integer types.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample from empty range {:?}..{:?}",
            self.start,
            self.end
        );
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Floating-point rounding of start + u * width can land exactly on
        // `end` when width is large; fold that boundary back inside.
        if x >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        let (start, end) = self.into_inner();
        assert!(
            start <= end,
            "cannot sample from empty range {start:?}..={end:?}"
        );
        let x = start + rng.next_f64_inclusive() * (end - start);
        x.clamp(start, end)
    }
}

/// Maps one generator word onto `[0, span)` by multiply-shift.
fn reduce(word: u64, span: u64) -> u64 {
    (((u128::from(word)) * (u128::from(span))) >> 64) as u64
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end - self.start) as u64;
                self.start + reduce(rng.next_u64(), span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range {start}..={end}");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    // Full u64 domain: every word is already uniform.
                    return rng.next_u64() as $t;
                }
                start + reduce(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {}..{}",
                    self.start,
                    self.end
                );
                // Shift into unsigned offset space; spans fit in u64.
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let offset = reduce(rng.next_u64(), span) as $u;
                (self.start as $u).wrapping_add(offset) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range {start}..={end}");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = reduce(rng.next_u64(), span + 1) as $u;
                (start as $u).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!((0..5u8).contains(&rng.random_range(0..5u8)));
            assert!((10..=20u64).contains(&rng.random_range(10..=20u64)));
            assert!((-7..9i32).contains(&rng.random_range(-7..9i32)));
            assert!((0..3usize).contains(&rng.random_range(0..3usize)));
            assert!((i64::MIN..=i64::MAX).contains(&rng.random_range(i64::MIN..=i64::MAX)));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x), "{x}");
            let y: f64 = rng.random_range(-3.5..=3.5);
            assert!((-3.5..=3.5).contains(&y), "{y}");
        }
    }

    #[test]
    fn singleton_inclusive_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.random_range(4..=4u32), 4);
        let v: f64 = rng.random_range(2.5..=2.5);
        assert_eq!(v, 2.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.random_range(5..5u32);
    }

    #[test]
    fn every_bucket_reachable() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
