//! SplitMix64: the seeding and stream-derivation generator.
//!
//! SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators", OOPSLA 2014) walks a Weyl sequence and scrambles each
//! state with a variant of the MurmurHash3/Stafford mix-13 finalizer. It
//! is the conventional seeder for the xoshiro family: one `u64` in, a
//! full-period stream of well-mixed words out, with no bad seeds.

/// Golden-ratio increment of the Weyl sequence, `2^64 / φ`.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A SplitMix64 generator.
///
/// Used to expand a single `u64` seed into [`StdRng`](crate::StdRng)
/// state and to derive decorrelated per-scenario seeds from a base seed
/// (see [`derive_seed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed is valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }
}

/// The Stafford mix-13 output scrambler.
fn mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a decorrelated seed for stream `stream` from `base`.
///
/// Per-scenario parallelism wants each scenario to own an independent
/// generator: `derive_seed(base, i)` gives scenario `i` a seed whose
/// xoshiro stream shares no structure with its neighbours', while staying
/// a pure function of `(base, i)` so sweeps replay exactly.
///
/// # Examples
///
/// ```
/// use baat_rng::derive_seed;
///
/// assert_eq!(derive_seed(7, 0), derive_seed(7, 0));
/// assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
/// assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    // Two dependent mix rounds so that (base, stream) and
    // (base + 1, stream - 1)-style collisions cannot occur linearly.
    let mut s = SplitMix64::new(base ^ mix(stream.wrapping_mul(GOLDEN_GAMMA)));
    s.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C
        // implementation (Vigna, prng.di.unimi.it).
        let mut s = SplitMix64::new(1234567);
        assert_eq!(s.next_u64(), 6457827717110365317);
        assert_eq!(s.next_u64(), 3203168211198807973);
        assert_eq!(s.next_u64(), 9817491932198370423);
    }

    #[test]
    fn zero_seed_produces_nonzero_stream() {
        let mut s = SplitMix64::new(0);
        let words = [s.next_u64(), s.next_u64(), s.next_u64(), s.next_u64()];
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn derive_seed_is_injective_over_small_streams() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..10_000u64 {
            assert!(
                seen.insert(derive_seed(99, stream)),
                "collision at {stream}"
            );
        }
    }
}
