//! In-tree deterministic random-number generation for the BAAT workspace.
//!
//! The build environment is hermetic — no crates.io access — so every
//! stochastic component (manufacturing variation, cloud transients,
//! sensor noise, workload arrivals) draws from this crate instead of
//! `rand`. The API mirrors the small `rand` surface the workspace
//! actually used: [`StdRng::seed_from_u64`], [`StdRng::random_range`]
//! over integer and float ranges, and [`StdRng::random`] for a few
//! primitive types.
//!
//! # Determinism contract
//!
//! The generator is **part of the simulation's observable behaviour**:
//! the same seed must produce the same stream on every platform, every
//! build, and every thread layout, forever. Both algorithms below are
//! fixed published constants (SplitMix64 for seeding and stream
//! derivation, xoshiro256\*\* for generation) with pure integer state —
//! nothing reads the OS, the clock, or ASLR. Changing either algorithm
//! is a breaking change to every recorded experiment.
//!
//! # Examples
//!
//! ```
//! use baat_rng::StdRng;
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//!
//! let x: f64 = a.random_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let die = a.random_range(1..=6);
//! assert!((1..=6).contains(&die));
//! ```

#![forbid(unsafe_code)]

mod range;
mod splitmix;
mod xoshiro;

pub use range::SampleRange;
pub use splitmix::{derive_seed, SplitMix64};
pub use xoshiro::StdRng;

/// Types that can be drawn uniformly from their "natural" domain:
/// `[0, 1)` for floats, the full value range for integers, a fair coin
/// for `bool`.
pub trait Random: Sized {
    /// Draws one value from `rng`.
    fn random(rng: &mut StdRng) -> Self;
}

impl Random for f64 {
    fn random(rng: &mut StdRng) -> Self {
        rng.next_f64()
    }
}

impl Random for bool {
    fn random(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u32 {
    fn random(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for u64 {
    fn random(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Random for usize {
    fn random(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}
