//! xoshiro256**: the workspace's standard generator.
//!
//! xoshiro256\*\* (Blackman & Vigna, "Scrambled linear pseudorandom
//! number generators", TOMS 2021) is an all-purpose 256-bit generator
//! with period 2^256 − 1 that passes BigCrush. The workspace names it
//! [`StdRng`] deliberately: it fills the role `rand::rngs::StdRng`
//! played before the hermetic-build migration, with the same seeding
//! entry point (`seed_from_u64`).

use crate::range::SampleRange;
use crate::splitmix::SplitMix64;
use crate::Random;

/// Reciprocal of 2^53, for mapping 53 random bits onto `[0, 1)`.
const F64_NORM: f64 = 1.0 / (1u64 << 53) as f64;

/// A seedable xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use baat_rng::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(2015);
/// let jitter = rng.random_range(-0.5..=0.5);
/// assert!((-0.5..=0.5).contains(&jitter));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64, per the xoshiro authors' recommendation. Every
    /// seed (including 0) yields a distinct, well-mixed stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut seeder = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = seeder.next_u64();
        }
        // The all-zero state is the one fixed point of the xoshiro
        // transition; SplitMix64 cannot emit four consecutive zero words,
        // but guard anyway so the invariant is local.
        if s == [0; 4] {
            s[0] = GOLDEN_SALT;
        }
        Self { s }
    }

    /// Advances the generator and returns the next word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * F64_NORM
    }

    /// Uniform draw from the closed interval `[0, 1]`.
    pub fn next_f64_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }

    /// Uniform draw from a half-open (`a..b`) or closed (`a..=b`) range,
    /// for all primitive integer types and `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (`a >= b` for half-open ranges,
    /// `a > b` for closed ones), like `rand::Rng::random_range`.
    pub fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Draws a value from a type's natural uniform domain: `[0, 1)` for
    /// `f64`, a fair coin for `bool`, all values for unsigned integers.
    pub fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Splits off an independent child generator, advancing `self`.
    ///
    /// The child is seeded from the parent's next word through the full
    /// SplitMix64 expansion, so parent and child streams are
    /// decorrelated. Useful for handing each simulation subsystem its
    /// own stream while keeping a single root seed.
    pub fn fork(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_u64())
    }

    /// The raw 256-bit stream position, for checkpointing. Feeding the
    /// words back through [`StdRng::from_state`] resumes the stream at
    /// exactly this point.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator at a saved stream position.
    ///
    /// The words must come from [`StdRng::state`]; the all-zero state
    /// (xoshiro's one fixed point, unreachable from any seeded stream)
    /// is mapped onto the same salted fallback `seed_from_u64` uses, so
    /// the invariant stays local to this module.
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            s[0] = GOLDEN_SALT;
        }
        Self { s }
    }
}

/// Arbitrary non-zero fallback word (the golden gamma), never reached in
/// practice.
const GOLDEN_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
            let y = rng.next_f64_inclusive();
            assert!((0.0..=1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = StdRng::seed_from_u64(17);
        for _ in 0..257 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn all_zero_state_is_salted_not_stuck() {
        let mut rng = StdRng::from_state([0; 4]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = StdRng::seed_from_u64(11);
        let mut child = parent.fork();
        let same = (0..64).all(|_| parent.next_u64() == child.next_u64());
        assert!(!same);
    }
}
