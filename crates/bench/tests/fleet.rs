//! Fleet-scale scenario smoke tests.
//!
//! The `fleet` scenario family scales the prototype day to thousands of
//! hosts (proportional PV, one service per host plus nine batch jobs
//! per host per day) while staying deterministic from the seed alone.
//! The always-on test pins thread-invariance at a small fleet; the
//! `--ignored` tests are the CI fleet gate — a seeded 1000-host run
//! whose in-window control steps must fit a wall-clock budget and whose
//! report must be byte-identical across runner thread counts. Run them
//! release-mode:
//!
//! ```text
//! cargo test --release -p baat-bench --test fleet -- --ignored
//! ```

use std::time::Instant;

use baat_bench::runner::{fleet_config, run_scenarios_with_threads, scenario_seed, Scenario};
use baat_core::Scheme;
use baat_obs::Obs;
use baat_sim::Simulation;
use baat_solar::Weather;

/// Wall-clock budget for the timed 1000-host control-interval window,
/// overridable for slow CI hosts via `BAAT_FLEET_BUDGET_SECS`.
fn budget_secs() -> f64 {
    std::env::var("BAAT_FLEET_BUDGET_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0)
}

#[test]
fn small_fleet_is_deterministic_across_runner_threads() {
    let scenarios = |seed: u64| {
        vec![
            Scenario::new(Scheme::Baat, fleet_config(24, Weather::Cloudy, seed)),
            Scenario::new(
                Scheme::EBuff,
                fleet_config(24, Weather::Sunny, scenario_seed(seed, 1)),
            ),
            Scenario::new(
                Scheme::BaatH,
                fleet_config(24, Weather::Rainy, scenario_seed(seed, 2)),
            ),
        ]
    };
    let sequential = run_scenarios_with_threads(scenarios(9), 1);
    let parallel = run_scenarios_with_threads(scenarios(9), 4);
    assert_eq!(
        sequential, parallel,
        "24-host fleet reports diverged between 1 and 4 worker threads"
    );
    assert!(sequential.iter().all(|r| r.total_work > 0.0));
}

/// The CI fleet gate, part 1: a 1000-host BAAT day's first in-window
/// hour (120 steps at dt=30 s — twelve control intervals of placement,
/// control and battery stepping) must complete inside the wall-clock
/// budget. The overnight prefix is warmed up untimed; only the
/// in-window hour is measured.
#[test]
#[ignore = "release-mode fleet gate: run with --ignored"]
fn fleet_1k_control_hour_fits_wall_clock_budget() {
    let config = fleet_config(1000, Weather::Cloudy, 7);
    let dt = config.dt.as_secs();
    let warmup_steps = (8 * 3600 + 1800) / dt; // midnight → 08:30 window start
    let timed_steps = 3600 / dt; // one simulated hour in-window
    let mut sim = Simulation::with_obs(config, Obs::disabled()).expect("valid fleet config");
    let mut policy = Scheme::Baat.build();
    sim.run_steps(&mut policy, warmup_steps).expect("warmup");
    let started = Instant::now();
    sim.run_steps(&mut policy, timed_steps).expect("timed hour");
    let elapsed = started.elapsed().as_secs_f64();
    let budget = budget_secs();
    assert!(
        elapsed < budget,
        "1000-host in-window hour took {elapsed:.2}s, budget {budget}s \
         (override with BAAT_FLEET_BUDGET_SECS)"
    );
}

/// The CI fleet gate, part 2: the seeded 1000-host day is byte-identical
/// across `BAAT_RUNNER_THREADS` 1 vs 8 — thread scheduling must be
/// unobservable at fleet scale exactly as it is on the 6-node
/// prototype.
#[test]
#[ignore = "release-mode fleet gate: run with --ignored"]
fn fleet_1k_day_is_thread_invariant() {
    let scenarios = || {
        vec![
            Scenario::new(Scheme::Baat, fleet_config(1000, Weather::Cloudy, 7)),
            Scenario::new(Scheme::EBuff, fleet_config(1000, Weather::Cloudy, 7)),
        ]
    };
    let sequential = run_scenarios_with_threads(scenarios(), 1);
    let parallel = run_scenarios_with_threads(scenarios(), 8);
    assert_eq!(
        sequential, parallel,
        "1000-host fleet reports diverged between 1 and 8 worker threads"
    );
}
