//! Fleet-scale scenario smoke tests.
//!
//! The `fleet` scenario family scales the prototype day to thousands of
//! hosts (proportional PV, one service per host plus nine batch jobs
//! per host per day) while staying deterministic from the seed alone.
//! The always-on test pins thread-invariance at a small fleet; the
//! `--ignored` tests are the CI fleet gate — a seeded 1000-host run
//! whose in-window control steps must fit a wall-clock budget (at the
//! engine thread count from `BAAT_ENGINE_THREADS`), an 8-thread
//! sharding speedup gate, a 10 000-host wall-clock smoke, and
//! byte-identity across runner thread counts. Run them release-mode:
//!
//! ```text
//! cargo test --release -p baat-bench --test fleet -- --ignored
//! ```

use std::time::Instant;

use baat_bench::runner::{fleet_config, run_scenarios_with_threads, scenario_seed, Scenario};
use baat_core::Scheme;
use baat_obs::Obs;
use baat_sim::{EngineThreads, SimConfig, Simulation};
use baat_solar::Weather;

/// Wall-clock budget for the timed 1000-host control-interval window,
/// overridable for slow CI hosts via `BAAT_FLEET_BUDGET_SECS`.
fn budget_secs() -> f64 {
    std::env::var("BAAT_FLEET_BUDGET_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0)
}

/// Engine worker threads for the wall-clock gates: `BAAT_ENGINE_THREADS`
/// when set (the CI fleet matrix's multi-thread cell exports it), else 1.
/// Distinct from `BAAT_RUNNER_THREADS`, which fans out whole scenarios;
/// this knob shards *inside* one simulation's step.
fn engine_threads() -> usize {
    std::env::var("BAAT_ENGINE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(1)
}

fn with_engine_threads(mut config: SimConfig, threads: usize) -> SimConfig {
    config.threads = EngineThreads::new(threads);
    config
}

/// Warm a fleet simulation to the 08:30 control-window start, then time
/// `timed_secs` of simulated in-window stepping. Returns elapsed seconds.
fn timed_window_secs(config: SimConfig, timed_secs: u64) -> f64 {
    let dt = config.dt.as_secs();
    let warmup_steps = (8 * 3600 + 1800) / dt; // midnight → 08:30 window start
    let timed_steps = timed_secs / dt;
    let mut sim = Simulation::with_obs(config, Obs::disabled()).expect("valid fleet config");
    let mut policy = Scheme::Baat.build();
    sim.run_steps(&mut policy, warmup_steps).expect("warmup");
    let started = Instant::now();
    sim.run_steps(&mut policy, timed_steps)
        .expect("timed window");
    started.elapsed().as_secs_f64()
}

#[test]
fn small_fleet_is_deterministic_across_runner_threads() {
    let scenarios = |seed: u64| {
        vec![
            Scenario::new(Scheme::Baat, fleet_config(24, Weather::Cloudy, seed)),
            Scenario::new(
                Scheme::EBuff,
                fleet_config(24, Weather::Sunny, scenario_seed(seed, 1)),
            ),
            Scenario::new(
                Scheme::BaatH,
                fleet_config(24, Weather::Rainy, scenario_seed(seed, 2)),
            ),
        ]
    };
    let sequential = run_scenarios_with_threads(scenarios(9), 1);
    let parallel = run_scenarios_with_threads(scenarios(9), 4);
    assert_eq!(
        sequential, parallel,
        "24-host fleet reports diverged between 1 and 4 worker threads"
    );
    assert!(sequential.iter().all(|r| r.total_work > 0.0));
}

/// The CI fleet gate, part 1: a 1000-host BAAT day's first in-window
/// hour (120 steps at dt=30 s — twelve control intervals of placement,
/// control and battery stepping) must complete inside the wall-clock
/// budget. The overnight prefix is warmed up untimed; only the
/// in-window hour is measured.
#[test]
#[ignore = "release-mode fleet gate: run with --ignored"]
fn fleet_1k_control_hour_fits_wall_clock_budget() {
    let config = with_engine_threads(fleet_config(1000, Weather::Cloudy, 7), engine_threads());
    let elapsed = timed_window_secs(config, 3600); // one simulated hour
    let budget = budget_secs();
    assert!(
        elapsed < budget,
        "1000-host in-window hour took {elapsed:.2}s at {} engine threads, budget {budget}s \
         (override with BAAT_FLEET_BUDGET_SECS)",
        engine_threads()
    );
}

/// The sharding payoff gate: the 1000-host in-window hour must run at
/// least [`min_speedup`](BAAT_FLEET_MIN_SPEEDUP) times faster with 8
/// engine threads than with 1. Skipped (vacuously passing) on hosts
/// with fewer than 8 CPUs, where the target is unreachable by
/// construction.
#[test]
#[ignore = "release-mode fleet gate: run with --ignored"]
fn fleet_1k_day_speeds_up_at_least_4x_at_8_threads() {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cpus < 8 {
        eprintln!("fleet speedup gate skipped: only {cpus} CPUs available, need 8");
        return;
    }
    let min_speedup: f64 = std::env::var("BAAT_FLEET_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4.0);
    let config = |threads| with_engine_threads(fleet_config(1000, Weather::Cloudy, 7), threads);
    // Untimed warm pass so page-cache/allocator state is comparable.
    let _ = timed_window_secs(config(8), 600);
    let sequential = timed_window_secs(config(1), 3600);
    let sharded = timed_window_secs(config(8), 3600);
    let speedup = sequential / sharded.max(1e-9);
    assert!(
        speedup >= min_speedup,
        "1000-host in-window hour: {sequential:.2}s at 1 thread vs {sharded:.2}s at 8 \
         ({speedup:.2}x, need {min_speedup}x; override with BAAT_FLEET_MIN_SPEEDUP)"
    );
}

/// The 10 000-host smoke: a quarter simulated hour in-window must fit a
/// (generous, overridable) wall-clock budget at the matrix's engine
/// thread count. Catches super-linear blowups in placement, telemetry or
/// the shard merge at an order of magnitude beyond the 1k gate.
#[test]
#[ignore = "release-mode fleet gate: run with --ignored"]
fn fleet_10k_quarter_hour_fits_wall_clock_budget() {
    let budget: f64 = std::env::var("BAAT_FLEET_10K_BUDGET_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120.0);
    let config = with_engine_threads(fleet_config(10_000, Weather::Cloudy, 7), engine_threads());
    let elapsed = timed_window_secs(config, 900);
    assert!(
        elapsed < budget,
        "10000-host in-window quarter hour took {elapsed:.2}s at {} engine threads, \
         budget {budget}s (override with BAAT_FLEET_10K_BUDGET_SECS)",
        engine_threads()
    );
}

/// The CI fleet gate, part 2: the seeded 1000-host day is byte-identical
/// across `BAAT_RUNNER_THREADS` 1 vs 8 — thread scheduling must be
/// unobservable at fleet scale exactly as it is on the 6-node
/// prototype.
#[test]
#[ignore = "release-mode fleet gate: run with --ignored"]
fn fleet_1k_day_is_thread_invariant() {
    let scenarios = || {
        vec![
            Scenario::new(Scheme::Baat, fleet_config(1000, Weather::Cloudy, 7)),
            Scenario::new(Scheme::EBuff, fleet_config(1000, Weather::Cloudy, 7)),
        ]
    };
    let sequential = run_scenarios_with_threads(scenarios(), 1);
    let parallel = run_scenarios_with_threads(scenarios(), 8);
    assert_eq!(
        sequential, parallel,
        "1000-host fleet reports diverged between 1 and 8 worker threads"
    );
}
