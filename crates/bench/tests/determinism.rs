//! The determinism contract of the parallel scenario runner.
//!
//! The whole reproduction hangs on seeded runs being exactly replayable:
//! figures are compared against the paper by value, and CI asserts on
//! them. These tests pin the three load-bearing properties:
//!
//! 1. the same seed produces **bit-identical** reports across repeated
//!    runs in one process;
//! 2. thread count is unobservable — 1 worker and N workers produce
//!    identical report vectors for the same scenario list;
//! 3. distinct seeds actually change the stochastic inputs (no silent
//!    seed plumbing bug making every run identical).

use baat_battery::Chemistry;
use baat_bench::runner::{
    chemistry_day_config, day_config, faulted_day_config, fleet_config, plan_config,
    run_scenarios_forked_with_threads, run_scenarios_observed_with_threads,
    run_scenarios_with_threads, scenario_seed, Scenario, OLD_BATTERY_DAMAGE,
};
use baat_core::Scheme;
use baat_sim::{FaultMix, SimReport};
use baat_solar::Weather;

/// A small but representative sweep: multiple schemes, weathers, day
/// counts, a pre-aged cell, and a fault-injected cell (the degradation
/// path must replay exactly like the clean path).
fn sweep(seed: u64) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for (i, weather) in [Weather::Sunny, Weather::Cloudy, Weather::Rainy]
        .into_iter()
        .enumerate()
    {
        for scheme in [Scheme::EBuff, Scheme::Baat] {
            scenarios.push(Scenario::new(
                scheme,
                day_config(weather, scenario_seed(seed, i)),
            ));
        }
    }
    scenarios.push(
        Scenario::new(
            Scheme::Baat,
            plan_config(vec![Weather::Cloudy, Weather::Rainy], seed),
        )
        .pre_aged(OLD_BATTERY_DAMAGE),
    );
    scenarios.push(Scenario::new(
        Scheme::Baat,
        faulted_day_config(Weather::Cloudy, seed, &FaultMix::light()),
    ));
    // A fleet-scale cell: scaled node count, PV and workload must replay
    // exactly like the 6-node prototype cells.
    scenarios.push(Scenario::new(
        Scheme::Baat,
        fleet_config(16, Weather::Cloudy, scenario_seed(seed, 9)),
    ));
    // A li-ion cell: the alternative chemistry must uphold the same
    // replay contract (thread-invariance, forking, seed sensitivity) as
    // the lead-acid model.
    scenarios.push(Scenario::new(
        Scheme::Baat,
        chemistry_day_config(Chemistry::LiIon, Weather::Cloudy, scenario_seed(seed, 12)),
    ));
    scenarios
}

#[test]
fn same_seed_is_bit_identical_across_runs() {
    let first = run_scenarios_with_threads(sweep(2015), 4);
    let second = run_scenarios_with_threads(sweep(2015), 4);
    // SimReport derives PartialEq over every field, so == is a full
    // bit-for-bit comparison of the recorded traces.
    assert_eq!(first, second);
}

#[test]
fn thread_count_is_unobservable() {
    let sequential = run_scenarios_with_threads(sweep(7), 1);
    for threads in [2, 4, 8] {
        let parallel = run_scenarios_with_threads(sweep(7), threads);
        assert_eq!(
            sequential, parallel,
            "reports diverged between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn observation_is_invisible_to_reports() {
    // Running with metrics + stage profiling enabled must produce the
    // exact same reports as running with observation off, on 1 worker
    // and on N: the obs layer reads simulation state but never feeds
    // anything (not even timing) back into it.
    let plain = run_scenarios_with_threads(sweep(2015), 1);
    for threads in [1, 4] {
        let observed = run_scenarios_observed_with_threads(sweep(2015), threads);
        let reports: Vec<SimReport> = observed.iter().map(|r| r.report.clone()).collect();
        assert_eq!(
            plain, reports,
            "observed run diverged from plain run on {threads} worker threads"
        );
        // And the registries actually recorded something — the equality
        // above must not hold because observation silently no-opped.
        for run in &observed {
            assert!(
                !run.obs.snapshot().is_empty(),
                "enabled obs recorded no metrics"
            );
            assert!(
                !run.obs.stage_stats().is_empty(),
                "enabled obs recorded no stage timings"
            );
        }
    }
}

#[test]
fn snapshot_forking_is_unobservable() {
    // The forked sweep shares one warm policy-free prefix per scenario
    // group and forks each variant off it. Forking must be invisible:
    // forked reports equal from-scratch reports bit-for-bit, on 1 worker
    // and on N, across the clean / pre-aged / fault-injected mix.
    let from_scratch = run_scenarios_with_threads(sweep(2015), 1);
    for threads in [1, 2, 4, 8] {
        let forked = run_scenarios_forked_with_threads(sweep(2015), threads);
        assert_eq!(
            from_scratch, forked,
            "forked sweep diverged from from-scratch on {threads} worker threads"
        );
    }
}

#[test]
fn distinct_seeds_produce_distinct_traces() {
    let a = run_scenarios_with_threads(sweep(1), 2);
    let b = run_scenarios_with_threads(sweep(2), 2);
    let differing = a.iter().zip(&b).filter(|(x, y)| x != y).count();
    assert!(
        differing > 0,
        "changing the base seed changed nothing — seed plumbing is broken"
    );
}

#[test]
fn reports_preserve_scenario_order() {
    let reports: Vec<SimReport> = run_scenarios_with_threads(sweep(11), 4);
    let schemes: Vec<&str> = reports.iter().map(|r| r.policy).collect();
    assert_eq!(
        schemes,
        ["e-Buff", "BAAT", "e-Buff", "BAAT", "e-Buff", "BAAT", "BAAT", "BAAT", "BAAT", "BAAT"]
    );
}
