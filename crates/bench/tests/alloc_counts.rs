//! Allocation-count pin for disabled observability (satellite of the
//! tracing/health PR): `cargo test -p baat-bench --features count-allocs
//! --test alloc_counts`.
//!
//! Two invariants, measured with a counting global allocator:
//!
//! 1. disabled obs handles — metrics, tracer, health monitor, flight
//!    recorder — perform **zero** heap allocations per operation;
//! 2. a full faulted day simulated with `Obs::disabled()` stays within
//!    the committed per-step allocation budget, i.e. the trace/health
//!    wiring added to the engine attributes no allocations to the
//!    disabled path.
#![cfg(feature = "count-allocs")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use baat_core::Scheme;
use baat_obs::{FlightRecorder, HealthConfig, HealthMonitor, NodeHealthSample, Obs, SpanId};
use baat_sim::{FaultMix, FaultPlan, SimConfig, Simulation};
use baat_solar::Weather;
use baat_units::SimDuration;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: every method delegates to `System` with unchanged arguments;
// the counter update has no safety impact.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: Counting = Counting;

fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    let after = ALLOCS.load(Ordering::Relaxed);
    (after - before, out)
}

/// Allocations per step the committed baseline budgets for the engine's
/// own step loop (events, queues, amortized growth) — see the `allocs`
/// record in `BENCH_10.json`. Disabled observability must not add to it.
const STEP_ALLOC_BUDGET: f64 = 10.0;

fn faulted_day_config() -> SimConfig {
    faulted_day_config_threads(1)
}

fn faulted_day_config_threads(threads: usize) -> SimConfig {
    let mut cfg = SimConfig::builder();
    cfg.weather_plan(vec![Weather::Cloudy])
        .dt(SimDuration::from_secs(30))
        .sample_every(40)
        .threads(threads)
        .seed(1);
    let probe = cfg.build().expect("valid");
    cfg.faults(FaultPlan::generate(
        1,
        probe.days(),
        probe.nodes,
        probe.nodes,
        &FaultMix::light(),
    ));
    cfg.build().expect("valid")
}

/// Tests run single-threaded in this file (one test fn) so the global
/// counter observes only our own work.
#[test]
fn disabled_observability_allocates_nothing() {
    // --- invariant 1: disabled handles are allocation-free per op. ---
    let obs = Obs::disabled();
    let counter = obs.counter("alloc.test.counter");
    let gauge = obs.gauge("alloc.test.gauge");
    let histogram = obs.histogram("alloc.test.histogram");
    let tracer = obs.tracer();
    let mut health = HealthMonitor::new(HealthConfig::default(), &obs);
    let mut flight = FlightRecorder::new(64, obs.is_enabled());

    let (n, _) = allocs_during(|| {
        for i in 0..1000u64 {
            counter.inc();
            counter.add(i);
            gauge.set(i as f64);
            histogram.observe(i);
            let span = tracer.start("alloc.test", SpanId::NONE, i);
            tracer.attr_u64(span, "i", i);
            tracer.attr_f64(span, "f", 0.5);
            tracer.attr_str(span, "s", "x");
            tracer.attr_bool(span, "b", true);
            tracer.end(span, i + 1);
            health.push_sample(NodeHealthSample {
                node: 0,
                soc: 0.8,
                soc_floor: 0.4,
                damage: 0.001,
                degraded: false,
                charger_mode_switches: i,
                online: true,
            });
            health.evaluate(i * 60);
            flight.dump("degraded_mode", i * 60);
        }
    });
    assert_eq!(n, 0, "disabled obs handles allocated {n} times");
    assert!(health.events().is_empty());
    assert!(flight.dumps().is_empty());

    // --- invariant 2: a disabled-obs faulted day stays in budget. ---
    let config = faulted_day_config();
    let mut sim = Simulation::with_obs(config, Obs::disabled()).expect("valid");
    let mut policy = Scheme::Baat.build();
    let steps = sim.total_steps();
    let (n, result) = allocs_during(|| sim.run_steps(&mut policy, steps));
    result.expect("runs");
    let per_step = n as f64 / steps as f64;
    assert!(
        per_step < STEP_ALLOC_BUDGET,
        "faulted day with disabled obs allocated {per_step:.3}/step \
         (budget {STEP_ALLOC_BUDGET})"
    );

    // --- invariant 3: the sharded engine with disabled obs stays in
    // its own budget. The extra headroom over `STEP_ALLOC_BUDGET` is
    // the pool's inherent per-batch dispatch cost (the result-slot
    // vector and per-shard output vectors), measured at ~11/step before
    // the exec metering existed. The metering itself must add nothing:
    // worker meters are sized at pool construction, per-shard timing
    // vectors live in the reusable step scratch, and the off path is
    // one relaxed load per batch — any metering allocation would blow
    // the tight margin. The counting allocator is global, so
    // worker-thread allocations are counted too.
    const SHARDED_STEP_ALLOC_BUDGET: f64 = 14.0;
    let config = faulted_day_config_threads(4);
    let mut sim = Simulation::with_obs(config, Obs::disabled()).expect("valid");
    let mut policy = Scheme::Baat.build();
    let steps = sim.total_steps();
    let (n, result) = allocs_during(|| sim.run_steps(&mut policy, steps));
    result.expect("runs");
    let per_step = n as f64 / steps as f64;
    assert!(
        per_step < SHARDED_STEP_ALLOC_BUDGET,
        "sharded faulted day with disabled obs allocated {per_step:.3}/step \
         (budget {SHARDED_STEP_ALLOC_BUDGET})"
    );
}
