//! Micro-benchmarks of the substrate hot paths: how fast the simulator
//! itself runs (battery step, engine day, metric computation).

use baat_battery::{Battery, BatteryOp, BatterySpec};
use baat_core::Scheme;
use baat_metrics::{AgingMetrics, BatteryRatings};
use baat_sim::{run_simulation, SimConfig};
use baat_solar::Weather;
use baat_units::{AmpHours, Celsius, SimDuration, SimInstant, Watts};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_battery_step(c: &mut Criterion) {
    c.bench_function("battery_step_discharge", |b| {
        let mut battery = Battery::new(BatterySpec::prototype());
        let dt = SimDuration::from_secs(30);
        let mut now = SimInstant::START;
        b.iter(|| {
            let r = battery.step(
                BatteryOp::Discharge(Watts::new(80.0)),
                Celsius::new(25.0),
                now,
                dt,
            );
            now += dt;
            if battery.soc().value() < 0.2 {
                battery.set_soc(baat_units::Soc::FULL);
            }
            black_box(r)
        })
    });
}

fn bench_metrics(c: &mut Criterion) {
    c.bench_function("aging_metrics_from_accumulator", |b| {
        let mut battery = Battery::new(BatterySpec::prototype());
        let dt = SimDuration::from_secs(30);
        let mut now = SimInstant::START;
        for _ in 0..1000 {
            battery.step(
                BatteryOp::Discharge(Watts::new(80.0)),
                Celsius::new(25.0),
                now,
                dt,
            );
            now += dt;
        }
        let ratings = BatteryRatings {
            capacity: AmpHours::new(35.0),
            lifetime_throughput: AmpHours::new(17_500.0),
        };
        b.iter(|| {
            black_box(AgingMetrics::from_accumulator(
                battery.telemetry().lifetime(),
                &ratings,
            ))
        })
    });
}

fn bench_simulated_day(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_day");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(8));
    for scheme in [Scheme::EBuff, Scheme::Baat] {
        g.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::builder();
                cfg.weather_plan(vec![Weather::Cloudy])
                    .dt(SimDuration::from_secs(30))
                    .sample_every(40)
                    .seed(1);
                let report =
                    run_simulation(cfg.build().expect("valid"), &mut scheme.build())
                        .expect("runs");
                black_box(report.total_work)
            })
        });
    }
    g.finish();
}

criterion_group!(substrates, bench_battery_step, bench_metrics, bench_simulated_day);
criterion_main!(substrates);
