//! Micro-benchmarks of the substrate hot paths: how fast the simulator
//! itself runs (battery step, engine day, metric computation).
//!
//! Runs on the in-tree [`baat_testkit::bench`] harness; pass `--quick`
//! (or `BAAT_BENCH_QUICK=1`) for a smoke run.

use baat_battery::{Battery, BatteryOp, BatterySpec};
use baat_core::Scheme;
use baat_metrics::{AgingMetrics, BatteryRatings};
use baat_obs::Obs;
use baat_sim::{run_simulation, run_simulation_observed, SimConfig};
use baat_solar::Weather;
use baat_testkit::bench::Harness;
use baat_units::{AmpHours, Celsius, SimDuration, SimInstant, Watts};
use std::hint::black_box;

fn bench_battery_step(h: &mut Harness) {
    let mut battery = Battery::new(BatterySpec::prototype());
    let dt = SimDuration::from_secs(30);
    let mut now = SimInstant::START;
    h.bench("battery_step_discharge", || {
        let r = battery.step(
            BatteryOp::Discharge(Watts::new(80.0)),
            Celsius::new(25.0),
            now,
            dt,
        );
        now += dt;
        if battery.soc().value() < 0.2 {
            battery.set_soc(baat_units::Soc::FULL);
        }
        black_box(r)
    });
}

fn bench_metrics(h: &mut Harness) {
    let mut battery = Battery::new(BatterySpec::prototype());
    let dt = SimDuration::from_secs(30);
    let mut now = SimInstant::START;
    for _ in 0..1000 {
        battery.step(
            BatteryOp::Discharge(Watts::new(80.0)),
            Celsius::new(25.0),
            now,
            dt,
        );
        now += dt;
    }
    let ratings = BatteryRatings {
        capacity: AmpHours::new(35.0),
        lifetime_throughput: AmpHours::new(17_500.0),
    };
    h.bench("aging_metrics_from_accumulator", || {
        black_box(AgingMetrics::from_accumulator(
            battery.telemetry().lifetime(),
            &ratings,
        ))
    });
}

fn day_config() -> SimConfig {
    let mut cfg = SimConfig::builder();
    cfg.weather_plan(vec![Weather::Cloudy])
        .dt(SimDuration::from_secs(30))
        .sample_every(40)
        .seed(1);
    cfg.build().expect("valid")
}

fn bench_simulated_day(h: &mut Harness) {
    let mut g = h.group("simulated_day");
    for scheme in [Scheme::EBuff, Scheme::Baat] {
        g.bench(scheme.name(), || {
            let report = run_simulation(day_config(), &mut scheme.build()).expect("runs");
            black_box(report.total_work)
        });
    }
}

/// The same simulated day with the full observability stack live:
/// per-stage profiler, engine/policy counters, aging gauges. Comparing
/// `simulated_day_observed/BAAT` against `simulated_day/BAAT` measures
/// the profiler + metrics overhead, which must stay under 1 µs/step.
fn bench_simulated_day_observed(h: &mut Harness) {
    let mut g = h.group("simulated_day_observed");
    for scheme in [Scheme::EBuff, Scheme::Baat] {
        g.bench(scheme.name(), || {
            let obs = Obs::enabled();
            let mut policy = scheme.build_observed(&obs);
            let report = run_simulation_observed(day_config(), &mut policy, obs).expect("runs");
            black_box(report.total_work)
        });
    }
}

/// Prints the observed-vs-plain overhead per scheme from the measured
/// samples (best-effort: only when both variants ran under this filter).
fn report_obs_overhead(h: &Harness) {
    let mean_of = |id: &str| {
        h.results()
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.mean.as_secs_f64())
    };
    for scheme in [Scheme::EBuff, Scheme::Baat] {
        let plain = mean_of(&format!("simulated_day/{}", scheme.name()));
        let observed = mean_of(&format!("simulated_day_observed/{}", scheme.name()));
        if let (Some(plain), Some(observed)) = (plain, observed) {
            if plain > 0.0 {
                println!(
                    "obs overhead {}: {:+.2}%",
                    scheme.name(),
                    (observed / plain - 1.0) * 100.0
                );
            }
        }
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_battery_step(&mut h);
    bench_metrics(&mut h);
    bench_simulated_day(&mut h);
    bench_simulated_day_observed(&mut h);
    report_obs_overhead(&h);
    h.finish();
}
