//! Micro-benchmarks of the substrate hot paths: how fast the simulator
//! itself runs (battery step, engine day, metric computation).
//!
//! Runs on the in-tree [`baat_testkit::bench`] harness; pass `--quick`
//! (or `BAAT_BENCH_QUICK=1`) for a smoke run.

use baat_battery::{Battery, BatteryOp, BatterySpec};
use baat_core::Scheme;
use baat_metrics::{AgingMetrics, BatteryRatings};
use baat_sim::{run_simulation, SimConfig};
use baat_solar::Weather;
use baat_testkit::bench::Harness;
use baat_units::{AmpHours, Celsius, SimDuration, SimInstant, Watts};
use std::hint::black_box;

fn bench_battery_step(h: &mut Harness) {
    let mut battery = Battery::new(BatterySpec::prototype());
    let dt = SimDuration::from_secs(30);
    let mut now = SimInstant::START;
    h.bench("battery_step_discharge", || {
        let r = battery.step(
            BatteryOp::Discharge(Watts::new(80.0)),
            Celsius::new(25.0),
            now,
            dt,
        );
        now += dt;
        if battery.soc().value() < 0.2 {
            battery.set_soc(baat_units::Soc::FULL);
        }
        black_box(r)
    });
}

fn bench_metrics(h: &mut Harness) {
    let mut battery = Battery::new(BatterySpec::prototype());
    let dt = SimDuration::from_secs(30);
    let mut now = SimInstant::START;
    for _ in 0..1000 {
        battery.step(
            BatteryOp::Discharge(Watts::new(80.0)),
            Celsius::new(25.0),
            now,
            dt,
        );
        now += dt;
    }
    let ratings = BatteryRatings {
        capacity: AmpHours::new(35.0),
        lifetime_throughput: AmpHours::new(17_500.0),
    };
    h.bench("aging_metrics_from_accumulator", || {
        black_box(AgingMetrics::from_accumulator(
            battery.telemetry().lifetime(),
            &ratings,
        ))
    });
}

fn bench_simulated_day(h: &mut Harness) {
    let mut g = h.group("simulated_day");
    for scheme in [Scheme::EBuff, Scheme::Baat] {
        g.bench(scheme.name(), || {
            let mut cfg = SimConfig::builder();
            cfg.weather_plan(vec![Weather::Cloudy])
                .dt(SimDuration::from_secs(30))
                .sample_every(40)
                .seed(1);
            let report =
                run_simulation(cfg.build().expect("valid"), &mut scheme.build()).expect("runs");
            black_box(report.total_work)
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_battery_step(&mut h);
    bench_metrics(&mut h);
    bench_simulated_day(&mut h);
    h.finish();
}
