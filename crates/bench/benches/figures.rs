//! Criterion benchmarks: one per paper table/figure.
//!
//! Each benchmark regenerates a scaled-down instance of the corresponding
//! experiment (the full-parameter runs live in the `figures` binary), so
//! `cargo bench` both times the harness and re-exercises every
//! reproduction path.

use baat_bench::experiments::{
    fig03_05, fig10, fig12, fig13, fig14, fig15, fig16, fig17, fig18_19, fig20, fig21, fig22,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

const SEED: u64 = 2015;

/// Shared tuning: a handful of samples over a bounded window — these are
/// throughput smoke-benches of the harness, not statistics papers.
fn tune(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(8));
}

fn bench_measurement_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("measurement");
    tune(&mut g);
    g.bench_function("fig03_05_battery_degradation", |b| {
        b.iter(|| black_box(fig03_05::run(1, 5)))
    });
    g.bench_function("fig10_cycle_life", |b| {
        b.iter(|| black_box(fig10::run_paper()))
    });
    g.finish();
}

fn bench_profiling_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("profiling");
    tune(&mut g);
    g.bench_function("fig12_runtime_profile", |b| {
        b.iter(|| black_box(fig12::run(SEED)))
    });
    g.bench_function("fig13_aging_comparison", |b| {
        b.iter(|| black_box(fig13::run(SEED)))
    });
    g.finish();
}

fn bench_lifetime_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("lifetime");
    tune(&mut g);
    g.bench_function("fig14_lifetime_vs_sunshine", |b| {
        b.iter(|| black_box(fig14::run(&[0.6], 1, SEED)))
    });
    g.bench_function("fig15_lifetime_vs_ratio", |b| {
        b.iter(|| black_box(fig15::run(&[4.0], 1, SEED)))
    });
    g.finish();
}

fn bench_cost_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("cost");
    tune(&mut g);
    g.bench_function("fig16_depreciation_cost", |b| {
        b.iter(|| black_box(fig16::run(&[0.4], 1, SEED)))
    });
    g.bench_function("fig17_tco_expansion", |b| {
        b.iter(|| black_box(fig17::run(&[0.6], 1, SEED)))
    });
    g.finish();
}

fn bench_availability_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("availability");
    tune(&mut g);
    g.bench_function("fig18_19_low_soc_distribution", |b| {
        b.iter(|| black_box(fig18_19::run(2, SEED)))
    });
    g.bench_function("fig20_throughput", |b| {
        b.iter(|| {
            black_box(fig20::run(
                &[(baat_solar::Weather::Cloudy, true)],
                SEED,
            ))
        })
    });
    g.finish();
}

fn bench_planned_aging_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("planned_aging");
    tune(&mut g);
    g.bench_function("fig21_planned_dod", |b| {
        b.iter(|| black_box(fig21::run(&[0.6], 1, SEED)))
    });
    g.bench_function("fig22_service_horizon", |b| {
        b.iter(|| black_box(fig22::run(&[800.0], 1, SEED)))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_measurement_figures,
    bench_profiling_figures,
    bench_lifetime_figures,
    bench_cost_figures,
    bench_availability_figures,
    bench_planned_aging_figures,
);
criterion_main!(figures);
