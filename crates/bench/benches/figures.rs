//! Wall-clock benchmarks: one per paper table/figure.
//!
//! Each benchmark regenerates a scaled-down instance of the corresponding
//! experiment (the full-parameter runs live in the `figures` binary), so
//! `cargo bench` both times the harness and re-exercises every
//! reproduction path. Runs on the in-tree [`baat_testkit::bench`]
//! harness; pass `--quick` (or `BAAT_BENCH_QUICK=1`) for a smoke run.

use baat_bench::experiments::{
    fig03_05, fig10, fig12, fig13, fig14, fig15, fig16, fig17, fig18_19, fig20, fig21, fig22,
};
use baat_testkit::bench::Harness;
use std::hint::black_box;

const SEED: u64 = 2015;

fn main() {
    let mut h = Harness::from_args();

    let mut g = h.group("measurement");
    g.bench("fig03_05_battery_degradation", || {
        black_box(fig03_05::run(1, 5))
    });
    g.bench("fig10_cycle_life", || black_box(fig10::run_paper()));

    let mut g = h.group("profiling");
    g.bench("fig12_runtime_profile", || black_box(fig12::run(SEED)));
    g.bench("fig13_aging_comparison", || black_box(fig13::run(SEED)));

    let mut g = h.group("lifetime");
    g.bench("fig14_lifetime_vs_sunshine", || {
        black_box(fig14::run(&[0.6], 1, SEED))
    });
    g.bench("fig15_lifetime_vs_ratio", || {
        black_box(fig15::run(&[4.0], 1, SEED))
    });

    let mut g = h.group("cost");
    g.bench("fig16_depreciation_cost", || {
        black_box(fig16::run(&[0.4], 1, SEED))
    });
    g.bench("fig17_tco_expansion", || {
        black_box(fig17::run(&[0.6], 1, SEED))
    });

    let mut g = h.group("availability");
    g.bench("fig18_19_low_soc_distribution", || {
        black_box(fig18_19::run(2, SEED))
    });
    g.bench("fig20_throughput", || {
        black_box(fig20::run(&[(baat_solar::Weather::Cloudy, true)], SEED))
    });

    let mut g = h.group("planned_aging");
    g.bench("fig21_planned_dod", || {
        black_box(fig21::run(&[0.6], 1, SEED))
    });
    g.bench("fig22_service_horizon", || {
        black_box(fig22::run(&[800.0], 1, SEED))
    });

    h.finish();
}
