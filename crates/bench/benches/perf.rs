//! The perf regression harness behind `BENCH_10.json`.
//!
//! Measures the simulated-day hot path (both schemes), the fig03_05
//! battery-kernel sweep, the per-stage ns/step profile (sequential and
//! sharded), the observability overhead of a fully traced faulted day,
//! and — with `--features count-allocs` — heap allocations per engine
//! step.
//!
//! ```text
//! cargo bench -p baat-bench --bench perf              # measure + print report
//! cargo bench -p baat-bench --bench perf -- --update  # rewrite BENCH_10.json + PERF_HISTORY.jsonl
//! cargo bench -p baat-bench --bench perf -- --check   # gate: fail on >20% regression
//! ```
//!
//! `--check` is what `ci/check.sh` runs (skippable via `BAAT_SKIP_PERF=1`):
//! it compares freshly measured best-case throughput against the
//! committed mean throughput with the tolerance from
//! [`baat_bench::perf::TOLERANCE_PCT`], and bounds the traced-vs-disabled
//! overhead with [`baat_bench::perf::OBS_OVERHEAD_LIMIT_NS_PER_STEP`].
//!
//! Every run can also register itself in the perf run registry
//! (`baat_bench::registry`): `--update` appends to the committed
//! `PERF_HISTORY.jsonl`, and setting `BAAT_PERF_HISTORY=PATH` appends
//! to (creating) that file in any mode — CI's perf job uses it to grow
//! a history artifact that `console perf-trend` reports over.
//! `BAAT_PERF_RUN_LABEL` labels the registered run (default `local`).

use baat_bench::experiments::fig03_05;
use baat_bench::perf::{PerfBench, PerfReport, StageProfile, BASELINE_FILE};
use baat_bench::registry;
use baat_core::Scheme;
use baat_obs::Obs;
use baat_sim::{
    run_simulation, run_simulation_observed, FaultMix, FaultPlan, SimConfig, Simulation,
};
use baat_solar::Weather;
use baat_testkit::bench::Harness;
use baat_units::SimDuration;
use std::hint::black_box;
use std::path::PathBuf;

/// Mean wall-clocks measured at the seed revision (before the perf
/// pass), embedded so `BENCH_10.json` always carries the before/after
/// pair. Nanoseconds.
const SEED_SIMULATED_DAY_EBUFF_NS: u64 = 40_620_000;
const SEED_SIMULATED_DAY_BAAT_NS: u64 = 176_660_000;
const SEED_FIG03_05_NS: u64 = 279_820;

#[cfg(feature = "count-allocs")]
mod alloc_count {
    //! Counting global allocator: every `alloc`/`realloc` bumps one
    //! relaxed atomic, everything else delegates to [`System`].

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    // SAFETY: every method delegates to `System` with unchanged
    // arguments; the counter update has no safety impact.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: Counting = Counting;

    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Worker threads for the sharded `simulated_day` cell and the parallel
/// stage profile. Fixed (rather than `available_parallelism`) so the
/// committed baseline is comparable across machines.
const PARALLEL_THREADS: usize = 4;

fn day_config() -> SimConfig {
    day_config_threads(1)
}

fn day_config_threads(threads: usize) -> SimConfig {
    let mut cfg = SimConfig::builder();
    cfg.weather_plan(vec![Weather::Cloudy])
        .dt(SimDuration::from_secs(30))
        .sample_every(40)
        .seed(1)
        .threads(threads);
    cfg.build().expect("valid")
}

/// Steps in one simulated day at the standard 30 s timestep.
fn day_steps() -> u64 {
    Simulation::new(day_config()).expect("valid").total_steps()
}

/// The standard day with a seeded light fault plan layered on — the
/// scenario the observability-overhead gate measures, chosen because it
/// exercises every obs surface at once (metrics, spans, health checks,
/// flight recorder).
fn faulted_day_config() -> SimConfig {
    let mut cfg = SimConfig::builder();
    cfg.weather_plan(vec![Weather::Cloudy])
        .dt(SimDuration::from_secs(30))
        .sample_every(40)
        .seed(1);
    let probe = cfg.build().expect("valid");
    cfg.faults(FaultPlan::generate(
        1,
        probe.days(),
        probe.nodes,
        probe.nodes,
        &FaultMix::light(),
    ));
    cfg.build().expect("valid")
}

/// Allocations per engine step across one simulated day, step loop only
/// (construction and report generation excluded).
#[cfg(feature = "count-allocs")]
fn allocs_per_step() -> Option<f64> {
    let mut sim = Simulation::new(day_config()).expect("valid");
    let mut policy = Scheme::Baat.build();
    let steps = sim.total_steps();
    let before = alloc_count::allocations();
    sim.run_steps(&mut policy, steps).expect("runs");
    let after = alloc_count::allocations();
    Some((after - before) as f64 / steps as f64)
}

#[cfg(not(feature = "count-allocs"))]
fn allocs_per_step() -> Option<f64> {
    None
}

/// Per-stage ns/step profile of one observed BAAT day at the given
/// engine thread count. Sharded stage rows sum per-shard CPU time.
fn stage_profile(threads: usize) -> Vec<baat_obs::StageStats> {
    let obs = Obs::enabled();
    let mut policy = Scheme::Baat.build_observed(&obs);
    run_simulation_observed(day_config_threads(threads), &mut policy, obs.clone()).expect("runs");
    obs.stage_stats()
}

fn bench_entry(
    h: &Harness,
    id: &str,
    engine_threads: usize,
    steps_per_iter: u64,
    seed_mean_ns: u64,
) -> PerfBench {
    let sample = h
        .results()
        .iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("benchmark {id} did not run — check the filter"));
    PerfBench {
        name: id.to_owned(),
        engine_threads,
        steps_per_iter,
        seed_mean_ns,
        mean_ns: sample.mean.as_nanos() as u64,
        min_ns: sample.min.as_nanos() as u64,
        parallel_efficiency: None,
    }
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    let check = args.iter().any(|a| a == "--check");

    let mut h = Harness::from_args();

    let mut g = h.group("simulated_day");
    for scheme in [Scheme::EBuff, Scheme::Baat] {
        g.bench(scheme.name(), || {
            let report = run_simulation(day_config(), &mut scheme.build()).expect("runs");
            black_box(report.total_work)
        });
    }
    // The same BAAT day with the engine sharded: the wall-clock side of
    // the `stages_parallel` profile. Seed reference is the sequential
    // seed-revision figure, so `speedup_vs_seed` reads as the combined
    // perf-pass + sharding win.
    g.bench("BAAT-sharded", || {
        let report = run_simulation(
            day_config_threads(PARALLEL_THREADS),
            &mut Scheme::Baat.build(),
        )
        .expect("runs");
        black_box(report.total_work)
    });
    let mut g = h.group("sweep");
    g.bench("fig03_05", || black_box(fig03_05::run(1, 5)));

    // The obs-overhead pair: the same faulted day with observation
    // disabled and fully enabled (metrics + tracing + health + flight).
    let mut g = h.group("obs_overhead");
    g.bench("disabled", || {
        let report = run_simulation(faulted_day_config(), &mut Scheme::Baat.build()).expect("runs");
        black_box(report.total_work)
    });
    g.bench("traced", || {
        let obs = Obs::enabled();
        let mut policy = Scheme::Baat.build_observed(&obs);
        let report = run_simulation_observed(faulted_day_config(), &mut policy, obs).expect("runs");
        black_box(report.total_work)
    });

    let steps = day_steps();
    let disabled = bench_entry(&h, "obs_overhead/disabled", 1, steps, 0);
    let traced = bench_entry(&h, "obs_overhead/traced", 1, steps, 0);
    // Best-of-batches comparison, like the regression gate: robust to
    // scheduler noise, and clamped at zero because "obs was faster" is
    // just noise, not negative overhead. The gate bounds the absolute
    // ns/step cost — reported only as ns/step; a percentage would
    // silently tighten every time the base engine gets faster.
    let obs_overhead_ns = (traced.min_ns as f64 - disabled.min_ns as f64).max(0.0);
    let obs_overhead_ns_per_step = obs_overhead_ns / steps.max(1) as f64;
    let baat = bench_entry(
        &h,
        "simulated_day/BAAT",
        1,
        steps,
        SEED_SIMULATED_DAY_BAAT_NS,
    );
    let mut sharded = bench_entry(
        &h,
        "simulated_day/BAAT-sharded",
        PARALLEL_THREADS,
        steps,
        SEED_SIMULATED_DAY_BAAT_NS,
    );
    // Parallel efficiency against the *same-revision* sequential BAAT
    // mean: the figure that makes "sharding runs slower here" visible
    // (efficiency < 1/threads) instead of hiding in two wall-clocks.
    sharded.record_parallel_efficiency(baat.mean_ns);
    let report = PerfReport {
        benchmarks: vec![
            bench_entry(
                &h,
                "simulated_day/e-Buff",
                1,
                steps,
                SEED_SIMULATED_DAY_EBUFF_NS,
            ),
            baat,
            sharded,
            bench_entry(&h, "sweep/fig03_05", 1, 1, SEED_FIG03_05_NS),
        ],
        stage_profiles: vec![
            StageProfile {
                engine_threads: 1,
                stages: stage_profile(1),
            },
            StageProfile {
                engine_threads: PARALLEL_THREADS,
                stages: stage_profile(PARALLEL_THREADS),
            },
        ],
        allocs_per_step: allocs_per_step(),
        obs_overhead_ns_per_step: Some(obs_overhead_ns_per_step),
    };

    // CI's perf job uploads the freshly measured report as an artifact:
    // `BAAT_PERF_OUT=PATH` writes it there in every mode, alongside the
    // gate/update behavior below.
    if let Some(out) = std::env::var_os("BAAT_PERF_OUT") {
        std::fs::write(&out, report.to_json()).expect("write BAAT_PERF_OUT report");
        eprintln!("perf report written to {}", PathBuf::from(out).display());
    }

    let baseline_path = workspace_root().join(BASELINE_FILE);
    if check {
        let committed = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("perf check: cannot read {}: {e}", baseline_path.display());
            std::process::exit(1);
        });
        let mut failures = report.regressions_against(&committed);
        failures.extend(report.obs_overhead_failure());
        if failures.is_empty() {
            eprintln!(
                "perf check: ok ({} benchmarks within tolerance)",
                report.benchmarks.len()
            );
        } else {
            for f in &failures {
                eprintln!("perf regression: {f}");
            }
            std::process::exit(1);
        }
    } else if update {
        std::fs::write(&baseline_path, report.to_json()).expect("write baseline");
        eprintln!("perf baseline written to {}", baseline_path.display());
    } else {
        println!("{}", report.to_json());
    }

    // Run registry: --update grows the committed history alongside the
    // baseline; BAAT_PERF_HISTORY=PATH grows an external history file
    // (CI's artifact) in any mode.
    let label = std::env::var("BAAT_PERF_RUN_LABEL").unwrap_or_else(|_| "local".to_owned());
    let mut history_paths = Vec::new();
    if update {
        history_paths.push(workspace_root().join(registry::HISTORY_FILE));
    }
    if let Some(path) = std::env::var_os("BAAT_PERF_HISTORY") {
        history_paths.push(PathBuf::from(path));
    }
    for path in history_paths {
        let history = std::fs::read_to_string(&path).unwrap_or_default();
        let (grown, id) = registry::append_run(&history, &report.to_json(), &label)
            .expect("a freshly measured report always registers");
        std::fs::write(&path, grown).expect("write perf history");
        eprintln!("perf run {id} ({label}) registered in {}", path.display());
    }

    h.finish();
}
