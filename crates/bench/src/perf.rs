//! The performance-regression baseline: measurement records, the
//! `BENCH_10.json` serialization (schema `baat-perf-v2`), and the
//! >20 % steps/sec gate.
//!
//! The perf harness (`benches/perf.rs`) measures the hot paths, embeds
//! the pre-optimization wall-clocks recorded at the seed revision, and
//! emits the whole report as `BENCH_10.json` at the repository root.
//! `ci/check.sh` re-measures in `--check` mode and fails when any
//! benchmark's best observed throughput falls more than
//! [`TOLERANCE_PCT`] below the committed figure — catching perf
//! regressions the way goldens catch behavioural ones. The same gate
//! bounds tracing+health observability overhead on a faulted day to
//! [`OBS_OVERHEAD_LIMIT_NS_PER_STEP`] of absolute per-step cost.
//!
//! Schema v2 records the engine thread count **per benchmark row** and
//! **per stage row** (v1 kept one global `engine_threads` and split the
//! stage profile into `stages`/`stages_parallel` twins, which duplicated
//! every stage name and hid which cell ran where). Parallel cells also
//! carry `parallel_efficiency` — speedup over the sequential twin
//! divided by the thread count — so a sharded cell running *slower*
//! than sequential reads as efficiency < 1/threads instead of hiding
//! inside a wall-clock number. [`normalized_lines`] reads both schema
//! versions into one canonical shape, so `console diff` and the run
//! registry keep working across the bump.
//!
//! The file format is the in-tree [`baat_obs::json`] line style: one JSON
//! object per benchmark inside a plain JSON document, parseable with the
//! minimal scanner in [`committed_steps_per_sec`] (no external JSON
//! dependency, mirroring the hermetic-workspace rule).

use baat_obs::json::JsonLine;
use baat_obs::StageStats;

use crate::jsonq::{extract_f64, extract_str, extract_u64};

/// Allowed steps/sec shortfall (percent) before `--check` fails.
pub const TOLERANCE_PCT: f64 = 20.0;

/// Allowed wall-clock overhead of a fully observed faulted day —
/// metrics, tracing and health active — over the disabled run, in
/// nanoseconds per simulation step.
///
/// The limit is absolute rather than relative: a percentage gate
/// tightens every time the base simulation gets faster, failing runs
/// whose instrumentation cost never changed. 1 µs/step matches the
/// seed-era budget (5 % of the ~14 µs/step seed-revision day).
pub const OBS_OVERHEAD_LIMIT_NS_PER_STEP: f64 = 1_000.0;

/// Where the committed baseline lives, relative to the workspace root.
pub const BASELINE_FILE: &str = "BENCH_10.json";

/// One measured hot-path benchmark, with the seed-revision wall-clock it
/// is compared against.
#[derive(Debug, Clone)]
pub struct PerfBench {
    /// Benchmark id (`group/name`).
    pub name: String,
    /// Engine worker threads the cell ran at (1 = sequential path).
    pub engine_threads: usize,
    /// Work units (simulation steps, or 1 for whole-sweep wall-clocks)
    /// performed per iteration.
    pub steps_per_iter: u64,
    /// Mean wall-clock per iteration at the seed revision, in
    /// nanoseconds (the "before" of the before/after record).
    pub seed_mean_ns: u64,
    /// Measured mean wall-clock per iteration, in nanoseconds.
    pub mean_ns: u64,
    /// Fastest observed batch per iteration, in nanoseconds — the
    /// noise-robust figure the regression gate compares.
    pub min_ns: u64,
    /// Speedup over the same-revision sequential twin divided by
    /// [`engine_threads`](Self::engine_threads): 1.0 is perfect
    /// scaling, below `1/threads` means sharding made the cell slower
    /// than running sequentially. Set via
    /// [`record_parallel_efficiency`](Self::record_parallel_efficiency)
    /// on parallel cells; `None` (and not emitted) on sequential ones.
    pub parallel_efficiency: Option<f64>,
}

impl PerfBench {
    /// Mean throughput in steps (work units) per second.
    pub fn steps_per_sec(&self) -> f64 {
        per_sec(self.steps_per_iter, self.mean_ns)
    }

    /// Best-case throughput in steps per second (from the fastest batch).
    pub fn best_steps_per_sec(&self) -> f64 {
        per_sec(self.steps_per_iter, self.min_ns)
    }

    /// Wall-clock speedup over the seed revision (mean vs mean).
    pub fn speedup(&self) -> f64 {
        if self.mean_ns == 0 {
            return 0.0;
        }
        self.seed_mean_ns as f64 / self.mean_ns as f64
    }

    /// Records this cell's parallel efficiency against its sequential
    /// twin's **same-revision** measured mean (not the seed figure):
    /// `(seq_mean / mean) / engine_threads`.
    pub fn record_parallel_efficiency(&mut self, seq_mean_ns: u64) {
        if self.mean_ns == 0 || self.engine_threads == 0 {
            return;
        }
        self.parallel_efficiency =
            Some(seq_mean_ns as f64 / self.mean_ns as f64 / self.engine_threads as f64);
    }

    fn to_json(&self) -> String {
        let mut line = JsonLine::new();
        line.str_field("name", &self.name)
            .u64_field("engine_threads", self.engine_threads as u64)
            .u64_field("steps_per_iter", self.steps_per_iter)
            .u64_field("seed_mean_ns", self.seed_mean_ns)
            .u64_field("mean_ns", self.mean_ns)
            .u64_field("min_ns", self.min_ns)
            .f64_field("steps_per_sec", self.steps_per_sec())
            .f64_field("best_steps_per_sec", self.best_steps_per_sec())
            .f64_field("speedup_vs_seed", self.speedup());
        if let Some(eff) = self.parallel_efficiency {
            line.f64_field("parallel_efficiency", eff);
        }
        line.finish()
    }
}

fn per_sec(units: u64, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    units as f64 * 1e9 / ns as f64
}

/// One per-stage profile of an observed simulated day, keyed by the
/// engine thread count it ran at. Rows from a sharded run record
/// **summed per-shard CPU time**, not wall time: comparing a row
/// against its 1-thread twin shows sharding overhead, while the
/// `simulated_day` benchmarks show the wall-clock effect.
#[derive(Debug, Clone)]
pub struct StageProfile {
    /// Engine worker threads the profiled day ran at.
    pub engine_threads: usize,
    /// The per-stage ns/step profile from the `baat-obs` stage profiler.
    pub stages: Vec<StageStats>,
}

fn stage_row_json(
    stage: &str,
    engine_threads: u64,
    calls: u64,
    total_ns: u64,
    mean_ns: u64,
) -> String {
    let mut line = JsonLine::new();
    line.str_field("stage", stage)
        .u64_field("engine_threads", engine_threads)
        .u64_field("calls", calls)
        .u64_field("total_ns", total_ns)
        .u64_field("mean_ns", mean_ns);
    line.finish()
}

/// The full perf report emitted as `BENCH_10.json`.
#[derive(Debug, Clone, Default)]
pub struct PerfReport {
    /// The gated hot-path benchmarks.
    pub benchmarks: Vec<PerfBench>,
    /// Per-stage profiles, one per engine thread count — serialized as
    /// a single `stages` table whose rows carry `engine_threads`.
    pub stage_profiles: Vec<StageProfile>,
    /// Heap allocations per engine step over one simulated day, measured
    /// by the counting allocator (only with `--features count-allocs`).
    pub allocs_per_step: Option<f64>,
    /// Wall-clock overhead of a fully observed faulted day — metrics,
    /// tracing and health active — over the disabled run, in absolute
    /// nanoseconds per simulation step: the figure gated against
    /// [`OBS_OVERHEAD_LIMIT_NS_PER_STEP`]. (An earlier revision also
    /// reported a percentage, dropped because it silently tightened as
    /// the base engine got faster and read as instrumentation churn.)
    pub obs_overhead_ns_per_step: Option<f64>,
}

impl PerfReport {
    /// Serializes the report as the `BENCH_10.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n\"schema\": \"baat-perf-v2\",\n\"issue\": 10,\n");
        out.push_str(&format!("\"tolerance_pct\": {TOLERANCE_PCT},\n"));
        out.push_str("\"benchmarks\": [\n");
        for (i, b) in self.benchmarks.iter().enumerate() {
            out.push_str(&b.to_json());
            out.push_str(if i + 1 < self.benchmarks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("],\n\"stages\": [\n");
        let rows: Vec<String> = self
            .stage_profiles
            .iter()
            .flat_map(|p| {
                p.stages.iter().map(|s| {
                    stage_row_json(
                        s.stage.name(),
                        p.engine_threads as u64,
                        s.calls,
                        s.total_ns,
                        s.mean_ns(),
                    )
                })
            })
            .collect();
        for (i, row) in rows.iter().enumerate() {
            out.push_str(row);
            out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        out.push(']');
        if let Some(allocs) = self.allocs_per_step {
            let mut line = JsonLine::new();
            line.f64_field("allocs_per_step", allocs);
            out.push_str(",\n\"allocs\": ");
            out.push_str(&line.finish());
        }
        if let Some(ns) = self.obs_overhead_ns_per_step {
            let mut line = JsonLine::new();
            line.f64_field("obs_overhead_ns_per_step", ns)
                .f64_field("limit_ns_per_step", OBS_OVERHEAD_LIMIT_NS_PER_STEP);
            out.push_str(",\n\"obs_overhead\": ");
            out.push_str(&line.finish());
        }
        out.push_str("\n}\n");
        out
    }

    /// The observability-overhead gate: a failure line when the measured
    /// per-step overhead exceeds [`OBS_OVERHEAD_LIMIT_NS_PER_STEP`],
    /// else `None`.
    pub fn obs_overhead_failure(&self) -> Option<String> {
        let ns = self.obs_overhead_ns_per_step?;
        (ns > OBS_OVERHEAD_LIMIT_NS_PER_STEP).then(|| {
            format!(
                "obs overhead: traced faulted day costs {ns:.0} ns/step over the \
                 disabled run (limit {OBS_OVERHEAD_LIMIT_NS_PER_STEP} ns/step)"
            )
        })
    }

    /// Compares this (freshly measured) report against the committed
    /// baseline document. Returns human-readable failure lines, one per
    /// regressed benchmark; empty means the gate passes.
    ///
    /// The gate compares the fresh **best** observed throughput against
    /// the committed **mean** throughput: the best-of-batches figure is
    /// robust to scheduler noise on loaded CI machines, while the mean
    /// keeps the committed reference honest. The committed side may be
    /// either schema version (the scanner keys on benchmark name only).
    pub fn regressions_against(&self, committed: &str) -> Vec<String> {
        let baseline = committed_steps_per_sec(committed);
        let mut failures = Vec::new();
        for bench in &self.benchmarks {
            let Some(&reference) =
                baseline.iter().find_map(
                    |(name, v)| {
                        if *name == bench.name {
                            Some(v)
                        } else {
                            None
                        }
                    },
                )
            else {
                failures.push(format!(
                    "{}: missing from committed {BASELINE_FILE} — re-run with --update",
                    bench.name
                ));
                continue;
            };
            let floor = reference * (1.0 - TOLERANCE_PCT / 100.0);
            let measured = bench.best_steps_per_sec();
            if measured < floor {
                failures.push(format!(
                    "{}: {measured:.0} steps/s is more than {TOLERANCE_PCT}% below \
                     the committed {reference:.0} steps/s (floor {floor:.0})",
                    bench.name
                ));
            }
        }
        failures
    }
}

/// Extracts `(name, steps_per_sec)` pairs from a committed baseline
/// document.
///
/// Minimal scanner for the format [`PerfReport::to_json`] emits (v1 or
/// v2): each benchmark is one line carrying both a `"name"` and a
/// `"steps_per_sec"` field.
pub fn committed_steps_per_sec(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = extract_str(line, "name") else {
            continue;
        };
        let Some(steps) = extract_f64(line, "steps_per_sec") else {
            continue;
        };
        out.push((name, steps));
    }
    out
}

/// The rest of the document after `"key":`, with leading whitespace
/// trimmed — tolerant of the pretty-printed `"key": value` style the
/// report's top-level fields use (the line scanners in [`crate::jsonq`]
/// require the compact `"key":value` the row lines use).
fn field_tail<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = doc.find(&pat)? + pat.len();
    Some(doc[start..].trim_start())
}

/// The schema version of a perf report document (`1` for
/// `baat-perf-v1`, `2` for `baat-perf-v2`). `None` when the document is
/// not a perf report.
pub fn schema_version(json: &str) -> Option<u32> {
    let tail = field_tail(json, "schema")?.strip_prefix('"')?;
    let end = tail.find('"')?;
    tail[..end].strip_prefix("baat-perf-v")?.parse().ok()
}

/// Leading unsigned integer of a top-level (pretty-printed) field.
fn field_u64(doc: &str, key: &str) -> Option<u64> {
    let tail = field_tail(doc, key)?;
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Reads a v1 **or** v2 perf report into one canonical line-per-row
/// shape, so documents across the schema bump stay comparable
/// (`console diff`) and machine-readable (the run registry):
///
/// ```text
/// {"kind":"bench","name":...,"engine_threads":N,"steps_per_sec":...}
/// {"kind":"stage","stage":...,"engine_threads":N,"calls":...,...}
/// {"kind":"allocs","allocs_per_step":...}
/// {"kind":"obs_overhead","obs_overhead_ns_per_step":...}
/// ```
///
/// v1 documents carried one global `engine_threads` and split stage
/// rows into `stages` (sequential) and `stages_parallel` sections; the
/// normalizer folds that back into per-row thread counts (benchmarks:
/// the global count for the one `-sharded` cell v1 ever had, 1
/// otherwise). Returns `None` for non-perf documents.
pub fn normalized_lines(json: &str) -> Option<Vec<String>> {
    let version = schema_version(json)?;
    let global_threads = field_u64(json, "engine_threads").unwrap_or(1);
    let mut section_threads = 1u64;
    let mut out = Vec::new();
    for line in json.lines() {
        if version < 2 {
            if line.contains("\"stages\":") {
                section_threads = 1;
            } else if line.contains("\"stages_parallel\":") {
                section_threads = global_threads;
            }
        }
        if let (Some(name), Some(sps)) = (
            extract_str(line, "name"),
            extract_f64(line, "steps_per_sec"),
        ) {
            let threads =
                extract_u64(line, "engine_threads").unwrap_or(if name.contains("sharded") {
                    global_threads
                } else {
                    1
                });
            let mut l = JsonLine::new();
            l.str_field("kind", "bench")
                .str_field("name", &name)
                .u64_field("engine_threads", threads)
                .f64_field("steps_per_sec", sps);
            if let Some(best) = extract_f64(line, "best_steps_per_sec") {
                l.f64_field("best_steps_per_sec", best);
            }
            if let Some(eff) = extract_f64(line, "parallel_efficiency") {
                l.f64_field("parallel_efficiency", eff);
            }
            out.push(l.finish());
        } else if let Some(stage) = extract_str(line, "stage") {
            let threads = extract_u64(line, "engine_threads").unwrap_or(section_threads);
            let mut l = JsonLine::new();
            l.str_field("kind", "stage")
                .str_field("stage", &stage)
                .u64_field("engine_threads", threads)
                .u64_field("calls", extract_u64(line, "calls").unwrap_or(0))
                .u64_field("total_ns", extract_u64(line, "total_ns").unwrap_or(0))
                .u64_field("mean_ns", extract_u64(line, "mean_ns").unwrap_or(0));
            out.push(l.finish());
        } else if let Some(v) = extract_f64(line, "allocs_per_step") {
            let mut l = JsonLine::new();
            l.str_field("kind", "allocs")
                .f64_field("allocs_per_step", v);
            out.push(l.finish());
        } else if let Some(v) = extract_f64(line, "obs_overhead_ns_per_step") {
            let mut l = JsonLine::new();
            l.str_field("kind", "obs_overhead")
                .f64_field("obs_overhead_ns_per_step", v);
            out.push(l.finish());
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_obs::Stage;

    fn bench(name: &str, threads: usize, mean_ns: u64, min_ns: u64) -> PerfBench {
        PerfBench {
            name: name.to_owned(),
            engine_threads: threads,
            steps_per_iter: 2880,
            seed_mean_ns: 176_660_000,
            mean_ns,
            min_ns,
            parallel_efficiency: None,
        }
    }

    fn report() -> PerfReport {
        PerfReport {
            benchmarks: vec![
                bench("simulated_day/BAAT", 1, 68_480_000, 61_290_000),
                PerfBench {
                    name: "sweep/fig03_05".to_owned(),
                    engine_threads: 1,
                    steps_per_iter: 1,
                    seed_mean_ns: 279_820,
                    mean_ns: 132_830,
                    min_ns: 124_790,
                    parallel_efficiency: None,
                },
            ],
            stage_profiles: Vec::new(),
            allocs_per_step: None,
            obs_overhead_ns_per_step: None,
        }
    }

    #[test]
    fn round_trips_through_the_scanner() {
        let r = report();
        let parsed = committed_steps_per_sec(&r.to_json());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "simulated_day/BAAT");
        assert!((parsed[0].1 - r.benchmarks[0].steps_per_sec()).abs() < 1.0);
        assert!((parsed[1].1 - r.benchmarks[1].steps_per_sec()).abs() < 1.0);
    }

    #[test]
    fn speedup_is_seed_over_current() {
        let r = report();
        assert!((r.benchmarks[0].speedup() - 176_660_000.0 / 68_480_000.0).abs() < 1e-9);
    }

    #[test]
    fn identical_measurement_passes_the_gate() {
        let r = report();
        assert!(r.regressions_against(&r.to_json()).is_empty());
    }

    #[test]
    fn large_regression_fails_the_gate() {
        let mut slow = report();
        let committed = slow.to_json();
        for b in &mut slow.benchmarks {
            b.mean_ns *= 2;
            b.min_ns *= 2;
        }
        let failures = slow.regressions_against(&committed);
        assert_eq!(failures.len(), 2, "{failures:?}");
    }

    #[test]
    fn small_wobble_passes_the_gate() {
        let mut wobbly = report();
        let committed = wobbly.to_json();
        for b in &mut wobbly.benchmarks {
            // 10 % slower stays inside the 20 % tolerance.
            b.mean_ns = b.mean_ns + b.mean_ns / 10;
            b.min_ns = b.min_ns + b.min_ns / 10;
        }
        assert!(wobbly.regressions_against(&committed).is_empty());
    }

    #[test]
    fn obs_overhead_gate_trips_only_past_the_limit() {
        let mut r = report();
        assert!(r.obs_overhead_failure().is_none(), "unmeasured passes");
        r.obs_overhead_ns_per_step = Some(OBS_OVERHEAD_LIMIT_NS_PER_STEP - 500.0);
        assert!(
            r.obs_overhead_failure().is_none(),
            "absolute cost under the limit passes"
        );
        let json = r.to_json();
        assert!(json.contains("\"obs_overhead_ns_per_step\":500"));
        assert!(
            !json.contains("obs_overhead_pct"),
            "the misleading percentage figure is gone"
        );
        r.obs_overhead_ns_per_step = Some(OBS_OVERHEAD_LIMIT_NS_PER_STEP + 250.0);
        let failure = r.obs_overhead_failure().expect("over the limit fails");
        assert!(failure.contains("1250 ns/step"), "{failure}");
    }

    #[test]
    fn stage_rows_carry_their_thread_count() {
        let mut r = report();
        let row = |total_ns| StageStats {
            stage: Stage::BatteryStep,
            calls: 72,
            total_ns,
        };
        r.stage_profiles = vec![
            StageProfile {
                engine_threads: 1,
                stages: vec![row(7_200)],
            },
            StageProfile {
                engine_threads: 4,
                stages: vec![row(9_600)],
            },
        ];
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"baat-perf-v2\""));
        assert!(
            !json.contains("stages_parallel"),
            "the duplicated v1 twin table is gone"
        );
        assert!(json.contains(
            "{\"stage\":\"battery_step\",\"engine_threads\":1,\"calls\":72,\"total_ns\":7200"
        ));
        assert!(json.contains(
            "{\"stage\":\"battery_step\",\"engine_threads\":4,\"calls\":72,\"total_ns\":9600"
        ));
        // Stage rows carry no name/steps_per_sec pair, so the benchmark
        // scanner still sees exactly the benchmarks.
        assert_eq!(committed_steps_per_sec(&json).len(), 2);
    }

    #[test]
    fn parallel_efficiency_rides_on_parallel_cells_only() {
        let mut r = report();
        let mut sharded = bench("simulated_day/BAAT-sharded", 4, 137_000_000, 130_000_000);
        sharded.record_parallel_efficiency(r.benchmarks[0].mean_ns);
        let eff = sharded.parallel_efficiency.expect("recorded");
        // 68.48 ms sequential vs 137 ms on 4 threads: eff = 0.5/4.
        assert!((eff - 68_480_000.0 / 137_000_000.0 / 4.0).abs() < 1e-12);
        r.benchmarks.push(sharded);
        let json = r.to_json();
        assert_eq!(json.matches("parallel_efficiency").count(), 1);
        assert!(json.contains("\"engine_threads\":4"));
    }

    #[test]
    fn missing_benchmark_is_reported() {
        let committed = report().to_json();
        let mut extra = report();
        extra.benchmarks.push(bench("new/bench", 1, 100, 90));
        let failures = extra.regressions_against(&committed);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"));
    }

    /// A hand-written v1 document shaped like the committed BENCH_9.json.
    fn v1_doc() -> String {
        "{\n\"schema\": \"baat-perf-v1\",\n\"issue\": 9,\n\"tolerance_pct\": 20,\n\
         \"benchmarks\": [\n\
         {\"name\":\"simulated_day/BAAT\",\"steps_per_iter\":2880,\"seed_mean_ns\":176660000,\"mean_ns\":68480000,\"min_ns\":61290000,\"steps_per_sec\":42056.08,\"best_steps_per_sec\":46989.72,\"speedup_vs_seed\":2.58},\n\
         {\"name\":\"simulated_day/BAAT-sharded\",\"steps_per_iter\":2880,\"seed_mean_ns\":176660000,\"mean_ns\":32575708,\"min_ns\":31000000,\"steps_per_sec\":88409.0,\"best_steps_per_sec\":92903.2,\"speedup_vs_seed\":5.42}\n\
         ],\n\"stages\": [\n\
         {\"stage\":\"solar\",\"calls\":72,\"total_ns\":23487,\"mean_ns\":326}\n\
         ],\n\"engine_threads\": 4,\n\"stages_parallel\": [\n\
         {\"stage\":\"solar\",\"calls\":72,\"total_ns\":31002,\"mean_ns\":430}\n\
         ],\n\"obs_overhead\": {\"obs_overhead_ns_per_step\":502.12,\"limit_ns_per_step\":1000}\n}\n"
            .to_owned()
    }

    #[test]
    fn schema_version_reads_both_generations() {
        assert_eq!(schema_version(&v1_doc()), Some(1));
        assert_eq!(schema_version(&report().to_json()), Some(2));
        assert_eq!(schema_version("{\"at_s\":0}"), None);
    }

    #[test]
    fn v1_documents_normalize_with_inferred_thread_counts() {
        let lines = normalized_lines(&v1_doc()).expect("perf doc");
        let benches: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"bench\""))
            .collect();
        assert_eq!(benches.len(), 2);
        assert!(
            benches[0].contains("\"engine_threads\":1"),
            "sequential cell: {}",
            benches[0]
        );
        assert!(
            benches[1].contains("\"name\":\"simulated_day/BAAT-sharded\"")
                && benches[1].contains("\"engine_threads\":4"),
            "the sharded cell inherits the global count: {}",
            benches[1]
        );
        let stages: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"stage\""))
            .collect();
        assert_eq!(stages.len(), 2);
        assert!(stages[0].contains("\"engine_threads\":1") && stages[0].contains("23487"));
        assert!(stages[1].contains("\"engine_threads\":4") && stages[1].contains("31002"));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"kind\":\"obs_overhead\"") && l.contains("502.12")));
    }

    #[test]
    fn v2_normalization_matches_its_own_rows() {
        let mut r = report();
        r.stage_profiles = vec![StageProfile {
            engine_threads: 8,
            stages: vec![StageStats {
                stage: Stage::Solar,
                calls: 10,
                total_ns: 1000,
            }],
        }];
        let lines = normalized_lines(&r.to_json()).expect("perf doc");
        assert!(lines
            .iter()
            .any(|l| l.contains("\"kind\":\"stage\"") && l.contains("\"engine_threads\":8")));
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"kind\":\"bench\""))
                .count(),
            2
        );
        assert!(normalized_lines("{\"name\":\"x\"}").is_none(), "non-perf");
    }
}
