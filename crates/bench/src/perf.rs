//! The performance-regression baseline: measurement records, the
//! `BENCH_9.json` serialization, and the >20 % steps/sec gate.
//!
//! The perf harness (`benches/perf.rs`) measures the hot paths, embeds
//! the pre-optimization wall-clocks recorded at the seed revision, and
//! emits the whole report as `BENCH_9.json` at the repository root.
//! `ci/check.sh` re-measures in `--check` mode and fails when any
//! benchmark's best observed throughput falls more than
//! [`TOLERANCE_PCT`] below the committed figure — catching perf
//! regressions the way goldens catch behavioural ones. The same gate
//! bounds tracing+health observability overhead on a faulted day to
//! [`OBS_OVERHEAD_LIMIT_NS_PER_STEP`] of absolute per-step cost.
//!
//! The file format is the in-tree [`baat_obs::json`] line style: one JSON
//! object per benchmark inside a plain JSON document, parseable with the
//! minimal scanner in [`committed_steps_per_sec`] (no external JSON
//! dependency, mirroring the hermetic-workspace rule).

use baat_obs::json::JsonLine;
use baat_obs::StageStats;

use crate::jsonq::{extract_f64, extract_str};

/// Allowed steps/sec shortfall (percent) before `--check` fails.
pub const TOLERANCE_PCT: f64 = 20.0;

/// Allowed wall-clock overhead of a fully observed faulted day —
/// metrics, tracing and health active — over the disabled run, in
/// nanoseconds per simulation step.
///
/// The limit is absolute rather than relative: a percentage gate
/// tightens every time the base simulation gets faster, failing runs
/// whose instrumentation cost never changed. 1 µs/step matches the
/// seed-era budget (5 % of the ~14 µs/step seed-revision day).
pub const OBS_OVERHEAD_LIMIT_NS_PER_STEP: f64 = 1_000.0;

/// Where the committed baseline lives, relative to the workspace root.
pub const BASELINE_FILE: &str = "BENCH_9.json";

/// One measured hot-path benchmark, with the seed-revision wall-clock it
/// is compared against.
#[derive(Debug, Clone)]
pub struct PerfBench {
    /// Benchmark id (`group/name`).
    pub name: String,
    /// Work units (simulation steps, or 1 for whole-sweep wall-clocks)
    /// performed per iteration.
    pub steps_per_iter: u64,
    /// Mean wall-clock per iteration at the seed revision, in
    /// nanoseconds (the "before" of the before/after record).
    pub seed_mean_ns: u64,
    /// Measured mean wall-clock per iteration, in nanoseconds.
    pub mean_ns: u64,
    /// Fastest observed batch per iteration, in nanoseconds — the
    /// noise-robust figure the regression gate compares.
    pub min_ns: u64,
}

impl PerfBench {
    /// Mean throughput in steps (work units) per second.
    pub fn steps_per_sec(&self) -> f64 {
        per_sec(self.steps_per_iter, self.mean_ns)
    }

    /// Best-case throughput in steps per second (from the fastest batch).
    pub fn best_steps_per_sec(&self) -> f64 {
        per_sec(self.steps_per_iter, self.min_ns)
    }

    /// Wall-clock speedup over the seed revision (mean vs mean).
    pub fn speedup(&self) -> f64 {
        if self.mean_ns == 0 {
            return 0.0;
        }
        self.seed_mean_ns as f64 / self.mean_ns as f64
    }

    fn to_json(&self) -> String {
        let mut line = JsonLine::new();
        line.str_field("name", &self.name)
            .u64_field("steps_per_iter", self.steps_per_iter)
            .u64_field("seed_mean_ns", self.seed_mean_ns)
            .u64_field("mean_ns", self.mean_ns)
            .u64_field("min_ns", self.min_ns)
            .f64_field("steps_per_sec", self.steps_per_sec())
            .f64_field("best_steps_per_sec", self.best_steps_per_sec())
            .f64_field("speedup_vs_seed", self.speedup());
        line.finish()
    }
}

fn per_sec(units: u64, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    units as f64 * 1e9 / ns as f64
}

fn push_stage_rows(out: &mut String, stages: &[StageStats]) {
    for (i, s) in stages.iter().enumerate() {
        out.push_str(&s.to_json());
        out.push_str(if i + 1 < stages.len() { ",\n" } else { "\n" });
    }
}

/// The full perf report emitted as `BENCH_9.json`.
#[derive(Debug, Clone, Default)]
pub struct PerfReport {
    /// The gated hot-path benchmarks.
    pub benchmarks: Vec<PerfBench>,
    /// Per-stage profile of one observed simulated day (ns/step), from
    /// the `baat-obs` stage profiler, on the sequential (1-thread)
    /// engine.
    pub stages: Vec<StageStats>,
    /// The same day profiled with the engine's per-bank stages sharded
    /// across [`PerfReport::engine_threads`] workers. Sharded stage rows
    /// record **summed per-shard CPU time**, not wall time: comparing a
    /// row against its `stages` twin shows sharding overhead, while the
    /// `simulated_day` benchmarks above show the wall-clock win.
    pub stages_parallel: Vec<StageStats>,
    /// Worker-thread count the `stages_parallel` profile ran at (absent
    /// when no parallel profile was taken).
    pub engine_threads: Option<usize>,
    /// Heap allocations per engine step over one simulated day, measured
    /// by the counting allocator (only with `--features count-allocs`).
    pub allocs_per_step: Option<f64>,
    /// Wall-clock overhead of a fully observed faulted day — metrics,
    /// tracing and health active — over the disabled run, in absolute
    /// nanoseconds per simulation step: the figure gated against
    /// [`OBS_OVERHEAD_LIMIT_NS_PER_STEP`]. (An earlier revision also
    /// reported a percentage, dropped because it silently tightened as
    /// the base engine got faster and read as instrumentation churn.)
    pub obs_overhead_ns_per_step: Option<f64>,
}

impl PerfReport {
    /// Serializes the report as the `BENCH_9.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n\"schema\": \"baat-perf-v1\",\n\"issue\": 9,\n");
        out.push_str(&format!("\"tolerance_pct\": {TOLERANCE_PCT},\n"));
        out.push_str("\"benchmarks\": [\n");
        for (i, b) in self.benchmarks.iter().enumerate() {
            out.push_str(&b.to_json());
            out.push_str(if i + 1 < self.benchmarks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("],\n\"stages\": [\n");
        push_stage_rows(&mut out, &self.stages);
        out.push(']');
        if let Some(threads) = self.engine_threads {
            out.push_str(&format!(
                ",\n\"engine_threads\": {threads},\n\"stages_parallel\": [\n"
            ));
            push_stage_rows(&mut out, &self.stages_parallel);
            out.push(']');
        }
        if let Some(allocs) = self.allocs_per_step {
            let mut line = JsonLine::new();
            line.f64_field("allocs_per_step", allocs);
            out.push_str(",\n\"allocs\": ");
            out.push_str(&line.finish());
        }
        if let Some(ns) = self.obs_overhead_ns_per_step {
            let mut line = JsonLine::new();
            line.f64_field("obs_overhead_ns_per_step", ns)
                .f64_field("limit_ns_per_step", OBS_OVERHEAD_LIMIT_NS_PER_STEP);
            out.push_str(",\n\"obs_overhead\": ");
            out.push_str(&line.finish());
        }
        out.push_str("\n}\n");
        out
    }

    /// The observability-overhead gate: a failure line when the measured
    /// per-step overhead exceeds [`OBS_OVERHEAD_LIMIT_NS_PER_STEP`],
    /// else `None`.
    pub fn obs_overhead_failure(&self) -> Option<String> {
        let ns = self.obs_overhead_ns_per_step?;
        (ns > OBS_OVERHEAD_LIMIT_NS_PER_STEP).then(|| {
            format!(
                "obs overhead: traced faulted day costs {ns:.0} ns/step over the \
                 disabled run (limit {OBS_OVERHEAD_LIMIT_NS_PER_STEP} ns/step)"
            )
        })
    }

    /// Compares this (freshly measured) report against the committed
    /// baseline document. Returns human-readable failure lines, one per
    /// regressed benchmark; empty means the gate passes.
    ///
    /// The gate compares the fresh **best** observed throughput against
    /// the committed **mean** throughput: the best-of-batches figure is
    /// robust to scheduler noise on loaded CI machines, while the mean
    /// keeps the committed reference honest.
    pub fn regressions_against(&self, committed: &str) -> Vec<String> {
        let baseline = committed_steps_per_sec(committed);
        let mut failures = Vec::new();
        for bench in &self.benchmarks {
            let Some(&reference) =
                baseline.iter().find_map(
                    |(name, v)| {
                        if *name == bench.name {
                            Some(v)
                        } else {
                            None
                        }
                    },
                )
            else {
                failures.push(format!(
                    "{}: missing from committed {BASELINE_FILE} — re-run with --update",
                    bench.name
                ));
                continue;
            };
            let floor = reference * (1.0 - TOLERANCE_PCT / 100.0);
            let measured = bench.best_steps_per_sec();
            if measured < floor {
                failures.push(format!(
                    "{}: {measured:.0} steps/s is more than {TOLERANCE_PCT}% below \
                     the committed {reference:.0} steps/s (floor {floor:.0})",
                    bench.name
                ));
            }
        }
        failures
    }
}

/// Extracts `(name, steps_per_sec)` pairs from a committed baseline
/// document.
///
/// Minimal scanner for the format [`PerfReport::to_json`] emits: each
/// benchmark is one line carrying both a `"name"` and a
/// `"steps_per_sec"` field.
pub fn committed_steps_per_sec(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = extract_str(line, "name") else {
            continue;
        };
        let Some(steps) = extract_f64(line, "steps_per_sec") else {
            continue;
        };
        out.push((name, steps));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PerfReport {
        PerfReport {
            benchmarks: vec![
                PerfBench {
                    name: "simulated_day/BAAT".to_owned(),
                    steps_per_iter: 2880,
                    seed_mean_ns: 176_660_000,
                    mean_ns: 68_480_000,
                    min_ns: 61_290_000,
                },
                PerfBench {
                    name: "sweep/fig03_05".to_owned(),
                    steps_per_iter: 1,
                    seed_mean_ns: 279_820,
                    mean_ns: 132_830,
                    min_ns: 124_790,
                },
            ],
            stages: Vec::new(),
            stages_parallel: Vec::new(),
            engine_threads: None,
            allocs_per_step: None,
            obs_overhead_ns_per_step: None,
        }
    }

    #[test]
    fn round_trips_through_the_scanner() {
        let r = report();
        let parsed = committed_steps_per_sec(&r.to_json());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "simulated_day/BAAT");
        assert!((parsed[0].1 - r.benchmarks[0].steps_per_sec()).abs() < 1.0);
        assert!((parsed[1].1 - r.benchmarks[1].steps_per_sec()).abs() < 1.0);
    }

    #[test]
    fn speedup_is_seed_over_current() {
        let r = report();
        assert!((r.benchmarks[0].speedup() - 176_660_000.0 / 68_480_000.0).abs() < 1e-9);
    }

    #[test]
    fn identical_measurement_passes_the_gate() {
        let r = report();
        assert!(r.regressions_against(&r.to_json()).is_empty());
    }

    #[test]
    fn large_regression_fails_the_gate() {
        let mut slow = report();
        let committed = slow.to_json();
        for b in &mut slow.benchmarks {
            b.mean_ns *= 2;
            b.min_ns *= 2;
        }
        let failures = slow.regressions_against(&committed);
        assert_eq!(failures.len(), 2, "{failures:?}");
    }

    #[test]
    fn small_wobble_passes_the_gate() {
        let mut wobbly = report();
        let committed = wobbly.to_json();
        for b in &mut wobbly.benchmarks {
            // 10 % slower stays inside the 20 % tolerance.
            b.mean_ns = b.mean_ns + b.mean_ns / 10;
            b.min_ns = b.min_ns + b.min_ns / 10;
        }
        assert!(wobbly.regressions_against(&committed).is_empty());
    }

    #[test]
    fn obs_overhead_gate_trips_only_past_the_limit() {
        let mut r = report();
        assert!(r.obs_overhead_failure().is_none(), "unmeasured passes");
        r.obs_overhead_ns_per_step = Some(OBS_OVERHEAD_LIMIT_NS_PER_STEP - 500.0);
        assert!(
            r.obs_overhead_failure().is_none(),
            "absolute cost under the limit passes"
        );
        let json = r.to_json();
        assert!(json.contains("\"obs_overhead_ns_per_step\":500"));
        assert!(
            !json.contains("obs_overhead_pct"),
            "the misleading percentage figure is gone"
        );
        r.obs_overhead_ns_per_step = Some(OBS_OVERHEAD_LIMIT_NS_PER_STEP + 250.0);
        let failure = r.obs_overhead_failure().expect("over the limit fails");
        assert!(failure.contains("1250 ns/step"), "{failure}");
    }

    #[test]
    fn parallel_stage_rows_ride_with_the_thread_count() {
        use baat_obs::Stage;
        let mut r = report();
        let row = |total_ns| StageStats {
            stage: Stage::BatteryStep,
            calls: 72,
            total_ns,
        };
        r.stages = vec![row(7_200)];
        r.stages_parallel = vec![row(9_600)];
        // Without a thread count the parallel rows are not emitted.
        assert!(!r.to_json().contains("stages_parallel"));
        r.engine_threads = Some(4);
        let json = r.to_json();
        assert!(json.contains("\"engine_threads\": 4"));
        assert!(json.contains("\"stages_parallel\": [\n"));
        // Both profiles still round-trip through the benchmark scanner
        // untouched (stage rows carry no name/steps_per_sec pair).
        assert_eq!(committed_steps_per_sec(&json).len(), 2);
    }

    #[test]
    fn missing_benchmark_is_reported() {
        let committed = report().to_json();
        let mut extra = report();
        extra.benchmarks.push(PerfBench {
            name: "new/bench".to_owned(),
            steps_per_iter: 1,
            seed_mean_ns: 0,
            mean_ns: 100,
            min_ns: 90,
        });
        let failures = extra.regressions_against(&committed);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"));
    }
}
