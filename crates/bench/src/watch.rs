//! The live-watch frame renderer behind `console watch`.
//!
//! Renders one text frame — a per-node table of SoC, power, aging and
//! health-check state — from a running [`Simulation`]. Kept out of the
//! console binary so the frame format is unit-testable; the binary only
//! decides *when* to render (every N simulated minutes) and whether to
//! clear the terminal between frames.

use baat_obs::HealthCheck;
use baat_sim::{SimError, Simulation};

/// Short uppercase tag per health check, used in the frame's health
/// column.
fn check_tag(check: HealthCheck) -> &'static str {
    match check {
        HealthCheck::SocFloorViolation => "FLOOR",
        HealthCheck::AgingRateAnomaly => "AGING",
        HealthCheck::SustainedDegraded => "STALE",
        HealthCheck::ChargerModeThrash => "THRASH",
    }
}

/// Renders one watch frame from the simulation's current state.
///
/// # Errors
///
/// Returns [`SimError`] if the engine's bookkeeping is inconsistent
/// (same conditions as [`Simulation::build_view`]).
pub fn render_frame(sim: &Simulation) -> Result<String, SimError> {
    let view = sim.build_view()?;
    let health = sim.health();
    let degraded = view.nodes.iter().filter(|n| n.degraded).count();
    let secs = view.now.as_secs();
    let mut out = format!(
        "day {} {:02}:{:02} | solar {:.0} W | degraded {}/{}\n",
        view.now.day(),
        secs / 3600 % 24,
        secs / 60 % 60,
        view.solar.as_f64(),
        degraded,
        view.nodes.len()
    );
    out.push_str(&format!(
        "{:<5} {:>6} {:>6} {:>9} {:>9} {:>5} {:>9}  {}\n",
        "node", "soc", "floor", "power_w", "damage", "dvfs", "state", "health"
    ));
    for n in &view.nodes {
        let mut tags = String::new();
        for check in HealthCheck::ALL {
            if health.is_active(n.node, check) {
                if !tags.is_empty() {
                    tags.push(',');
                }
                tags.push_str(check_tag(check));
            }
        }
        if tags.is_empty() {
            tags.push('-');
        }
        let state = if !n.online {
            "offline"
        } else if n.degraded {
            "degraded"
        } else {
            "online"
        };
        out.push_str(&format!(
            "{:<5} {:>6.3} {:>6.2} {:>9.1} {:>9.5} {:>5} {:>9}  {}\n",
            n.node,
            n.soc.value(),
            n.soc_floor.value(),
            n.server_power.as_f64(),
            n.damage,
            n.dvfs.name(),
            state,
            tags
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_sim::{RoundRobinPolicy, SimConfig, Simulation};
    use baat_solar::Weather;
    use baat_units::SimDuration;

    #[test]
    fn frame_lists_every_node_with_header() {
        let mut b = SimConfig::builder();
        b.weather_plan(vec![Weather::Sunny])
            .dt(SimDuration::from_secs(60))
            .seed(3);
        let config = b.build().expect("valid");
        let nodes = config.nodes;
        let mut sim = Simulation::new(config).expect("valid");
        let mut policy = RoundRobinPolicy::new();
        // Advance into the operating window so servers are online.
        sim.run_steps(&mut policy, 9 * 60).expect("runs");
        let frame = render_frame(&sim).expect("renders");
        let lines: Vec<&str> = frame.lines().collect();
        assert_eq!(lines.len(), 2 + nodes, "{frame}");
        assert!(lines[0].starts_with("day 0 09:00"), "{frame}");
        assert!(lines[1].contains("health"));
        assert!(lines[2].contains("online"));
        // Healthy nodes show the empty-tags marker.
        assert!(lines[2].trim_end().ends_with('-'), "{frame}");
    }
}
