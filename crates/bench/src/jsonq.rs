//! Minimal field scanners for the workspace's one-object-per-line JSON
//! exports.
//!
//! The workspace is hermetic (no serde), and every structured export —
//! `metrics.jsonl`, `spans.jsonl`, the perf baseline — is emitted by
//! [`baat_obs::json::JsonLine`]: flat objects, one per line, keys in a
//! stable order. These scanners extract single fields from such lines
//! without a JSON parser. They are **not** general JSON readers: nested
//! objects or keys embedded inside string values can confuse them, which
//! the emitting side never produces.

/// Extracts a string field's value from a single JSONL line.
pub fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_owned())
}

/// Extracts a numeric field from a single JSONL line as `f64`.
pub fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a non-negative integer field from a single JSONL line.
pub fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a boolean field from a single JSONL line.
pub fn extract_bool(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fields_from_a_metric_line() {
        let line = r#"{"name":"sim.actions.applied","kind":"counter","value":17}"#;
        assert_eq!(
            extract_str(line, "name").as_deref(),
            Some("sim.actions.applied")
        );
        assert_eq!(extract_u64(line, "value"), Some(17));
        assert_eq!(extract_f64(line, "value"), Some(17.0));
        assert_eq!(extract_str(line, "missing"), None);
        assert_eq!(extract_u64(line, "name"), None);
    }

    #[test]
    fn extracts_bools() {
        let line = r#"{"old":false,"chemistry_explicit":true,"n":1}"#;
        assert_eq!(extract_bool(line, "old"), Some(false));
        assert_eq!(extract_bool(line, "chemistry_explicit"), Some(true));
        assert_eq!(extract_bool(line, "n"), None);
        assert_eq!(extract_bool(line, "missing"), None);
    }

    #[test]
    fn extracts_negative_and_scientific_floats() {
        let line = r#"{"a":-0.5,"b":1e-9,"c":3}"#;
        assert_eq!(extract_f64(line, "a"), Some(-0.5));
        assert_eq!(extract_f64(line, "b"), Some(1e-9));
        assert_eq!(extract_u64(line, "a"), None, "negative is not a u64");
        assert_eq!(extract_u64(line, "c"), Some(3));
    }
}
