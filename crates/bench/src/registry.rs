//! The perf run registry: an append-only JSONL history of perf-harness
//! runs, and the trend report `console perf-trend` renders over it.
//!
//! Every perf-harness run (see `benches/perf.rs`) can append itself to
//! a history document — one `{"record":"run",...}` header line followed
//! by one `{"record":"bench",...}` line per benchmark, carrying the
//! throughput, the engine thread count and (for parallel cells) the
//! parallel efficiency. The committed seed history lives at
//! [`HISTORY_FILE`] in the workspace root; CI appends each perf job's
//! measurement and uploads the grown file as an artifact, so a
//! benchmark's trajectory across commits is one `grep` away.
//!
//! [`trend`] joins three documents — the committed baseline
//! (`BENCH_10.json`), the history, and a latest measurement — into
//! per-benchmark rows (baseline vs latest, delta, efficiency, history
//! span) and re-applies the [`crate::perf::TOLERANCE_PCT`] gate, so
//! `console perf-trend` fails exactly when `cargo bench -- --check`
//! would, but with the history for context instead of a bare verdict.
//!
//! Reports from either schema generation feed the registry: parsing
//! goes through [`crate::perf::normalized_lines`].

use baat_obs::json::JsonLine;

use crate::jsonq::{extract_f64, extract_str, extract_u64};
use crate::perf::{self, TOLERANCE_PCT};

/// Where the committed run history lives, relative to the workspace
/// root.
pub const HISTORY_FILE: &str = "PERF_HISTORY.jsonl";

/// One benchmark measurement inside one registered run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark id (`group/name`).
    pub name: String,
    /// Engine worker threads the cell ran at.
    pub engine_threads: u64,
    /// Mean throughput, steps (work units) per second.
    pub steps_per_sec: f64,
    /// Best-of-batches throughput — what the regression gate compares.
    pub best_steps_per_sec: f64,
    /// Speedup over the sequential twin divided by the thread count;
    /// `None` on sequential cells.
    pub parallel_efficiency: Option<f64>,
}

impl BenchRecord {
    fn to_json(&self, run: u64) -> String {
        let mut line = JsonLine::new();
        line.str_field("record", "bench")
            .u64_field("run", run)
            .str_field("name", &self.name)
            .u64_field("engine_threads", self.engine_threads)
            .f64_field("steps_per_sec", self.steps_per_sec)
            .f64_field("best_steps_per_sec", self.best_steps_per_sec);
        if let Some(eff) = self.parallel_efficiency {
            line.f64_field("parallel_efficiency", eff);
        }
        line.finish()
    }
}

/// One registered perf run: a sequential id, a caller-supplied label
/// (CI job id, "local", ...) and the benchmark measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Sequential run id (1-based, assigned at append time).
    pub run: u64,
    /// Free-text label recorded with the run.
    pub label: String,
    /// The run's benchmark measurements.
    pub benchmarks: Vec<BenchRecord>,
}

/// Extracts the benchmark rows of a perf report document (either schema
/// generation) as registry records. Empty when the document is not a
/// perf report.
pub fn report_benchmarks(report_json: &str) -> Vec<BenchRecord> {
    let Some(lines) = perf::normalized_lines(report_json) else {
        return Vec::new();
    };
    lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"bench\""))
        .filter_map(|l| {
            Some(BenchRecord {
                name: extract_str(l, "name")?,
                engine_threads: extract_u64(l, "engine_threads").unwrap_or(1),
                steps_per_sec: extract_f64(l, "steps_per_sec")?,
                best_steps_per_sec: extract_f64(l, "best_steps_per_sec")
                    .or_else(|| extract_f64(l, "steps_per_sec"))?,
                parallel_efficiency: extract_f64(l, "parallel_efficiency"),
            })
        })
        .collect()
}

/// Parses a history document into runs, skipping malformed lines (an
/// interrupted append leaves a readable registry).
pub fn parse_history(history: &str) -> Vec<RunRecord> {
    let mut runs: Vec<RunRecord> = Vec::new();
    for line in history.lines() {
        match extract_str(line, "record").as_deref() {
            Some("run") => {
                let Some(run) = extract_u64(line, "run") else {
                    continue;
                };
                runs.push(RunRecord {
                    run,
                    label: extract_str(line, "label").unwrap_or_default(),
                    benchmarks: Vec::new(),
                });
            }
            Some("bench") => {
                let Some(current) = runs.last_mut() else {
                    continue;
                };
                if extract_u64(line, "run") != Some(current.run) {
                    continue;
                }
                let (Some(name), Some(sps), Some(best)) = (
                    extract_str(line, "name"),
                    extract_f64(line, "steps_per_sec"),
                    extract_f64(line, "best_steps_per_sec"),
                ) else {
                    continue;
                };
                current.benchmarks.push(BenchRecord {
                    name,
                    engine_threads: extract_u64(line, "engine_threads").unwrap_or(1),
                    steps_per_sec: sps,
                    best_steps_per_sec: best,
                    parallel_efficiency: extract_f64(line, "parallel_efficiency"),
                });
            }
            _ => {}
        }
    }
    runs
}

/// Appends one run (parsed from a perf report document) to a history
/// document, assigning the next sequential run id. Returns the grown
/// document and the assigned id; `None` when the report document is
/// not a perf report or carries no benchmarks.
pub fn append_run(history: &str, report_json: &str, label: &str) -> Option<(String, u64)> {
    let benchmarks = report_benchmarks(report_json);
    if benchmarks.is_empty() {
        return None;
    }
    let next = parse_history(history)
        .iter()
        .map(|r| r.run)
        .max()
        .unwrap_or(0)
        + 1;
    let mut out = history.to_owned();
    if !out.is_empty() && !out.ends_with('\n') {
        out.push('\n');
    }
    let mut header = JsonLine::new();
    header
        .str_field("record", "run")
        .u64_field("run", next)
        .str_field("label", label)
        .str_field("schema", schema_label(report_json));
    out.push_str(&header.finish());
    out.push('\n');
    for b in &benchmarks {
        out.push_str(&b.to_json(next));
        out.push('\n');
    }
    Some((out, next))
}

fn schema_label(report_json: &str) -> &'static str {
    match perf::schema_version(report_json) {
        Some(1) => "baat-perf-v1",
        _ => "baat-perf-v2",
    }
}

/// One benchmark's row in the trend report.
#[derive(Debug, Clone)]
pub struct TrendRow {
    /// Benchmark id.
    pub name: String,
    /// Engine worker threads of the latest measurement.
    pub engine_threads: u64,
    /// Committed baseline mean throughput, when the baseline has the
    /// benchmark.
    pub baseline_steps_per_sec: Option<f64>,
    /// Latest mean throughput.
    pub latest_steps_per_sec: f64,
    /// Latest best-of-batches throughput (the gated figure).
    pub latest_best_steps_per_sec: f64,
    /// Latest best vs committed mean, in percent (positive = faster).
    pub delta_pct: Option<f64>,
    /// Latest parallel efficiency, on parallel cells.
    pub parallel_efficiency: Option<f64>,
    /// Mean throughput across all history runs carrying the benchmark,
    /// oldest first (the latest measurement is not re-appended here).
    pub history: Vec<f64>,
}

/// The joined trend report: per-benchmark rows plus the re-applied
/// regression gate.
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// One row per benchmark in the latest measurement.
    pub rows: Vec<TrendRow>,
    /// Gate failures — same semantics as
    /// [`crate::perf::PerfReport::regressions_against`]: latest best
    /// throughput more than [`TOLERANCE_PCT`] below the committed mean,
    /// or a benchmark missing from the baseline.
    pub failures: Vec<String>,
}

impl TrendReport {
    /// Renders the report as a console table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>7} {:>12} {:>12} {:>8} {:>6} {}\n",
            "benchmark",
            "threads",
            "baseline/s",
            "latest/s",
            "delta",
            "eff",
            "history (mean steps/s)"
        ));
        for r in &self.rows {
            let fmt = |v: Option<f64>, unit: &str| {
                v.map_or("—".to_owned(), |v| format!("{v:.0}{unit}"))
            };
            let history = if r.history.is_empty() {
                "—".to_owned()
            } else {
                let min = r.history.iter().copied().fold(f64::INFINITY, f64::min);
                let max = r.history.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                format!("{} run(s), {min:.0}..{max:.0}", r.history.len())
            };
            out.push_str(&format!(
                "{:<28} {:>7} {:>12} {:>12.0} {:>8} {:>6} {history}\n",
                r.name,
                r.engine_threads,
                fmt(r.baseline_steps_per_sec, ""),
                r.latest_steps_per_sec,
                r.delta_pct.map_or("—".to_owned(), |d| format!("{d:+.1}%")),
                r.parallel_efficiency
                    .map_or("—".to_owned(), |e| format!("{e:.2}")),
            ));
        }
        out
    }
}

/// Joins the committed baseline document, the run history, and the
/// latest measurement into the trend report. The baseline may be
/// either schema generation.
pub fn trend(baseline_json: &str, history: &str, latest: &[BenchRecord]) -> TrendReport {
    let baseline = perf::committed_steps_per_sec(baseline_json);
    let runs = parse_history(history);
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for bench in latest {
        let reference = baseline
            .iter()
            .find(|(name, _)| *name == bench.name)
            .map(|(_, v)| *v);
        let delta_pct = reference.map(|r| {
            if r == 0.0 {
                0.0
            } else {
                (bench.best_steps_per_sec - r) / r * 100.0
            }
        });
        match reference {
            None => failures.push(format!(
                "{}: missing from the committed baseline — re-run with --update",
                bench.name
            )),
            Some(reference) => {
                let floor = reference * (1.0 - TOLERANCE_PCT / 100.0);
                if bench.best_steps_per_sec < floor {
                    failures.push(format!(
                        "{}: {:.0} steps/s is more than {TOLERANCE_PCT}% below \
                         the committed {reference:.0} steps/s (floor {floor:.0})",
                        bench.name, bench.best_steps_per_sec
                    ));
                }
            }
        }
        rows.push(TrendRow {
            name: bench.name.clone(),
            engine_threads: bench.engine_threads,
            baseline_steps_per_sec: reference,
            latest_steps_per_sec: bench.steps_per_sec,
            latest_best_steps_per_sec: bench.best_steps_per_sec,
            delta_pct,
            parallel_efficiency: bench.parallel_efficiency,
            history: runs
                .iter()
                .filter_map(|r| {
                    r.benchmarks
                        .iter()
                        .find(|b| b.name == bench.name)
                        .map(|b| b.steps_per_sec)
                })
                .collect(),
        });
    }
    TrendReport { rows, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{PerfBench, PerfReport};

    fn report(mean_ns: u64) -> PerfReport {
        let mut sharded = PerfBench {
            name: "simulated_day/BAAT-sharded".to_owned(),
            engine_threads: 4,
            steps_per_iter: 2880,
            seed_mean_ns: 176_660_000,
            mean_ns: mean_ns * 2,
            min_ns: mean_ns * 2 - 1_000_000,
            parallel_efficiency: None,
        };
        sharded.record_parallel_efficiency(mean_ns);
        PerfReport {
            benchmarks: vec![
                PerfBench {
                    name: "simulated_day/BAAT".to_owned(),
                    engine_threads: 1,
                    steps_per_iter: 2880,
                    seed_mean_ns: 176_660_000,
                    mean_ns,
                    min_ns: mean_ns - 1_000_000,
                    parallel_efficiency: None,
                },
                sharded,
            ],
            stage_profiles: Vec::new(),
            allocs_per_step: None,
            obs_overhead_ns_per_step: None,
        }
    }

    #[test]
    fn appended_runs_round_trip_with_sequential_ids() {
        let (h1, id1) = append_run("", &report(60_000_000).to_json(), "first").expect("perf doc");
        assert_eq!(id1, 1);
        let (h2, id2) = append_run(&h1, &report(50_000_000).to_json(), "second").expect("appends");
        assert_eq!(id2, 2);
        let runs = parse_history(&h2);
        assert_eq!(runs.len(), 2);
        assert_eq!((runs[0].run, runs[0].label.as_str()), (1, "first"));
        assert_eq!(runs[1].benchmarks.len(), 2);
        let sharded = &runs[1].benchmarks[1];
        assert_eq!(sharded.engine_threads, 4);
        let eff = sharded.parallel_efficiency.expect("parallel cell");
        assert!((eff - 0.125).abs() < 1e-9, "{eff}");
        assert!(
            runs[0].benchmarks[0].parallel_efficiency.is_none(),
            "sequential cells carry no efficiency"
        );
    }

    #[test]
    fn non_perf_documents_do_not_append() {
        assert!(append_run("", "{\"at_s\":0}\n", "x").is_none());
    }

    #[test]
    fn malformed_history_lines_are_skipped() {
        let (h, _) = append_run("", &report(60_000_000).to_json(), "ok").expect("appends");
        let dirty = format!("{{\"record\":\"bench\",\"run\":9,\"name\":\"orphan\"}}\n{h}garbage\n");
        let runs = parse_history(&dirty);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].benchmarks.len(), 2, "orphan and garbage dropped");
    }

    #[test]
    fn trend_joins_baseline_history_and_latest() {
        let baseline = report(60_000_000);
        let (history, _) = append_run("", &report(62_000_000).to_json(), "older").expect("appends");
        let latest = report_benchmarks(&report(58_000_000).to_json());
        let t = trend(&baseline.to_json(), &history, &latest);
        assert!(t.failures.is_empty(), "{:?}", t.failures);
        assert_eq!(t.rows.len(), 2);
        let row = &t.rows[0];
        assert_eq!(row.name, "simulated_day/BAAT");
        assert!(row.baseline_steps_per_sec.is_some());
        assert_eq!(row.history.len(), 1);
        assert!(row.delta_pct.expect("baseline present") > 0.0, "faster run");
        let rendered = t.render();
        assert!(rendered.contains("simulated_day/BAAT-sharded"));
        assert!(rendered.contains("1 run(s)"));
    }

    #[test]
    fn trend_gate_fails_on_regression_and_missing_baseline() {
        let baseline = report(60_000_000);
        // Half the throughput: well past the 20 % floor.
        let mut slow = report_benchmarks(&report(120_000_000).to_json());
        slow.push(BenchRecord {
            name: "new/bench".to_owned(),
            engine_threads: 1,
            steps_per_sec: 10.0,
            best_steps_per_sec: 11.0,
            parallel_efficiency: None,
        });
        let t = trend(&baseline.to_json(), "", &slow);
        assert_eq!(t.failures.len(), 3, "{:?}", t.failures);
        assert!(t.failures[2].contains("missing from the committed baseline"));
    }

    #[test]
    fn v1_baselines_feed_the_trend() {
        let v1 = "{\n\"schema\": \"baat-perf-v1\",\n\"benchmarks\": [\n\
                  {\"name\":\"simulated_day/BAAT\",\"steps_per_sec\":48000.0,\"best_steps_per_sec\":50000.0}\n\
                  ]\n}\n";
        let records = report_benchmarks(v1);
        assert_eq!(records.len(), 1);
        let latest = report_benchmarks(&report(60_000_000).to_json());
        let t = trend(v1, "", &latest[..1]);
        assert_eq!(t.rows[0].baseline_steps_per_sec, Some(48000.0));
    }
}
