//! Schema validation for `spans.jsonl` trace exports.
//!
//! The trace contract (pinned by `baat-obs` unit tests and re-checked
//! here over whole files, so `ci/check.sh` can validate a real run's
//! export): one span object per line with `span`, `name` and `start_s`
//! fields; ids sequential from 1; `parent`, when present, referring to
//! an **earlier** span (causality cannot point forward in a
//! simulated-time trace); `end_s`, when present, at or after `start_s`.

use crate::jsonq::{extract_str, extract_u64};

/// Validates a `spans.jsonl` document. Returns one human-readable
/// violation per broken line/rule; empty means the trace is well-formed.
pub fn validate_trace(jsonl: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let mut expected_id = 1u64;
    for (i, line) in jsonl.lines().enumerate() {
        let n = i + 1;
        let Some(id) = extract_u64(line, "span") else {
            violations.push(format!("line {n}: missing span id"));
            continue;
        };
        if id != expected_id {
            violations.push(format!(
                "line {n}: span id {id}, expected sequential {expected_id}"
            ));
        }
        expected_id = id + 1;
        match extract_str(line, "name") {
            None => violations.push(format!("line {n}: span {id} missing name")),
            Some(name) if name.is_empty() => {
                violations.push(format!("line {n}: span {id} has an empty name"));
            }
            Some(_) => {}
        }
        let Some(start) = extract_u64(line, "start_s") else {
            violations.push(format!("line {n}: span {id} missing start_s"));
            continue;
        };
        if let Some(parent) = extract_u64(line, "parent") {
            if parent == 0 || parent >= id {
                violations.push(format!(
                    "line {n}: span {id} parent {parent} does not refer to an earlier span"
                ));
            }
        }
        if let Some(end) = extract_u64(line, "end_s") {
            if end < start {
                violations.push(format!(
                    "line {n}: span {id} ends at {end}s before it starts at {start}s"
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_well_formed_trace_passes() {
        let doc = "{\"span\":1,\"name\":\"fault\",\"start_s\":10}\n\
                   {\"span\":2,\"name\":\"degraded\",\"start_s\":40,\"parent\":1,\"end_s\":90}\n\
                   {\"span\":3,\"name\":\"fallback.action\",\"start_s\":40,\"parent\":2,\"end_s\":40}\n";
        assert!(validate_trace(doc).is_empty());
    }

    #[test]
    fn missing_fields_are_reported_per_line() {
        let doc = "{\"span\":1,\"start_s\":0}\n{\"name\":\"x\",\"start_s\":0}\n";
        let v = validate_trace(doc);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("missing name"));
        assert!(v[1].contains("missing span id"));
    }

    #[test]
    fn forward_and_self_parents_are_rejected() {
        let doc = "{\"span\":1,\"name\":\"a\",\"start_s\":0,\"parent\":1}\n\
                   {\"span\":2,\"name\":\"b\",\"start_s\":0,\"parent\":9}\n";
        let v = validate_trace(doc);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|m| m.contains("earlier span")));
    }

    #[test]
    fn non_sequential_ids_and_inverted_times_are_rejected() {
        let doc = "{\"span\":1,\"name\":\"a\",\"start_s\":50,\"end_s\":20}\n\
                   {\"span\":5,\"name\":\"b\",\"start_s\":0}\n";
        let v = validate_trace(doc);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("before it starts"));
        assert!(v[1].contains("expected sequential 2"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert!(validate_trace("").is_empty());
    }
}
