//! Schema validation for `spans.jsonl` trace exports and OpenMetrics
//! text exposition.
//!
//! The trace contract (pinned by `baat-obs` unit tests and re-checked
//! here over whole files, so `ci/check.sh` can validate a real run's
//! export): one span object per line with `span`, `name` and `start_s`
//! fields; ids sequential from 1; `parent`, when present, referring to
//! an **earlier** span (causality cannot point forward in a
//! simulated-time trace); `end_s`, when present, at or after `start_s`.
//!
//! [`validate_openmetrics`] checks the text a `/metrics` scrape (or a
//! `metrics.om` export) returns against the slice of the OpenMetrics
//! 1.0 spec the in-tree exporter promises: every sample declared by a
//! preceding `# TYPE` line, counter samples suffixed `_total`,
//! histogram buckets cumulative with a `+Inf` terminator matching
//! `_count`, and a single final `# EOF` terminator. `console
//! trace-check FILE.om` and CI's scrape smoke run it over live output.

use crate::jsonq::{extract_str, extract_u64};

/// Validates a `spans.jsonl` document. Returns one human-readable
/// violation per broken line/rule; empty means the trace is well-formed.
pub fn validate_trace(jsonl: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let mut expected_id = 1u64;
    for (i, line) in jsonl.lines().enumerate() {
        let n = i + 1;
        let Some(id) = extract_u64(line, "span") else {
            violations.push(format!("line {n}: missing span id"));
            continue;
        };
        if id != expected_id {
            violations.push(format!(
                "line {n}: span id {id}, expected sequential {expected_id}"
            ));
        }
        expected_id = id + 1;
        match extract_str(line, "name") {
            None => violations.push(format!("line {n}: span {id} missing name")),
            Some(name) if name.is_empty() => {
                violations.push(format!("line {n}: span {id} has an empty name"));
            }
            Some(_) => {}
        }
        let Some(start) = extract_u64(line, "start_s") else {
            violations.push(format!("line {n}: span {id} missing start_s"));
            continue;
        };
        if let Some(parent) = extract_u64(line, "parent") {
            if parent == 0 || parent >= id {
                violations.push(format!(
                    "line {n}: span {id} parent {parent} does not refer to an earlier span"
                ));
            }
        }
        if let Some(end) = extract_u64(line, "end_s") {
            if end < start {
                violations.push(format!(
                    "line {n}: span {id} ends at {end}s before it starts at {start}s"
                ));
            }
        }
    }
    violations
}

/// `true` for a name the exporter could have emitted
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Metric families declared by `# TYPE` lines, with the per-family
/// bookkeeping histogram validation needs.
struct Family {
    name: String,
    kind: String,
    /// Last cumulative bucket value seen (histograms).
    last_bucket: Option<f64>,
    /// The `+Inf` bucket's value, once seen (histograms).
    inf_bucket: Option<f64>,
}

/// Validates an OpenMetrics text document (a `/metrics` scrape body or
/// a `metrics.om` export). Returns one human-readable violation per
/// broken line/rule; empty means the document is well-formed.
pub fn validate_openmetrics(text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let mut families: Vec<Family> = Vec::new();
    let mut saw_eof = false;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if saw_eof {
            violations.push(format!("line {n}: content after the # EOF terminator"));
            break;
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut parts = decl.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                violations.push(format!("line {n}: malformed # TYPE declaration"));
                continue;
            };
            if !valid_metric_name(name) {
                violations.push(format!("line {n}: invalid metric name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                violations.push(format!("line {n}: unknown metric type {kind:?}"));
            }
            if families.iter().any(|f| f.name == name) {
                violations.push(format!("line {n}: duplicate # TYPE for {name}"));
            }
            families.push(Family {
                name: name.to_owned(),
                kind: kind.to_owned(),
                last_bucket: None,
                inf_bucket: None,
            });
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            // HELP/UNIT lines and blank separators are legal filler.
            continue;
        }
        // A sample line: `name[{labels}] value`.
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let (name, rest) = line.split_at(name_end);
        if !valid_metric_name(name) {
            violations.push(format!("line {n}: invalid sample name {name:?}"));
            continue;
        }
        let value_str = rest
            .rsplit_once(' ')
            .map(|(_, v)| v)
            .unwrap_or_else(|| rest.trim_start());
        let value = match value_str {
            "+Inf" => Some(f64::INFINITY),
            "-Inf" => Some(f64::NEG_INFINITY),
            "NaN" => Some(f64::NAN),
            v => v.parse::<f64>().ok(),
        };
        let Some(value) = value else {
            violations.push(format!("line {n}: unparseable sample value {value_str:?}"));
            continue;
        };
        // Resolve the sample to its declared family. Suffix resolution
        // prefers the longest declared family name, so a histogram
        // named `x` and a gauge named `x_sum` cannot shadow each other.
        let family = families.iter_mut().rev().find(|f| match f.kind.as_str() {
            "counter" => name == format!("{}_total", f.name),
            "gauge" => name == f.name,
            "histogram" => {
                name == format!("{}_bucket", f.name)
                    || name == format!("{}_sum", f.name)
                    || name == format!("{}_count", f.name)
            }
            _ => false,
        });
        let Some(family) = family else {
            violations.push(format!(
                "line {n}: sample {name} has no preceding # TYPE declaration"
            ));
            continue;
        };
        if family.kind == "histogram" && name.ends_with("_bucket") {
            if let Some(prev) = family.last_bucket {
                if value < prev {
                    violations.push(format!(
                        "line {n}: {name} buckets are not cumulative ({value} < {prev})"
                    ));
                }
            }
            family.last_bucket = Some(value);
            if rest.contains("le=\"+Inf\"") {
                family.inf_bucket = Some(value);
            }
        }
        if family.kind == "histogram" && name.ends_with("_count") {
            match family.inf_bucket {
                None => violations.push(format!(
                    "line {n}: {name} appears before a +Inf bucket for {}",
                    family.name
                )),
                Some(inf) if inf != value => violations.push(format!(
                    "line {n}: {name} {value} does not equal the +Inf bucket {inf}"
                )),
                Some(_) => {}
            }
        }
    }
    if !saw_eof {
        violations.push("missing the final # EOF terminator".to_owned());
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_well_formed_trace_passes() {
        let doc = "{\"span\":1,\"name\":\"fault\",\"start_s\":10}\n\
                   {\"span\":2,\"name\":\"degraded\",\"start_s\":40,\"parent\":1,\"end_s\":90}\n\
                   {\"span\":3,\"name\":\"fallback.action\",\"start_s\":40,\"parent\":2,\"end_s\":40}\n";
        assert!(validate_trace(doc).is_empty());
    }

    #[test]
    fn missing_fields_are_reported_per_line() {
        let doc = "{\"span\":1,\"start_s\":0}\n{\"name\":\"x\",\"start_s\":0}\n";
        let v = validate_trace(doc);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("missing name"));
        assert!(v[1].contains("missing span id"));
    }

    #[test]
    fn forward_and_self_parents_are_rejected() {
        let doc = "{\"span\":1,\"name\":\"a\",\"start_s\":0,\"parent\":1}\n\
                   {\"span\":2,\"name\":\"b\",\"start_s\":0,\"parent\":9}\n";
        let v = validate_trace(doc);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|m| m.contains("earlier span")));
    }

    #[test]
    fn non_sequential_ids_and_inverted_times_are_rejected() {
        let doc = "{\"span\":1,\"name\":\"a\",\"start_s\":50,\"end_s\":20}\n\
                   {\"span\":5,\"name\":\"b\",\"start_s\":0}\n";
        let v = validate_trace(doc);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("before it starts"));
        assert!(v[1].contains("expected sequential 2"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert!(validate_trace("").is_empty());
    }

    #[test]
    fn a_well_formed_openmetrics_document_passes() {
        let doc = "# TYPE sim_steps counter\n\
                   sim_steps_total 2880\n\
                   # TYPE exec_pool_threads gauge\n\
                   exec_pool_threads 4\n\
                   # TYPE lat_ns histogram\n\
                   lat_ns_bucket{le=\"0\"} 0\n\
                   lat_ns_bucket{le=\"1\"} 3\n\
                   lat_ns_bucket{le=\"+Inf\"} 5\n\
                   lat_ns_sum 42\n\
                   lat_ns_count 5\n\
                   # EOF\n";
        assert_eq!(validate_openmetrics(doc), Vec::<String>::new());
    }

    #[test]
    fn the_live_exporter_output_passes() {
        // The real thing, not a transcript: whatever the registry
        // exporter emits must satisfy the validator.
        let obs = baat_obs::Obs::enabled();
        obs.counter("sim.steps").add(7);
        obs.gauge("exec.pool.threads").set(4.0);
        let h = obs.histogram("exec.shard.imbalance_x1000.hist");
        h.observe(1000);
        h.observe(2500);
        assert_eq!(
            validate_openmetrics(&obs.metrics_openmetrics()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn missing_eof_and_trailing_content_are_rejected() {
        let v = validate_openmetrics("# TYPE x gauge\nx 1\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("# EOF"));
        let v = validate_openmetrics("# EOF\nx 1\n");
        assert!(v.iter().any(|m| m.contains("after the # EOF")), "{v:?}");
    }

    #[test]
    fn undeclared_samples_and_bad_counter_suffixes_are_rejected() {
        let v = validate_openmetrics("orphan_total 1\n# EOF\n");
        assert!(v[0].contains("no preceding # TYPE"), "{v:?}");
        // A counter sample without the _total suffix does not resolve.
        let v = validate_openmetrics("# TYPE sim_steps counter\nsim_steps 1\n# EOF\n");
        assert!(v[0].contains("no preceding # TYPE"), "{v:?}");
    }

    #[test]
    fn histogram_violations_are_reported() {
        let shrinking = "# TYPE h histogram\n\
                         h_bucket{le=\"0\"} 5\n\
                         h_bucket{le=\"+Inf\"} 3\n\
                         h_count 3\n\
                         # EOF\n";
        let v = validate_openmetrics(shrinking);
        assert!(v.iter().any(|m| m.contains("not cumulative")), "{v:?}");
        let mismatched = "# TYPE h histogram\n\
                          h_bucket{le=\"+Inf\"} 5\n\
                          h_count 4\n\
                          # EOF\n";
        let v = validate_openmetrics(mismatched);
        assert!(
            v.iter().any(|m| m.contains("does not equal the +Inf")),
            "{v:?}"
        );
    }

    #[test]
    fn malformed_type_lines_and_values_are_rejected() {
        let v = validate_openmetrics("# TYPE only_name\n# EOF\n");
        assert!(v[0].contains("malformed # TYPE"), "{v:?}");
        let v = validate_openmetrics("# TYPE x widget\n# EOF\n");
        assert!(v[0].contains("unknown metric type"), "{v:?}");
        let v = validate_openmetrics("# TYPE x gauge\n# TYPE x gauge\n# EOF\n");
        assert!(v[0].contains("duplicate # TYPE"), "{v:?}");
        let v = validate_openmetrics("# TYPE x gauge\nx pickles\n# EOF\n");
        assert!(v[0].contains("unparseable sample value"), "{v:?}");
    }
}
