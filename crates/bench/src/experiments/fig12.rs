//! Figure 12: system runtime profiling under different weather.
//!
//! The paper profiles one e-Buff day per weather class and reports:
//! battery usage varies across the six packs (12a), batteries yield less
//! Ah-throughput on sunny days (12b–d: high CF and PC on sunny days,
//! high NAT / low CF / low PC on cloudy/rainy), and the aging metric
//! trajectories (12e–k).

use baat_core::Scheme;
use baat_sim::Simulation;
use baat_solar::Weather;

use crate::runner::{day_config, run_scheme};

/// One hourly snapshot of the worst battery node's metrics (the paper's
/// Fig 12e–k trajectories).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourlySample {
    /// Hour of day (8–18 inside the operating window).
    pub hour: u32,
    /// Worst-node NAT so far today.
    pub nat: f64,
    /// Worst-node charge factor so far today.
    pub cf: Option<f64>,
    /// Worst-node Eq-4 partial cycling so far today.
    pub pc: f64,
    /// Worst-node SoC at the snapshot.
    pub soc: f64,
}

/// Drives one e-Buff day stepwise, snapshotting the worst node hourly,
/// and finds the hour at which the accumulated NAT crosses
/// `nat_threshold` — the paper's "slowdown time varies in different
/// weathers" marker from Fig 12e–g.
pub fn hourly_trajectory(
    weather: Weather,
    seed: u64,
    nat_threshold: f64,
) -> (Vec<HourlySample>, Option<u32>) {
    let config = day_config(weather, seed);
    let dt = config.dt;
    let steps_per_hour = 3600 / dt.as_secs();
    let total_steps = 86_400 / dt.as_secs();
    let mut sim = Simulation::new(config).expect("config validated");
    let mut policy = Scheme::EBuff.build();
    let mut samples = Vec::new();
    let mut crossed = None;
    for step in 0..total_steps {
        sim.step(&mut policy).expect("engine invariants hold");
        if step % steps_per_hour == 0 {
            let hour = (step / steps_per_hour) as u32;
            if (8..=18).contains(&hour) {
                let view = sim.build_view().expect("engine invariants hold");
                let worst = view
                    .nodes
                    .iter()
                    .max_by(|a, b| a.window_metrics.nat.total_cmp(&b.window_metrics.nat))
                    .expect("nodes exist");
                if crossed.is_none() && worst.window_metrics.nat >= nat_threshold {
                    crossed = Some(hour);
                }
                samples.push(HourlySample {
                    hour,
                    nat: worst.window_metrics.nat,
                    cf: worst.window_metrics.cf,
                    pc: worst.window_metrics.pc.weighted_value(),
                    soc: worst.soc.value(),
                });
            }
        }
    }
    (samples, crossed)
}

/// Profiling outcome for one weather class.
#[derive(Debug, Clone, PartialEq)]
pub struct WeatherProfile {
    /// The weather class.
    pub weather: Weather,
    /// Per-node discharged Ah over the day (Fig 12a's usage variation).
    pub node_ah: Vec<f64>,
    /// Worst-node NAT at end of day (Eq 1).
    pub nat: f64,
    /// Worst-node charge factor (Eq 2), if the battery discharged.
    pub cf: Option<f64>,
    /// Worst-node Eq-4 partial-cycling value (higher = more low-SoC
    /// cycling).
    pub pc_weighted: f64,
    /// Worst-node share of discharge done at high SoC (the paper's
    /// evaluation-section reading of "PC value").
    pub pc_high_soc_share: f64,
    /// Worst-node deep-discharge time fraction (Eq 5).
    pub ddt: f64,
}

/// The Fig 12 profile across the three weather classes.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeProfile {
    /// Per-weather profiles, sunny first.
    pub profiles: Vec<WeatherProfile>,
}

impl RuntimeProfile {
    /// Profile for one weather class.
    pub fn for_weather(&self, weather: Weather) -> &WeatherProfile {
        self.profiles
            .iter()
            .find(|p| p.weather == weather)
            .expect("all weather classes profiled")
    }

    /// Relative spread of per-node usage (max/min Ah) on the cloudiest
    /// day — Fig 12a's "usage frequency … varies significantly".
    pub fn usage_spread(&self) -> f64 {
        let p = self.for_weather(Weather::Rainy);
        let max = p.node_ah.iter().cloned().fold(0.0, f64::max);
        let min = p.node_ah.iter().cloned().fold(f64::INFINITY, f64::min);
        if min > 0.0 {
            max / min
        } else {
            f64::INFINITY
        }
    }
}

/// Runs the per-weather profiling under e-Buff (the paper profiles its
/// unmanaged prototype).
pub fn run(seed: u64) -> RuntimeProfile {
    let profiles = Weather::ALL
        .iter()
        .map(|&weather| {
            let report = run_scheme(Scheme::EBuff, day_config(weather, seed), None);
            // NAT × CAP_nom (the default 70 Ah node rates 35 000 Ah
            // life-long) recovers absolute discharged Ah.
            let node_ah: Vec<f64> = report
                .nodes
                .iter()
                .map(|n| n.lifetime_metrics.nat * 35_000.0)
                .collect();
            let worst = report.worst_node().expect("nodes exist");
            WeatherProfile {
                weather,
                node_ah,
                nat: worst.lifetime_metrics.nat,
                cf: worst.lifetime_metrics.cf,
                pc_weighted: worst.lifetime_metrics.pc.weighted_value(),
                pc_high_soc_share: worst.lifetime_metrics.pc.high_soc_share().value(),
                ddt: worst.lifetime_metrics.ddt.value(),
            }
        })
        .collect();
    RuntimeProfile { profiles }
}

/// Renders the Fig 12e–k hourly trajectories plus the slowdown markers.
pub fn render_trajectories(seed: u64, nat_threshold: f64) -> String {
    let mut out = String::new();
    for weather in Weather::ALL {
        let (samples, crossed) = hourly_trajectory(weather, seed, nat_threshold);
        out.push_str(&format!("\n{weather} (worst node, hourly):\n\n"));
        let rows: Vec<Vec<String>> = samples
            .iter()
            .map(|s| {
                vec![
                    format!("{:02}:00", s.hour),
                    crate::table::f(s.nat * 1000.0),
                    s.cf.map_or("—".into(), crate::table::f),
                    crate::table::f(s.pc),
                    crate::table::pct(s.soc),
                ]
            })
            .collect();
        out.push_str(&crate::table::markdown(
            &["hour", "NAT ×1000", "CF", "PC", "SoC"],
            &rows,
        ));
        out.push_str(&match crossed {
            Some(h) => format!(
                "\nNAT threshold {nat_threshold} crossed at {h:02}:00 — slowdown would engage here\n"
            ),
            None => {
                format!("\nNAT threshold {nat_threshold} never crossed — no slowdown needed\n")
            }
        });
    }
    out
}

/// Renders the per-weather metric table.
pub fn render(p: &RuntimeProfile) -> String {
    let rows: Vec<Vec<String>> = p
        .profiles
        .iter()
        .map(|w| {
            vec![
                w.weather.to_string(),
                crate::table::f(w.nat * 1000.0),
                w.cf.map_or("—".into(), crate::table::f),
                crate::table::f(w.pc_weighted),
                crate::table::pct(w.pc_high_soc_share),
                crate::table::pct(w.ddt),
            ]
        })
        .collect();
    let mut out = crate::table::markdown(
        &[
            "weather",
            "NAT ×1000",
            "CF",
            "PC (Eq 4)",
            "high-SoC share",
            "DDT",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\nrainy-day per-node usage spread (max/min Ah): {:.2}×\n",
        p.usage_spread()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sunny_days_stress_batteries_least() {
        let p = run(7);
        let sunny = p.for_weather(Weather::Sunny);
        let cloudy = p.for_weather(Weather::Cloudy);
        let rainy = p.for_weather(Weather::Rainy);
        // Fig 12b: less Ah-throughput on sunny days.
        assert!(sunny.nat < cloudy.nat, "sunny NAT must be lowest");
        assert!(sunny.nat < rainy.nat);
        // Fig 12d reading: sunny cycling happens at higher SoC.
        assert!(sunny.pc_weighted <= cloudy.pc_weighted + 1e-9);
        assert!(sunny.ddt <= rainy.ddt);
    }

    #[test]
    fn slowdown_marker_comes_earlier_on_darker_days() {
        // The paper's Fig 12e–g: the Ah-throughput threshold is reached
        // sooner when solar is scarce (or not at all on a sunny day).
        let threshold = 0.0015;
        let (_, sunny) = hourly_trajectory(Weather::Sunny, 7, threshold);
        let (_, cloudy) = hourly_trajectory(Weather::Cloudy, 7, threshold);
        let crossing = |c: Option<u32>| c.unwrap_or(24);
        assert!(
            crossing(cloudy) <= crossing(sunny),
            "cloudy {cloudy:?} should cross no later than sunny {sunny:?}"
        );
    }

    #[test]
    fn trajectories_are_monotone_in_nat() {
        let (samples, _) = hourly_trajectory(Weather::Cloudy, 7, 1.0);
        assert!(!samples.is_empty());
        for pair in samples.windows(2) {
            assert!(pair[1].nat >= pair[0].nat - 1e-12, "NAT accumulates");
        }
    }

    #[test]
    fn usage_varies_across_packs() {
        let p = run(7);
        assert!(p.usage_spread() > 1.01, "spread {:.3}", p.usage_spread());
    }
}
