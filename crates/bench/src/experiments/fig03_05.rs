//! Figures 3–5: six months of measured battery degradation.
//!
//! The paper instruments one battery over six months of cyclic use and
//! reports: fully-charged terminal voltage −9 % (Fig 3) with the drop
//! *accelerating* (0.1 V/month early, 0.3 V/month late), per-cycle stored
//! energy −14 % (Fig 4), and round-trip efficiency −8 % (Fig 5). This
//! experiment reproduces the measurement protocol on the battery model:
//! one aggressive charge/discharge cycle per day, with monthly probes.

use baat_battery::{AnyBattery, Battery, BatteryModel, BatteryOp, BatterySpec, Chemistry};
use baat_units::{Celsius, SimDuration, SimInstant, Volts, Watts};

/// One monthly probe of the instrumented battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonthlyProbe {
    /// Month index (0 = new battery).
    pub month: usize,
    /// Fully-charged terminal voltage under the standard probe load.
    pub full_charge_voltage: Volts,
    /// Energy delivered by one full probe cycle (Wh).
    pub cycle_energy_wh: f64,
    /// Round-trip efficiency of the probe cycle.
    pub round_trip_efficiency: f64,
    /// Accumulated damage.
    pub damage: f64,
}

/// Result of the six-month aging measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingTrajectory {
    /// Monthly probes, starting with the new battery.
    pub probes: Vec<MonthlyProbe>,
}

impl AgingTrajectory {
    /// Relative fully-charged voltage drop from month 0 to the end.
    pub fn voltage_drop(&self) -> f64 {
        let first = self.probes.first().expect("probes non-empty");
        let last = self.probes.last().expect("probes non-empty");
        1.0 - last.full_charge_voltage.as_f64() / first.full_charge_voltage.as_f64()
    }

    /// Relative per-cycle energy drop (Fig 4).
    pub fn capacity_drop(&self) -> f64 {
        let first = self.probes.first().expect("probes non-empty");
        let last = self.probes.last().expect("probes non-empty");
        1.0 - last.cycle_energy_wh / first.cycle_energy_wh
    }

    /// Absolute round-trip efficiency drop (Fig 5).
    pub fn efficiency_drop(&self) -> f64 {
        let first = self.probes.first().expect("probes non-empty");
        let last = self.probes.last().expect("probes non-empty");
        first.round_trip_efficiency - last.round_trip_efficiency
    }

    /// Voltage loss rate (V/month) over the first and second halves —
    /// the paper observes the rate roughly tripling as the battery ages.
    pub fn voltage_rates(&self) -> (f64, f64) {
        let n = self.probes.len();
        let mid = n / 2;
        let v = |i: usize| self.probes[i].full_charge_voltage.as_f64();
        let early = (v(0) - v(mid)) / mid as f64;
        let late = (v(mid) - v(n - 1)) / (n - 1 - mid) as f64;
        (early, late)
    }
}

/// Probe-cycle parameters: the standard load used for monthly
/// measurements.
const PROBE_LOAD: Watts = Watts::new(150.0);
const AMBIENT: Celsius = Celsius::new(27.0);

/// Runs one full probe cycle (discharge to cutoff, recharge to full) and
/// returns (terminal voltage at full under load, delivered Wh, round-trip
/// efficiency).
fn probe_cycle<B: BatteryModel>(battery: &mut B, now: &mut SimInstant) -> (Volts, f64, f64) {
    let dt = SimDuration::from_minutes(2);
    // Measure full-charge terminal voltage under the probe load.
    let first = battery.step(BatteryOp::Discharge(PROBE_LOAD), AMBIENT, *now, dt);
    let full_voltage = first.terminal_voltage;
    let mut energy_out = (first.delivered * dt).as_f64();
    let mut energy_in = 0.0;
    // Discharge until the battery refuses.
    for _ in 0..1000 {
        *now += dt;
        let r = battery.step(BatteryOp::Discharge(PROBE_LOAD), AMBIENT, *now, dt);
        energy_out += (r.delivered * dt).as_f64();
        if r.cutoff || r.delivered.as_f64() <= 0.0 {
            break;
        }
    }
    // Recharge to full.
    for _ in 0..3000 {
        *now += dt;
        let r = battery.step(BatteryOp::Charge(Watts::new(120.0)), AMBIENT, *now, dt);
        energy_in += (r.accepted * dt).as_f64();
        if r.accepted.as_f64() <= 0.1 {
            break;
        }
    }
    let eff = if energy_in > 0.0 {
        energy_out / energy_in
    } else {
        0.0
    };
    (full_voltage, energy_out, eff)
}

/// One day of the prototype's aggressive cyclic usage between probes:
/// ~2.8 h of load shaving at 110 W (≈75 % DoD on a fresh unit, deeper as
/// capacity fades — which is what makes the degradation *accelerate*),
/// followed by a full recharge and idle rest.
fn daily_cycle<B: BatteryModel>(battery: &mut B, now: &mut SimInstant) {
    let dt = SimDuration::from_minutes(5);
    for _ in 0..34 {
        battery.step(BatteryOp::Discharge(Watts::new(110.0)), AMBIENT, *now, dt);
        *now += dt;
    }
    // Evening/overnight recharge to full.
    for _ in 0..96 {
        battery.step(BatteryOp::Charge(Watts::new(100.0)), AMBIENT, *now, dt);
        *now += dt;
    }
    // Rest of the day idle.
    for _ in 0..158 {
        battery.step(BatteryOp::Idle, AMBIENT, *now, dt);
        *now += dt;
    }
}

/// Runs the measurement protocol on any battery model.
fn measure<B: BatteryModel>(
    battery: &mut B,
    months: usize,
    days_per_month: usize,
) -> AgingTrajectory {
    let mut now = SimInstant::START;
    let mut probes = Vec::with_capacity(months + 1);
    let (v0, e0, eff0) = probe_cycle(battery, &mut now);
    probes.push(MonthlyProbe {
        month: 0,
        full_charge_voltage: v0,
        cycle_energy_wh: e0,
        round_trip_efficiency: eff0,
        damage: battery.total_damage(),
    });
    for month in 1..=months {
        for _ in 0..days_per_month {
            daily_cycle(battery, &mut now);
        }
        let (v, e, eff) = probe_cycle(battery, &mut now);
        probes.push(MonthlyProbe {
            month,
            full_charge_voltage: v,
            cycle_energy_wh: e,
            round_trip_efficiency: eff,
            damage: battery.total_damage(),
        });
    }
    AgingTrajectory { probes }
}

/// The prototype unit spec for a chemistry.
fn spec_for(chemistry: Chemistry) -> BatterySpec {
    match chemistry {
        Chemistry::LeadAcid => BatterySpec::prototype(),
        Chemistry::LiIon => BatterySpec::li_ion_prototype(),
    }
}

/// Runs the six-month (or shorter) aging measurement on the paper's
/// lead-acid prototype unit.
pub fn run(months: usize, days_per_month: usize) -> AgingTrajectory {
    measure(
        &mut Battery::new(BatterySpec::prototype()),
        months,
        days_per_month,
    )
}

/// [`run`] on an arbitrary chemistry's prototype unit — the measurement
/// protocol is identical, so trajectories are directly comparable.
pub fn run_chemistry(
    chemistry: Chemistry,
    months: usize,
    days_per_month: usize,
) -> AgingTrajectory {
    measure(
        &mut AnyBattery::new(spec_for(chemistry)),
        months,
        days_per_month,
    )
}

/// The paper's configuration: six months at thirty days each.
pub fn run_paper() -> AgingTrajectory {
    run(6, 30)
}

/// Renders the monthly table plus the headline drops.
pub fn render(t: &AgingTrajectory) -> String {
    let rows: Vec<Vec<String>> = t
        .probes
        .iter()
        .map(|p| {
            vec![
                p.month.to_string(),
                format!("{:.3}", p.full_charge_voltage.as_f64()),
                format!("{:.1}", p.cycle_energy_wh),
                format!("{:.3}", p.round_trip_efficiency),
                format!("{:.3}", p.damage),
            ]
        })
        .collect();
    let mut out = crate::table::markdown(
        &[
            "month",
            "full-charge V (loaded)",
            "cycle Wh",
            "round-trip eff",
            "damage",
        ],
        &rows,
    );
    let (early, late) = t.voltage_rates();
    out.push_str(&format!(
        "\nvoltage drop {} (paper ~9%), capacity drop {} (paper ~14%), \
         efficiency drop {:.1} pts (paper ~8 pts), V-rate early {early:.3} → late {late:.3} V/month\n",
        crate::table::pct(t.voltage_drop()),
        crate::table::pct(t.capacity_drop()),
        t.efficiency_drop() * 100.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_degrades_monotonically() {
        let t = run(2, 10);
        assert_eq!(t.probes.len(), 3);
        assert!(t.voltage_drop() > 0.0);
        assert!(t.capacity_drop() > 0.0);
        assert!(t.efficiency_drop() > 0.0);
        for pair in t.probes.windows(2) {
            assert!(pair[1].damage > pair[0].damage);
            assert!(pair[1].cycle_energy_wh <= pair[0].cycle_energy_wh);
        }
    }

    #[test]
    fn run_chemistry_reproduces_the_lead_acid_run_exactly() {
        // The generic protocol through AnyBattery's lead-acid arm is the
        // same code as the direct Battery run — trajectories must match
        // bit-for-bit.
        assert_eq!(run_chemistry(Chemistry::LeadAcid, 1, 5), run(1, 5));
    }

    #[test]
    fn li_ion_survives_the_protocol_with_less_fade() {
        let pb = run(2, 10);
        let li = run_chemistry(Chemistry::LiIon, 2, 10);
        assert_eq!(li.probes.len(), 3);
        let last = li.probes.last().unwrap();
        assert!(last.damage > 0.0, "li-ion must actually age");
        assert!(
            last.damage < pb.probes.last().unwrap().damage,
            "LFP cycling at this depth must out-live lead-acid: {} vs {}",
            last.damage,
            pb.probes.last().unwrap().damage
        );
        assert!(
            li.capacity_drop() < pb.capacity_drop(),
            "li-ion capacity fade {} should undercut lead-acid {}",
            li.capacity_drop(),
            pb.capacity_drop()
        );
    }

    #[test]
    fn probe_cycle_delivers_energy() {
        let mut b = Battery::new(BatterySpec::prototype());
        let mut now = SimInstant::START;
        let (v, e, eff) = probe_cycle(&mut b, &mut now);
        assert!(v.as_f64() > 11.0 && v.as_f64() < 13.0);
        assert!(
            e > 200.0,
            "a 420 Wh battery should deliver >200 Wh, got {e}"
        );
        assert!((0.5..1.0).contains(&eff), "round trip eff {eff}");
    }
}
