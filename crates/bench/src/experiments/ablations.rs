//! Ablation studies for the reproduction's own design choices — not
//! paper figures, but the checks DESIGN.md commits to: battery topology
//! (paper Fig 7's two architectures), simulation timestep, manufacturing
//! variation, and control-interval sensitivity.

use baat_battery::VariationParams;
use baat_core::Scheme;
use baat_sim::{run_simulation, BatteryTopology, SimConfig};
use baat_solar::Weather;
use baat_units::{Fraction, SimDuration};

use crate::runner::{parallel_map, runner_threads, EXPERIMENT_DT};

fn base_builder(seed: u64) -> baat_sim::SimConfigBuilder {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![Weather::Cloudy, Weather::Rainy])
        .dt(EXPERIMENT_DT)
        .sample_every(40)
        .seed(seed);
    b
}

/// One topology comparison row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyRow {
    /// Number of battery pools (6 = per-server).
    pub pools: usize,
    /// The scheme measured.
    pub scheme: Scheme,
    /// Useful work (core-hours).
    pub work: f64,
    /// Worst-bank damage.
    pub worst_damage: f64,
    /// Worst-node critical (<15 % SoC) seconds.
    pub critical_secs: u64,
}

/// Fig 7 architecture ablation: per-server banks vs shared per-rack
/// pools, under e-Buff and BAAT. The six cells run in parallel.
pub fn topology(seed: u64) -> Vec<TopologyRow> {
    let specs: Vec<(usize, Scheme)> = [6usize, 2, 1]
        .iter()
        .flat_map(|&pools| {
            [Scheme::EBuff, Scheme::Baat]
                .into_iter()
                .map(move |scheme| (pools, scheme))
        })
        .collect();
    parallel_map(specs, runner_threads(), |(pools, scheme)| {
        let topology = if pools == 6 {
            BatteryTopology::PerServer
        } else {
            BatteryTopology::SharedPool { pools }
        };
        let mut b = base_builder(seed);
        b.topology(topology);
        let report = run_simulation(b.build().expect("config valid"), &mut scheme.build())
            .expect("simulation runs");
        TopologyRow {
            pools,
            scheme,
            work: report.total_work,
            worst_damage: report.worst_node().expect("nodes exist").damage,
            critical_secs: report
                .nodes
                .iter()
                .map(|n| n.soc_histogram[0].as_secs())
                .max()
                .unwrap_or(0),
        }
    })
}

/// One timestep sensitivity row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimestepRow {
    /// Timestep seconds.
    pub dt_secs: u64,
    /// Useful work (core-hours).
    pub work: f64,
    /// Mean damage.
    pub mean_damage: f64,
}

/// Timestep-insensitivity check: results should drift only mildly across
/// dt = 10–120 s (the aging integrals are per-hour linear).
pub fn timestep(seed: u64) -> Vec<TimestepRow> {
    [10u64, 30, 60, 120]
        .iter()
        .map(|&dt| {
            let mut b = SimConfig::builder();
            b.weather_plan(vec![Weather::Cloudy])
                .dt(SimDuration::from_secs(dt))
                .control_interval(SimDuration::from_secs(dt.max(60)))
                .sample_every(40)
                .seed(seed);
            let report =
                run_simulation(b.build().expect("config valid"), &mut Scheme::Baat.build())
                    .expect("simulation runs");
            TimestepRow {
                dt_secs: dt,
                work: report.total_work,
                mean_damage: report.mean_damage(),
            }
        })
        .collect()
}

/// One manufacturing-variation row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationRow {
    /// Aging-rate spread half-width.
    pub rate_spread: f64,
    /// Damage spread (worst / best) under e-Buff.
    pub ebuff_spread: f64,
    /// Damage spread under BAAT (hiding should compress it).
    pub baat_spread: f64,
}

/// Manufacturing-variation ablation: §IV.B.1's aging variation grows with
/// unit spread; BAAT's hiding compresses the worst/best damage ratio. The
/// (spread × scheme) cells run in parallel.
pub fn variation(seed: u64) -> Vec<VariationRow> {
    let spreads = [0.0f64, 0.10, 0.25];
    let specs: Vec<(f64, Scheme)> = spreads
        .iter()
        .flat_map(|&spread| {
            [Scheme::EBuff, Scheme::Baat]
                .into_iter()
                .map(move |scheme| (spread, scheme))
        })
        .collect();
    let ratios = parallel_map(specs, runner_threads(), |(spread, scheme)| {
        let mut b = base_builder(seed);
        b.variation(
            VariationParams::new(
                Fraction::saturating((spread / 3.0).min(0.12)),
                Fraction::saturating(spread.min(0.3)),
                Fraction::saturating(spread),
            )
            .expect("ablation spreads stay below 0.5"),
        );
        let report = run_simulation(b.build().expect("config valid"), &mut scheme.build())
            .expect("simulation runs");
        let worst = report.worst_node().expect("nodes exist").damage;
        let best = report
            .nodes
            .iter()
            .map(|n| n.damage)
            .fold(f64::INFINITY, f64::min);
        worst / best.max(1e-12)
    });
    spreads
        .iter()
        .zip(ratios.chunks(2))
        .map(|(&spread, chunk)| VariationRow {
            rate_spread: spread,
            ebuff_spread: chunk[0],
            baat_spread: chunk[1],
        })
        .collect()
}

/// One control-cadence row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CadenceRow {
    /// Control interval seconds.
    pub interval_secs: u64,
    /// Useful work under BAAT.
    pub work: f64,
    /// Worst damage under BAAT.
    pub worst_damage: f64,
}

/// Control-interval sensitivity: how slow can the BAAT controller tick
/// before it stops protecting batteries?
pub fn cadence(seed: u64) -> Vec<CadenceRow> {
    [60u64, 300, 900]
        .iter()
        .map(|&interval| {
            let mut b = base_builder(seed);
            b.control_interval(SimDuration::from_secs(interval));
            let report =
                run_simulation(b.build().expect("config valid"), &mut Scheme::Baat.build())
                    .expect("simulation runs");
            CadenceRow {
                interval_secs: interval,
                work: report.total_work,
                worst_damage: report.worst_node().expect("nodes exist").damage,
            }
        })
        .collect()
}

/// Renders all four ablations.
pub fn render(seed: u64) -> String {
    let mut out = String::from("Topology (paper Fig 7 architectures):\n\n");
    let rows: Vec<Vec<String>> = topology(seed)
        .iter()
        .map(|r| {
            vec![
                if r.pools == 6 {
                    "per-server".into()
                } else {
                    format!("{} shared pool(s)", r.pools)
                },
                r.scheme.to_string(),
                format!("{:.0}", r.work),
                crate::table::f(r.worst_damage * 1000.0),
                r.critical_secs.to_string(),
            ]
        })
        .collect();
    out.push_str(&crate::table::markdown(
        &[
            "topology",
            "scheme",
            "work c-h",
            "worst dmg ×1000",
            "critical s",
        ],
        &rows,
    ));

    out.push_str("\nTimestep sensitivity (BAAT, one cloudy day):\n\n");
    let rows: Vec<Vec<String>> = timestep(seed)
        .iter()
        .map(|r| {
            vec![
                format!("{} s", r.dt_secs),
                format!("{:.0}", r.work),
                crate::table::f(r.mean_damage * 1000.0),
            ]
        })
        .collect();
    out.push_str(&crate::table::markdown(
        &["dt", "work c-h", "mean dmg ×1000"],
        &rows,
    ));

    out.push_str("\nManufacturing variation (worst/best damage ratio):\n\n");
    let rows: Vec<Vec<String>> = variation(seed)
        .iter()
        .map(|r| {
            vec![
                format!("±{:.0}%", r.rate_spread * 100.0),
                format!("{:.2}×", r.ebuff_spread),
                format!("{:.2}×", r.baat_spread),
            ]
        })
        .collect();
    out.push_str(&crate::table::markdown(
        &["aging-rate spread", "e-Buff spread", "BAAT spread"],
        &rows,
    ));

    out.push_str("\nControl cadence (BAAT):\n\n");
    let rows: Vec<Vec<String>> = cadence(seed)
        .iter()
        .map(|r| {
            vec![
                format!("{} s", r.interval_secs),
                format!("{:.0}", r.work),
                crate::table::f(r.worst_damage * 1000.0),
            ]
        })
        .collect();
    out.push_str(&crate::table::markdown(
        &["interval", "work c-h", "worst dmg ×1000"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestep_results_are_stable() {
        let rows = timestep(61);
        let w0 = rows[0].work;
        for r in &rows {
            assert!(
                (r.work - w0).abs() / w0 < 0.10,
                "work at dt={} drifted: {} vs {}",
                r.dt_secs,
                r.work,
                w0
            );
        }
    }

    #[test]
    fn per_server_and_shared_pool_both_work() {
        let rows = topology(61);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.work > 0.0, "{:?} did no work", r);
        }
    }

    #[test]
    fn variation_widens_ebuff_damage_spread() {
        let rows = variation(61);
        assert!(
            rows[2].ebuff_spread > rows[0].ebuff_spread,
            "spread {} should exceed none {}",
            rows[2].ebuff_spread,
            rows[0].ebuff_spread
        );
    }

    #[test]
    fn slower_control_weakens_protection() {
        let rows = cadence(61);
        // At a 15-minute tick the controller reacts late: damage must not
        // be *better* than the 1-minute tick.
        assert!(rows[2].worst_damage >= rows[0].worst_damage * 0.95);
    }
}
