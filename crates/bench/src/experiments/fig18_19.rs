//! Figures 18 and 19: low-SoC duration and the SoC distribution.
//!
//! Fig 18: e-Buff leaves batteries in low-SoC states for long stretches,
//! risking single points of failure; BAAT cuts the worst-node low-SoC
//! duration (paper: availability +47 %). Fig 19: over a long run, e-Buff
//! piles probability mass into the low SoC bins while BAAT shifts it
//! toward 90–100 %.

use baat_core::{
    availability_improvement, critical_improvement, soc_distribution, LowSocSummary, Scheme,
};
use baat_sim::SimReport;
use baat_solar::Weather;

use crate::runner::{plan_config, run_scenarios_forked, Scenario};

/// Low-SoC and distribution results for one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeAvailability {
    /// The scheme.
    pub scheme: Scheme,
    /// Low-SoC exposure summary (Fig 18).
    pub low_soc: LowSocSummary,
    /// Normalized 7-bin SoC distribution (Fig 19).
    pub distribution: [f64; 7],
}

/// The combined Fig 18/19 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityStudy {
    /// Per-scheme results, Table-4 order.
    pub schemes: Vec<SchemeAvailability>,
    /// Availability improvement of BAAT over e-Buff by worst-node
    /// low-SoC duration (<40 %).
    pub baat_improvement: Option<f64>,
    /// Improvement by worst-node *critical* exposure (<15 % SoC) — the
    /// SPOF reading of §VI.E.
    pub baat_critical_improvement: Option<f64>,
}

impl AvailabilityStudy {
    /// Result for one scheme.
    pub fn for_scheme(&self, scheme: Scheme) -> &SchemeAvailability {
        self.schemes
            .iter()
            .find(|s| s.scheme == scheme)
            .expect("all schemes present")
    }

    /// Probability mass in the top bin (SoC ≥ 90 %) for a scheme.
    pub fn top_bin_mass(&self, scheme: Scheme) -> f64 {
        self.for_scheme(scheme).distribution[6]
    }

    /// Probability mass below 45 % SoC (bins 0–2) for a scheme.
    pub fn low_mass(&self, scheme: Scheme) -> f64 {
        self.for_scheme(scheme).distribution[..3].iter().sum()
    }
}

/// Runs the study over a mixed multi-day window.
pub fn run(days: usize, seed: u64) -> AvailabilityStudy {
    // A scarcity-weighted mix: the paper's six-month record includes all
    // weathers; low-SoC behaviour shows on the harder days.
    let plan: Vec<Weather> = (0..days)
        .map(|i| match i % 3 {
            0 => Weather::Sunny,
            1 => Weather::Cloudy,
            _ => Weather::Rainy,
        })
        .collect();
    let scenarios = Scheme::ALL
        .iter()
        .map(|&scheme| Scenario::new(scheme, plan_config(plan.clone(), seed)))
        .collect();
    let reports: Vec<(Scheme, SimReport)> = Scheme::ALL
        .iter()
        .copied()
        .zip(run_scenarios_forked(scenarios))
        .collect();
    let baat_report = &reports
        .iter()
        .find(|(s, _)| *s == Scheme::Baat)
        .expect("BAAT in table")
        .1;
    let baat_improvement = availability_improvement(&reports[0].1, baat_report);
    let baat_critical_improvement = critical_improvement(&reports[0].1, baat_report);
    let schemes = reports
        .into_iter()
        .map(|(scheme, report)| SchemeAvailability {
            scheme,
            low_soc: LowSocSummary::from_report(&report),
            distribution: soc_distribution(&report),
        })
        .collect();
    AvailabilityStudy {
        schemes,
        baat_improvement,
        baat_critical_improvement,
    }
}

/// The paper-scale run (its record spans six months; six days of each
/// weather already show the distribution shift).
pub fn run_paper(seed: u64) -> AvailabilityStudy {
    run(18, seed)
}

/// Renders both figures' tables.
pub fn render(a: &AvailabilityStudy) -> String {
    let fig18_rows: Vec<Vec<String>> = a
        .schemes
        .iter()
        .map(|s| {
            vec![
                s.scheme.to_string(),
                format!("{}", s.low_soc.worst),
                format!("{}", s.low_soc.mean),
                format!("{}", s.low_soc.worst_critical),
            ]
        })
        .collect();
    let mut out = String::from("Fig 18 — low-SoC duration (worst node):\n\n");
    out.push_str(&crate::table::markdown(
        &["scheme", "worst <40%", "mean <40%", "worst <15%"],
        &fig18_rows,
    ));
    out.push_str(&format!(
        "\nBAAT low-SoC (<40%) duration reduction: {} — critical (<15%) \
         exposure reduction: {} (paper ~47%)\n",
        a.baat_improvement.map_or("—".into(), crate::table::pct),
        a.baat_critical_improvement
            .map_or("—".into(), crate::table::pct),
    ));
    out.push_str("\nFig 19 — SoC distribution (time-weighted):\n\n");
    let bins = [
        "0-15%", "15-30%", "30-45%", "45-60%", "60-75%", "75-90%", "90-100%",
    ];
    let fig19_rows: Vec<Vec<String>> = a
        .schemes
        .iter()
        .map(|s| {
            let mut row = vec![s.scheme.to_string()];
            row.extend(s.distribution.iter().map(|v| crate::table::pct(*v)));
            row
        })
        .collect();
    let mut header = vec!["scheme"];
    header.extend(bins);
    out.push_str(&crate::table::markdown(&header, &fig19_rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baat_cuts_low_soc_exposure() {
        let a = run(3, 41);
        let ebuff = a.for_scheme(Scheme::EBuff).low_soc.worst;
        let baat = a.for_scheme(Scheme::Baat).low_soc.worst;
        assert!(baat <= ebuff, "BAAT {baat} vs e-Buff {ebuff}");
    }

    #[test]
    fn distributions_are_normalized() {
        let a = run(3, 41);
        for s in &a.schemes {
            let total: f64 = s.distribution.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", s.scheme);
        }
    }

    #[test]
    fn baat_shifts_mass_upward() {
        let a = run(3, 41);
        assert!(
            a.low_mass(Scheme::Baat) <= a.low_mass(Scheme::EBuff) + 1e-9,
            "BAAT {} vs e-Buff {}",
            a.low_mass(Scheme::Baat),
            a.low_mass(Scheme::EBuff)
        );
    }
}
