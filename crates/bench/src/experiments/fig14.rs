//! Figure 14: battery lifetime vs solar availability (sunshine fraction).
//!
//! The paper sweeps geographic locations by sunshine fraction and finds
//! lifetime grows with solar availability; on average BAAT extends
//! battery life by ~69 % over e-Buff (BAAT-s +37 %, BAAT-h +29 %), with
//! slowdown mattering more than balancing.

use baat_core::{weather_plan_for_sunshine, LifetimeEstimate, Scheme};
use baat_units::Fraction;

use crate::runner::{plan_config, run_scenarios_forked, Scenario};

/// Lifetime estimates for the four schemes at one sunshine fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SunshinePoint {
    /// Sunshine fraction in `[0, 1]`.
    pub sunshine: f64,
    /// Worst-node lifetime days per scheme, Table-4 order.
    pub lifetime_days: [f64; 4],
}

/// The Fig 14 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeSweep {
    /// Sweep points, dimmest first.
    pub points: Vec<SunshinePoint>,
}

impl LifetimeSweep {
    /// Mean lifetime improvement of one scheme over e-Buff across the
    /// sweep.
    pub fn mean_improvement(&self, scheme: Scheme) -> f64 {
        let idx = Scheme::ALL
            .iter()
            .position(|s| *s == scheme)
            .expect("scheme in table");
        let mut sum = 0.0;
        for p in &self.points {
            sum += p.lifetime_days[idx] / p.lifetime_days[0] - 1.0;
        }
        sum / self.points.len() as f64
    }

    /// `true` if every scheme's lifetime grows with sunshine.
    pub fn lifetime_grows_with_sunshine(&self) -> bool {
        for idx in 0..4 {
            for pair in self.points.windows(2) {
                if pair[1].lifetime_days[idx] <= pair[0].lifetime_days[idx] * 0.9 {
                    return false;
                }
            }
        }
        true
    }
}

/// Runs the sweep: `fractions` sunshine values × 4 schemes, each
/// estimated from `days` representative days. All cells fan out across
/// the parallel scenario runner; schemes share one seed per point
/// (matched days, per the paper's methodology).
pub fn run(fractions: &[f64], days: usize, seed: u64) -> LifetimeSweep {
    let scenarios: Vec<Scenario> = fractions
        .iter()
        .flat_map(|&sunshine| {
            let plan = weather_plan_for_sunshine(
                Fraction::new(sunshine).expect("fraction valid"),
                days,
                seed,
            );
            Scheme::ALL
                .iter()
                .map(|&scheme| Scenario::new(scheme, plan_config(plan.clone(), seed)))
                .collect::<Vec<_>>()
        })
        .collect();
    let reports = run_scenarios_forked(scenarios);
    let points = fractions
        .iter()
        .zip(reports.chunks(Scheme::ALL.len()))
        .map(|(&sunshine, chunk)| {
            let mut lifetime_days = [0.0; 4];
            for (i, report) in chunk.iter().enumerate() {
                let est =
                    LifetimeEstimate::from_report(report).expect("cycling always causes damage");
                lifetime_days[i] = est.worst_days;
            }
            SunshinePoint {
                sunshine,
                lifetime_days,
            }
        })
        .collect();
    LifetimeSweep { points }
}

/// The paper's sweep: six sunshine fractions, eight-day windows.
pub fn run_paper(seed: u64) -> LifetimeSweep {
    run(&[0.40, 0.50, 0.60, 0.70, 0.80, 0.90], 8, seed)
}

/// Renders the sweep plus the headline improvements.
pub fn render(s: &LifetimeSweep) -> String {
    let rows: Vec<Vec<String>> = s
        .points
        .iter()
        .map(|p| {
            let mut row = vec![crate::table::pct(p.sunshine)];
            row.extend(p.lifetime_days.iter().map(|d| format!("{d:.0}")));
            row
        })
        .collect();
    let mut out = crate::table::markdown(
        &["sunshine", "e-Buff d", "BAAT-s d", "BAAT-h d", "BAAT d"],
        &rows,
    );
    out.push_str(&format!(
        "\nmean lifetime improvement vs e-Buff — BAAT: {} (paper 69%), \
         BAAT-s: {} (paper 37%), BAAT-h: {} (paper 29%)\n",
        crate::table::pct(s.mean_improvement(Scheme::Baat)),
        crate::table::pct(s.mean_improvement(Scheme::BaatS)),
        crate::table::pct(s.mean_improvement(Scheme::BaatH)),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_grows_with_sunshine_for_all_schemes() {
        let s = run(&[0.45, 0.85], 3, 17);
        assert!(s.lifetime_grows_with_sunshine());
    }

    #[test]
    fn baat_extends_lifetime() {
        let s = run(&[0.55], 3, 17);
        assert!(
            s.mean_improvement(Scheme::Baat) > 0.0,
            "BAAT gain {}",
            s.mean_improvement(Scheme::Baat)
        );
    }
}
