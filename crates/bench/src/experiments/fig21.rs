//! Figure 21: performance improvement vs the planned depth of discharge.
//!
//! Planned aging lets the controller deepen the allowed DoD (replacing
//! the 40 % line with `1 − DoD_goal`, §IV.D). The paper observes the
//! performance improvement is *not linear*: going 40 % → 60 % helps
//! visibly, while 70 % → 90 % adds little (the battery spends too long at
//! very low SoC).

use baat_core::{Baat, BaatConfig, Scheme, SlowdownThresholds};
use baat_sim::Simulation;
use baat_solar::Weather;
use baat_units::Soc;

use crate::runner::{plan_config, run_scheme};

/// One planned-DoD sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DodPoint {
    /// The planned depth of discharge.
    pub dod: f64,
    /// Useful work under planned-aging BAAT (core-hours).
    pub work: f64,
    /// Daily damage accrued (the lifetime cost of the deeper DoD).
    pub daily_damage: f64,
}

/// The Fig 21 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedDodSweep {
    /// Points, shallow to deep.
    pub points: Vec<DodPoint>,
    /// e-Buff work on the same days (reference).
    pub ebuff_work: f64,
}

impl PlannedDodSweep {
    /// Marginal performance gains between consecutive DoD steps.
    pub fn marginal_gains(&self) -> Vec<f64> {
        self.points
            .windows(2)
            .map(|w| w[1].work / w[0].work - 1.0)
            .collect()
    }

    /// `true` if the early DoD steps pay more than the late ones (the
    /// paper's non-linearity).
    pub fn gains_flatten(&self) -> bool {
        let g = self.marginal_gains();
        if g.len() < 2 {
            return true;
        }
        g.first().copied().unwrap_or(0.0) >= g.last().copied().unwrap_or(0.0) - 1e-9
    }
}

/// Runs the sweep on scarcity-heavy days where the DoD budget matters.
pub fn run(dods: &[f64], days: usize, seed: u64) -> PlannedDodSweep {
    let plan: Vec<Weather> = (0..days)
        .map(|i| {
            if i % 2 == 0 {
                Weather::Cloudy
            } else {
                Weather::Rainy
            }
        })
        .collect();
    let points = dods
        .iter()
        .map(|&dod| {
            // The planned DoD substitutes the slowdown line (§IV.D).
            let mut policy = Baat::with_config(BaatConfig {
                thresholds: SlowdownThresholds {
                    deep_soc: Soc::saturating(1.0 - dod),
                    recover_soc: Soc::saturating((1.0 - dod + 0.08).min(0.95)),
                    ..SlowdownThresholds::default()
                },
                ..BaatConfig::default()
            });
            let sim = Simulation::new(plan_config(plan.clone(), seed)).expect("config validated");
            let report = sim.run(&mut policy).expect("engine invariants hold");
            DodPoint {
                dod,
                work: report.total_work,
                daily_damage: report.mean_damage() / days as f64,
            }
        })
        .collect();
    let ebuff = run_scheme(Scheme::EBuff, plan_config(plan, seed), None);
    PlannedDodSweep {
        points,
        ebuff_work: ebuff.total_work,
    }
}

/// The paper's sweep: DoD 40–90 %.
pub fn run_paper(seed: u64) -> PlannedDodSweep {
    run(&[0.40, 0.50, 0.60, 0.70, 0.80, 0.90], 4, seed)
}

/// Renders the sweep.
pub fn render(s: &PlannedDodSweep) -> String {
    let rows: Vec<Vec<String>> = s
        .points
        .iter()
        .map(|p| {
            vec![
                crate::table::pct(p.dod),
                format!("{:.0}", p.work),
                crate::table::pct(p.work / s.ebuff_work - 1.0),
                crate::table::f(p.daily_damage * 1000.0),
            ]
        })
        .collect();
    let mut out = crate::table::markdown(
        &[
            "planned DoD",
            "work core-h",
            "vs e-Buff",
            "daily damage ×1000",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\nmarginal gains per DoD step: {:?} — flattening: {}\n",
        s.marginal_gains()
            .iter()
            .map(|g| format!("{:.1}%", g * 100.0))
            .collect::<Vec<_>>(),
        s.gains_flatten(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_dod_buys_work_but_costs_damage() {
        let s = run(&[0.40, 0.80], 2, 53);
        assert!(
            s.points[1].work >= s.points[0].work,
            "deeper DoD must not lose work: {} vs {}",
            s.points[1].work,
            s.points[0].work
        );
        assert!(
            s.points[1].daily_damage >= s.points[0].daily_damage,
            "deeper DoD should age faster"
        );
    }
}
