//! One module per paper figure; see DESIGN.md's experiment index.

pub mod ablations;
pub mod chem_ablation;
pub mod fig03_05;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18_19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod table1;
