//! Figure 17: servers that can be added without raising TCO, vs sunshine
//! fraction.
//!
//! "BAAT allows existing green datacenters to expand (scale-out) without
//! increasing the total cost of ownership" — the battery-depreciation
//! savings buy servers, capped by the available solar budget; sunnier
//! sites can add up to ~15 % more servers.

use baat_core::{weather_plan_for_sunshine, LifetimeEstimate, Scheme};
use baat_cost::{BatteryCostModel, TcoModel};
use baat_units::{Dollars, Fraction, WattHours, Watts};

use crate::runner::{plan_config, run_scenarios_forked, Scenario};

/// One sunshine sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpansionPoint {
    /// Sunshine fraction.
    pub sunshine: f64,
    /// e-Buff battery lifetime (days).
    pub ebuff_days: f64,
    /// BAAT battery lifetime (days).
    pub baat_days: f64,
    /// Fraction of the fleet addable without raising TCO.
    pub expansion: f64,
}

/// The Fig 17 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionSweep {
    /// Points, dimmest first.
    pub points: Vec<ExpansionPoint>,
}

impl ExpansionSweep {
    /// The maximum expansion across the sweep (paper: up to ~15 %).
    pub fn max_expansion(&self) -> f64 {
        self.points.iter().map(|p| p.expansion).fold(0.0, f64::max)
    }
}

/// Runs the sweep at a reference fleet of 1000 servers.
pub fn run(fractions: &[f64], days: usize, seed: u64) -> ExpansionSweep {
    let battery = BatteryCostModel::from_energy_price(WattHours::new(840.0), Dollars::new(150.0))
        .expect("static prices are valid");
    let tco = TcoModel::new(Dollars::new(180.0), battery).expect("static cost is valid");
    let fleet = 1000;
    let scenarios: Vec<Scenario> = fractions
        .iter()
        .flat_map(|&sunshine| {
            let plan = weather_plan_for_sunshine(
                Fraction::new(sunshine).expect("fraction valid"),
                days,
                seed,
            );
            [Scheme::EBuff, Scheme::Baat]
                .into_iter()
                .map(|scheme| Scenario::new(scheme, plan_config(plan.clone(), seed)))
                .collect::<Vec<_>>()
        })
        .collect();
    let reports = run_scenarios_forked(scenarios);
    let points = fractions
        .iter()
        .zip(reports.chunks(2))
        .map(|(&sunshine, chunk)| {
            let life = |report| {
                LifetimeEstimate::from_report(report)
                    .expect("cycling causes damage")
                    .worst_days
            };
            let ebuff_days = life(&chunk[0]);
            let baat_days = life(&chunk[1]);
            // Solar headroom scales with sunshine: surplus energy beyond
            // the fleet's demand, expressed as spare power at ~130 W per
            // server-slot of surplus.
            let headroom_w = (sunshine - 0.35).max(0.0) * fleet as f64 * 55.0;
            let expansion = tco
                .expansion_ratio(
                    fleet,
                    ebuff_days,
                    baat_days,
                    Watts::new(headroom_w),
                    Watts::new(130.0),
                )
                .expect("positive lifetimes")
                .value();
            ExpansionPoint {
                sunshine,
                ebuff_days,
                baat_days,
                expansion,
            }
        })
        .collect();
    ExpansionSweep { points }
}

/// The paper's sweep.
pub fn run_paper(seed: u64) -> ExpansionSweep {
    run(&[0.40, 0.50, 0.60, 0.70, 0.80, 0.90], 6, seed)
}

/// Renders the sweep.
pub fn render(s: &ExpansionSweep) -> String {
    let rows: Vec<Vec<String>> = s
        .points
        .iter()
        .map(|p| {
            vec![
                crate::table::pct(p.sunshine),
                format!("{:.0}", p.ebuff_days),
                format!("{:.0}", p.baat_days),
                crate::table::pct(p.expansion),
            ]
        })
        .collect();
    let mut out = crate::table::markdown(
        &["sunshine", "e-Buff days", "BAAT days", "servers addable"],
        &rows,
    );
    out.push_str(&format!(
        "\nmax expansion without TCO increase: {} (paper: up to ~15%)\n",
        crate::table::pct(s.max_expansion())
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_exists_and_grows_with_sunshine() {
        let s = run(&[0.45, 0.85], 3, 37);
        assert!(s.max_expansion() > 0.0);
        assert!(
            s.points[1].expansion >= s.points[0].expansion,
            "sunnier sites should afford at least as many servers"
        );
    }
}
