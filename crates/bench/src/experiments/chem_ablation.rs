//! Chemistry ablation: the same datacenter days run on lead-acid vs
//! li-ion banks.
//!
//! The paper's measurements are all lead-acid (§V.A), but the management
//! question — does aging-aware control still pay off when the storage
//! substrate changes? — needs the whole stack re-run with only the
//! chemistry swapped. Every cell shares weather, seed, workload and
//! timestep; the battery spec is the only difference, so lifetime and
//! TCO gaps are attributable to chemistry (plus the scheme's reaction to
//! it). The (chemistry × scheme) matrix runs under the snapshot-forked
//! parallel runner.

use baat_battery::Chemistry;
use baat_core::{LifetimeEstimate, Scheme};
use baat_cost::TcoModel;
use baat_solar::Weather;

use crate::runner::{chemistry_plan_config, run_scenarios_forked, Scenario};

/// The schemes the ablation compares on each chemistry.
const SCHEMES: [Scheme; 2] = [Scheme::EBuff, Scheme::Baat];

/// One (chemistry × scheme) ablation cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChemistryCell {
    /// The battery chemistry the bank ran on.
    pub chemistry: Chemistry,
    /// The management scheme.
    pub scheme: Scheme,
    /// Useful work (core-hours).
    pub work: f64,
    /// Worst-bank damage at the end of the run.
    pub worst_damage: f64,
    /// Extrapolated worst-bank lifetime (days).
    pub lifetime_days: f64,
    /// Annual 6-node fleet TCO at that lifetime, with the bay priced for
    /// this chemistry ([`TcoModel::prototype_for`]).
    pub annual_tco: f64,
}

/// The full ablation matrix, lead-acid cells first.
#[derive(Debug, Clone, PartialEq)]
pub struct ChemistryAblation {
    /// Cells in (chemistry, scheme) order: `Chemistry::ALL` outer,
    /// `SCHEMES` (e-Buff, BAAT) inner.
    pub cells: Vec<ChemistryCell>,
}

impl ChemistryAblation {
    /// The cell for one (chemistry, scheme) pair.
    pub fn cell(&self, chemistry: Chemistry, scheme: Scheme) -> &ChemistryCell {
        self.cells
            .iter()
            .find(|c| c.chemistry == chemistry && c.scheme == scheme)
            .expect("the matrix covers every (chemistry, scheme) pair")
    }

    /// Li-ion lifetime relative to lead-acid under `scheme` (>1 means
    /// li-ion banks out-live lead-acid on the same duty).
    pub fn lifetime_ratio(&self, scheme: Scheme) -> f64 {
        self.cell(Chemistry::LiIon, scheme).lifetime_days
            / self.cell(Chemistry::LeadAcid, scheme).lifetime_days
    }
}

/// Runs the (chemistry × scheme) matrix over `plan`, all cells forked
/// off shared warm prefixes (one per chemistry — the configs differ in
/// battery spec, so each chemistry forms its own snapshot group).
pub fn run(plan: Vec<Weather>, seed: u64) -> ChemistryAblation {
    let scenarios: Vec<Scenario> = Chemistry::ALL
        .iter()
        .flat_map(|&chemistry| {
            SCHEMES.map(|scheme| {
                Scenario::new(scheme, chemistry_plan_config(chemistry, plan.clone(), seed))
            })
        })
        .collect();
    let reports = run_scenarios_forked(scenarios);
    let cells = Chemistry::ALL
        .iter()
        .flat_map(|&chemistry| SCHEMES.map(|scheme| (chemistry, scheme)))
        .zip(reports)
        .map(|((chemistry, scheme), report)| {
            let lifetime_days = LifetimeEstimate::from_report(&report)
                .expect("cycling causes damage")
                .worst_days;
            let annual_tco = TcoModel::prototype_for(chemistry)
                .annual_tco(report.nodes.len(), lifetime_days)
                .expect("positive lifetime")
                .as_f64();
            ChemistryCell {
                chemistry,
                scheme,
                work: report.total_work,
                worst_damage: report.worst_node().expect("nodes exist").damage,
                lifetime_days,
                annual_tco,
            }
        })
        .collect();
    ChemistryAblation { cells }
}

/// The standard ablation: one cloudy plus one rainy day.
pub fn run_paper(seed: u64) -> ChemistryAblation {
    run(vec![Weather::Cloudy, Weather::Rainy], seed)
}

/// Renders the matrix plus the headline lifetime ratios.
pub fn render(a: &ChemistryAblation) -> String {
    let rows: Vec<Vec<String>> = a
        .cells
        .iter()
        .map(|c| {
            vec![
                c.chemistry.to_string(),
                c.scheme.to_string(),
                format!("{:.0}", c.work),
                crate::table::f(c.worst_damage * 1000.0),
                format!("{:.0}", c.lifetime_days),
                format!("${:.0}", c.annual_tco),
            ]
        })
        .collect();
    let mut out = String::from("Chemistry ablation (same days, battery spec swapped):\n\n");
    out.push_str(&crate::table::markdown(
        &[
            "chemistry",
            "scheme",
            "work c-h",
            "worst dmg ×1000",
            "lifetime d",
            "fleet TCO/yr",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nli-ion lifetime vs lead-acid: {:.1}× under e-Buff, {:.1}× under BAAT\n",
        a.lifetime_ratio(Scheme::EBuff),
        a.lifetime_ratio(Scheme::Baat),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_ablation_is_real_not_a_relabelled_rerun() {
        let a = run(vec![Weather::Cloudy], 43);
        assert_eq!(a.cells.len(), 4);
        for cell in &a.cells {
            assert!(cell.work > 0.0, "{:?} did no work", cell);
            assert!(
                cell.worst_damage > 0.0 && cell.lifetime_days > 0.0,
                "{:?} has no aging signal",
                cell
            );
        }
        for scheme in SCHEMES {
            let pb = a.cell(Chemistry::LeadAcid, scheme);
            let li = a.cell(Chemistry::LiIon, scheme);
            assert_ne!(
                pb.worst_damage, li.worst_damage,
                "{scheme}: chemistry swap changed nothing"
            );
            assert_ne!(pb.lifetime_days, li.lifetime_days);
            assert!(
                a.lifetime_ratio(scheme) > 1.0,
                "{scheme}: li-ion should out-live lead-acid, ratio {}",
                a.lifetime_ratio(scheme)
            );
        }
    }

    /// The README's chemistry-ablation table (cloudy+rainy, seed 2015)
    /// rests on these orderings; a change in the battery models, cost
    /// model or runner that flips any of them silently invalidates the
    /// published numbers.
    #[test]
    fn readme_table_orderings_hold() {
        let a = run_paper(2015);

        // Within each chemistry: aging-aware management extends the
        // worst bank's lifetime, lowers its damage rate, and pays for
        // itself (BAAT rows beat e-Buff rows).
        for chemistry in Chemistry::ALL {
            let ebuff = a.cell(chemistry, Scheme::EBuff);
            let baat = a.cell(chemistry, Scheme::Baat);
            assert!(
                baat.lifetime_days > ebuff.lifetime_days,
                "{chemistry}: BAAT lifetime {} must exceed e-Buff {}",
                baat.lifetime_days,
                ebuff.lifetime_days
            );
            assert!(
                baat.worst_damage < ebuff.worst_damage,
                "{chemistry}: BAAT must slow worst-bank aging"
            );
            assert!(
                baat.annual_tco < ebuff.annual_tco,
                "{chemistry}: BAAT TCO ${} must undercut e-Buff ${}",
                baat.annual_tco,
                ebuff.annual_tco
            );
        }

        // Across chemistries: li-ion out-lives lead-acid on the same
        // duty under both schemes, and its longer life wins the TCO
        // comparison despite the ~2x unit price.
        for scheme in SCHEMES {
            assert!(
                a.lifetime_ratio(scheme) > 1.0,
                "{scheme}: li-ion must out-live lead-acid"
            );
            assert!(
                a.cell(Chemistry::LiIon, scheme).annual_tco
                    < a.cell(Chemistry::LeadAcid, scheme).annual_tco,
                "{scheme}: li-ion TCO must undercut lead-acid"
            );
        }

        // The headline: li-ion's flat cycle-life curve makes aging
        // management matter less, so BAAT's relative lifetime gain is
        // larger on lead-acid (+75 % in the table) than on li-ion
        // (+13 %) — but still a strict gain on both.
        let gain = |chemistry: Chemistry| {
            a.cell(chemistry, Scheme::Baat).lifetime_days
                / a.cell(chemistry, Scheme::EBuff).lifetime_days
        };
        assert!(
            gain(Chemistry::LeadAcid) > gain(Chemistry::LiIon),
            "BAAT's relative gain must shrink on li-ion: lead-acid {:.2}x vs li-ion {:.2}x",
            gain(Chemistry::LeadAcid),
            gain(Chemistry::LiIon)
        );
        assert!(gain(Chemistry::LiIon) > 1.0);

        // Coarse magnitude bands separating the chemistries (the table
        // shows 147-258 days vs 1013-1149): an order-of-magnitude drift
        // in either column is a modelling regression, not noise.
        for scheme in SCHEMES {
            assert!(a.cell(Chemistry::LeadAcid, scheme).lifetime_days < 500.0);
            assert!(a.cell(Chemistry::LiIon, scheme).lifetime_days > 500.0);
        }
    }

    #[test]
    fn li_ion_pricing_flows_into_tco() {
        let a = run(vec![Weather::Cloudy], 47);
        // At roughly 2× unit price, li-ion's TCO is not simply lead-acid
        // rescaled: the longer lifetime pulls the other way. Either way
        // the two columns must differ — the cost side of the ablation is
        // live.
        for scheme in SCHEMES {
            assert_ne!(
                a.cell(Chemistry::LeadAcid, scheme).annual_tco,
                a.cell(Chemistry::LiIon, scheme).annual_tco
            );
        }
    }
}
