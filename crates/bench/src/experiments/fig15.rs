//! Figure 15: battery lifetime vs server-to-battery capacity ratio.
//!
//! Paper findings: (1) raising the ratio from 2 W/Ah to 10 W/Ah cuts
//! average battery lifetime by ~35 %; (2) BAAT's advantage over e-Buff
//! *grows* with the ratio (37 % → 1.4×); (3) doubling battery capacity
//! buys < 30 % lifetime — capacity planning has diminishing returns.

use baat_core::{weather_plan_for_sunshine, LifetimeEstimate, Scheme};
use baat_server::ServerPowerModel;
use baat_sim::{SimConfig, SimReport};
use baat_units::{Fraction, Watts};

use crate::runner::{run_scenarios_forked, Scenario, EXPERIMENT_DT};

/// One ratio sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioPoint {
    /// Server-to-battery ratio in W/Ah (peak server power over nominal
    /// battery Ah).
    pub ratio_w_per_ah: f64,
    /// e-Buff worst-node lifetime (days).
    pub ebuff_days: f64,
    /// BAAT worst-node lifetime (days).
    pub baat_days: f64,
}

/// The Fig 15 sweep plus the battery-doubling probe.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioSweep {
    /// Sweep points, light loading first.
    pub points: Vec<RatioPoint>,
    /// e-Buff lifetime at the lightest ratio with doubled battery
    /// capacity.
    pub doubled_battery_days: f64,
    /// The lightest-ratio baseline it compares against.
    pub baseline_days: f64,
}

impl RatioSweep {
    /// Mean lifetime reduction from the lightest to the heaviest ratio
    /// (paper ~35 %).
    pub fn heavy_loading_penalty(&self) -> f64 {
        let first = self.points.first().expect("points non-empty");
        let last = self.points.last().expect("points non-empty");
        let mean = |p: &RatioPoint| (p.ebuff_days + p.baat_days) / 2.0;
        1.0 - mean(last) / mean(first)
    }

    /// BAAT-over-e-Buff improvement at each ratio; the paper sees it grow
    /// from ~37 % to ~1.4×.
    pub fn baat_gain_by_ratio(&self) -> Vec<f64> {
        self.points
            .iter()
            .map(|p| p.baat_days / p.ebuff_days - 1.0)
            .collect()
    }

    /// Lifetime gain from doubling the battery (paper < 30 %).
    pub fn doubling_gain(&self) -> f64 {
        self.doubled_battery_days / self.baseline_days - 1.0
    }
}

/// Exposed for calibration tooling.
pub fn debug_config(ratio_w_per_ah: f64, battery_scale: f64, days: usize, seed: u64) -> SimConfig {
    config_for(ratio_w_per_ah, battery_scale, days, seed)
}

fn config_for(ratio_w_per_ah: f64, battery_scale: f64, days: usize, seed: u64) -> SimConfig {
    let battery_ah = 70.0 * battery_scale;
    let peak = ratio_w_per_ah * battery_ah;
    let idle = peak * 0.29;
    let plan = weather_plan_for_sunshine(Fraction::new(0.6).expect("static fraction"), days, seed);
    let mut spec = baat_battery::BatterySpec::builder();
    spec.capacity(baat_units::AmpHours::new(battery_ah))
        .internal_resistance(baat_units::Ohms::new(0.006 / battery_scale))
        .max_charge_current(baat_units::Amperes::new(battery_ah / 4.0))
        .max_discharge_current(baat_units::Amperes::new(battery_ah));
    let mut b = SimConfig::builder();
    b.weather_plan(plan)
        .dt(EXPERIMENT_DT)
        .sample_every(40)
        .seed(seed)
        .battery_spec(spec.build().expect("derived spec is valid"))
        .server_power(
            ServerPowerModel::new(Watts::new(idle), Watts::new(peak))
                .expect("derived powers are valid"),
        );
    b.build().expect("derived config is valid")
}

fn worst_days(report: &SimReport) -> f64 {
    LifetimeEstimate::from_report(report)
        .expect("cycling always causes damage")
        .worst_days
}

/// Runs the ratio sweep over the given W/Ah ratios.
///
/// Every lifetime estimate is the mean over four seeded weather windows
/// (one window is noisy); all (job × window) cells fan out through the
/// parallel scenario runner at once.
pub fn run(ratios: &[f64], days: usize, seed: u64) -> RatioSweep {
    // One job per mean-lifetime estimate: the sweep cells, then the
    // doubling probe. The probe runs at the light end of the sweep: with
    // the fleet fully power-starved (high ratios), extra storage cannot
    // help — exactly the paper's "excessively increasing battery
    // capacity … may not be wise".
    let mut jobs: Vec<(Scheme, f64, f64)> = Vec::new();
    for &ratio in ratios {
        jobs.push((Scheme::EBuff, ratio, 1.0));
        jobs.push((Scheme::Baat, ratio, 1.0));
    }
    let light = ratios[0];
    jobs.push((Scheme::EBuff, light, 1.0));
    jobs.push((Scheme::EBuff, light / 2.0, 2.0));

    let window_seeds = [
        seed,
        seed.wrapping_add(101),
        seed.wrapping_add(211),
        seed.wrapping_add(331),
    ];
    let scenarios: Vec<Scenario> = jobs
        .iter()
        .flat_map(|&(scheme, ratio, scale)| {
            window_seeds
                .iter()
                .map(move |&s| Scenario::new(scheme, config_for(ratio, scale, days, s)))
        })
        .collect();
    let means: Vec<f64> = run_scenarios_forked(scenarios)
        .chunks(window_seeds.len())
        .map(|chunk| chunk.iter().map(worst_days).sum::<f64>() / chunk.len() as f64)
        .collect();

    let points = ratios
        .iter()
        .enumerate()
        .map(|(i, &ratio)| RatioPoint {
            ratio_w_per_ah: ratio,
            ebuff_days: means[2 * i],
            baat_days: means[2 * i + 1],
        })
        .collect();
    RatioSweep {
        points,
        doubled_battery_days: means[means.len() - 1],
        baseline_days: means[means.len() - 2],
    }
}

/// The paper's sweep: 2–10 W/Ah.
pub fn run_paper(seed: u64) -> RatioSweep {
    run(&[2.0, 4.0, 6.0, 8.0, 10.0], 6, seed)
}

/// Renders the sweep plus the headline findings.
pub fn render(s: &RatioSweep) -> String {
    let rows: Vec<Vec<String>> = s
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0} W/Ah", p.ratio_w_per_ah),
                format!("{:.0}", p.ebuff_days),
                format!("{:.0}", p.baat_days),
                crate::table::pct(p.baat_days / p.ebuff_days - 1.0),
            ]
        })
        .collect();
    let mut out =
        crate::table::markdown(&["ratio", "e-Buff days", "BAAT days", "BAAT gain"], &rows);
    out.push_str(&format!(
        "\nheavy-loading lifetime penalty (2→10 W/Ah): {} (paper ~35%)\n\
         battery-doubling lifetime gain: {} (paper <30%)\n",
        crate::table::pct(s.heavy_loading_penalty()),
        crate::table::pct(s.doubling_gain()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavier_loading_shortens_life() {
        let s = run(&[2.0, 8.0], 2, 23);
        assert!(
            s.heavy_loading_penalty() > 0.0,
            "penalty {}",
            s.heavy_loading_penalty()
        );
    }

    #[test]
    fn doubling_battery_helps_but_subproportionally() {
        let s = run(&[2.0, 6.0, 10.0], 2, 23);
        let gain = s.doubling_gain();
        assert!(gain > 0.0, "doubling gain {gain}");
        assert!(gain < 1.0, "gain should be sub-proportional, got {gain}");
    }
}
