//! Figure 16: annual battery depreciation cost vs the slowdown
//! threshold.
//!
//! The paper varies the aging-slowdown threshold and observes the cost
//! benefit changes; BAAT achieves ~26 % annual depreciation savings over
//! e-Buff, but "aggressively applying the aging slowdown algorithm is not
//! wise since it may cause unnecessary performance degradation".

use baat_core::{
    weather_plan_for_sunshine, Baat, BaatConfig, LifetimeEstimate, Scheme, SlowdownThresholds,
};
use baat_cost::BatteryCostModel;
use baat_sim::Simulation;
use baat_units::{Fraction, Soc};

use crate::runner::{plan_config, run_scheme};

/// One threshold sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPoint {
    /// The deep-discharge SoC threshold driving the slowdown.
    pub deep_soc: f64,
    /// Worst-node lifetime under BAAT with this threshold (days).
    pub lifetime_days: f64,
    /// Annual depreciation per battery node (dollars).
    pub annual_cost: f64,
    /// Day's useful work (core-hours) — the performance side of the
    /// trade-off.
    pub work: f64,
}

/// The Fig 16 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CostSweep {
    /// BAAT points by threshold, lax to aggressive.
    pub points: Vec<ThresholdPoint>,
    /// e-Buff baseline lifetime (days) and annual cost.
    pub ebuff_days: f64,
    /// e-Buff annual depreciation per node.
    pub ebuff_annual_cost: f64,
}

impl CostSweep {
    /// Best cost reduction over e-Buff across thresholds (paper ~26 %).
    pub fn best_saving(&self) -> f64 {
        self.points
            .iter()
            .map(|p| 1.0 - p.annual_cost / self.ebuff_annual_cost)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Runs the sweep over the given deep-SoC thresholds.
pub fn run(thresholds: &[f64], days: usize, seed: u64) -> CostSweep {
    // A larger two-unit bank is priced accordingly.
    let cost = BatteryCostModel::from_energy_price(
        baat_units::WattHours::new(840.0),
        baat_units::Dollars::new(150.0),
    )
    .expect("static prices are valid");
    let plan = weather_plan_for_sunshine(Fraction::new(0.55).expect("static fraction"), days, seed);
    let points = thresholds
        .iter()
        .map(|&deep| {
            let mut policy = Baat::with_config(BaatConfig {
                thresholds: SlowdownThresholds {
                    deep_soc: Soc::saturating(deep),
                    recover_soc: Soc::saturating(deep + 0.08),
                    ..SlowdownThresholds::default()
                },
                ..BaatConfig::default()
            });
            let sim = Simulation::new(plan_config(plan.clone(), seed)).expect("config validated");
            let report = sim.run(&mut policy).expect("engine invariants hold");
            let lifetime_days = LifetimeEstimate::from_report(&report)
                .expect("cycling causes damage")
                .worst_days;
            ThresholdPoint {
                deep_soc: deep,
                lifetime_days,
                annual_cost: cost
                    .annual_depreciation(lifetime_days)
                    .expect("positive lifetime")
                    .as_f64(),
                work: report.total_work,
            }
        })
        .collect();
    let ebuff = run_scheme(Scheme::EBuff, plan_config(plan, seed), None);
    let ebuff_days = LifetimeEstimate::from_report(&ebuff)
        .expect("cycling causes damage")
        .worst_days;
    CostSweep {
        points,
        ebuff_days,
        ebuff_annual_cost: cost
            .annual_depreciation(ebuff_days)
            .expect("positive lifetime")
            .as_f64(),
    }
}

/// The paper's sweep: five thresholds.
pub fn run_paper(seed: u64) -> CostSweep {
    run(&[0.20, 0.30, 0.40, 0.50, 0.60], 6, seed)
}

/// Renders the sweep plus the headline saving.
pub fn render(s: &CostSweep) -> String {
    let rows: Vec<Vec<String>> = s
        .points
        .iter()
        .map(|p| {
            vec![
                crate::table::pct(p.deep_soc),
                format!("{:.0}", p.lifetime_days),
                format!("${:.2}", p.annual_cost),
                crate::table::pct(1.0 - p.annual_cost / s.ebuff_annual_cost),
                format!("{:.0}", p.work),
            ]
        })
        .collect();
    let mut out = crate::table::markdown(
        &[
            "threshold SoC",
            "lifetime d",
            "annual cost",
            "saving vs e-Buff",
            "work core-h",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\ne-Buff: {:.0} days, ${:.2}/yr — best BAAT saving: {} (paper ~26%)\n",
        s.ebuff_days,
        s.ebuff_annual_cost,
        crate::table::pct(s.best_saving()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_saves_money() {
        let s = run(&[0.40], 2, 31);
        assert!(s.best_saving() > 0.0, "saving {}", s.best_saving());
    }

    #[test]
    fn costs_are_positive_and_finite() {
        let s = run(&[0.30, 0.50], 2, 31);
        for p in &s.points {
            assert!(p.annual_cost.is_finite() && p.annual_cost > 0.0);
            assert!(p.lifetime_days > 0.0);
        }
    }
}
