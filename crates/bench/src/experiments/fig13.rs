//! Figure 13: aging-metric comparison of the four power-management
//! schemes across {sunny, cloudy} × {young, old} batteries.
//!
//! Paper findings to reproduce in shape: (1) batteries age faster in
//! harsh conditions (e-Buff's cloudy Ah-throughput ≫ its sunny one);
//! (2) e-Buff cycles ~1.3× more Ah than BAAT on average, up to ~2.1× in
//! the worst case; (3) weighting the metrics with Eq 6, BAAT cuts
//! worst-case (cloudy + old) aging speed by ~38 %.

use baat_core::Scheme;
use baat_metrics::weighted_aging;
use baat_solar::Weather;
use baat_workload::{DemandClass, EnergyDemand, PowerDemand};

use crate::runner::{
    day_config, run_scenarios_forked, run_scenarios_observed_with_threads, runner_threads,
    write_perf_report, Scenario, OLD_BATTERY_DAMAGE,
};

/// One cell of the comparison matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonCell {
    /// The scheme compared.
    pub scheme: Scheme,
    /// Weather of the matched day.
    pub weather: Weather,
    /// `true` for the pre-aged ("old") battery stage.
    pub old: bool,
    /// Worst-node NAT over the day.
    pub nat: f64,
    /// Worst-node charge factor.
    pub cf: Option<f64>,
    /// Worst-node Eq-4 partial cycling.
    pub pc: f64,
    /// Worst-node Eq-6 weighted aging value.
    pub weighted: f64,
    /// Mean damage added across nodes this day.
    pub damage: f64,
}

/// The full Fig 13 matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingComparison {
    /// All cells: 4 schemes × 2 weathers × 2 ages.
    pub cells: Vec<ComparisonCell>,
}

/// The Eq-6 class used for the paper's comparison ("using Eq-6 with same
/// weighting factors").
const CLASS: DemandClass = DemandClass {
    power: PowerDemand::Large,
    energy: EnergyDemand::More,
};

impl AgingComparison {
    /// Looks up one cell.
    pub fn cell(&self, scheme: Scheme, weather: Weather, old: bool) -> &ComparisonCell {
        self.cells
            .iter()
            .find(|c| c.scheme == scheme && c.weather == weather && c.old == old)
            .expect("full matrix")
    }

    /// e-Buff's cloudy-vs-sunny Ah inflation (paper: ~+35 %).
    pub fn ebuff_cloudy_inflation(&self) -> f64 {
        let sunny = self.cell(Scheme::EBuff, Weather::Sunny, false).nat;
        let cloudy = self.cell(Scheme::EBuff, Weather::Cloudy, false).nat;
        cloudy / sunny - 1.0
    }

    /// Mean e-Buff/BAAT Ah-throughput ratio across the matrix (paper:
    /// ~1.3×).
    pub fn mean_ah_ratio(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0.0;
        for weather in [Weather::Sunny, Weather::Cloudy] {
            for old in [false, true] {
                let e = self.cell(Scheme::EBuff, weather, old).nat;
                let b = self.cell(Scheme::Baat, weather, old).nat;
                if b > 0.0 {
                    sum += e / b;
                    n += 1.0;
                }
            }
        }
        sum / n
    }

    /// Worst-case (cloudy + old) aging-speed reduction of BAAT vs e-Buff,
    /// by daily damage (paper: ~38 % by weighted metrics).
    pub fn worst_case_aging_reduction(&self) -> f64 {
        let e = self.cell(Scheme::EBuff, Weather::Cloudy, true).damage;
        let b = self.cell(Scheme::Baat, Weather::Cloudy, true).damage;
        1.0 - b / e
    }

    /// Worst-case weighted-aging (Eq 6) reduction of BAAT vs e-Buff.
    pub fn worst_case_weighted_reduction(&self) -> f64 {
        let e = self.cell(Scheme::EBuff, Weather::Cloudy, true).weighted;
        let b = self.cell(Scheme::Baat, Weather::Cloudy, true).weighted;
        if e > 0.0 {
            1.0 - b / e
        } else {
            0.0
        }
    }
}

fn sweep(seed: u64) -> (Vec<(Scheme, Weather, bool)>, Vec<Scenario>) {
    let mut specs = Vec::with_capacity(16);
    let mut scenarios = Vec::with_capacity(16);
    for weather in [Weather::Sunny, Weather::Cloudy] {
        for old in [false, true] {
            for scheme in Scheme::ALL {
                // Matched days: identical config seed ⇒ identical solar
                // trace and workload arrivals (the paper matches days by
                // similarity of solar logs).
                let mut scenario = Scenario::new(scheme, day_config(weather, seed));
                if old {
                    scenario = scenario.pre_aged(OLD_BATTERY_DAMAGE);
                }
                specs.push((scheme, weather, old));
                scenarios.push(scenario);
            }
        }
    }
    (specs, scenarios)
}

/// Runs the 4×2×2 comparison on matched solar days, fanned out across
/// the parallel scenario runner.
pub fn run(seed: u64) -> AgingComparison {
    let (specs, scenarios) = sweep(seed);
    let cells = specs
        .into_iter()
        .zip(run_scenarios_forked(scenarios))
        .map(|((scheme, weather, old), report)| {
            let worst = report.worst_node().expect("nodes exist");
            let base = if old { OLD_BATTERY_DAMAGE } else { 0.0 };
            ComparisonCell {
                scheme,
                weather,
                old,
                nat: worst.lifetime_metrics.nat,
                cf: worst.lifetime_metrics.cf,
                pc: worst.lifetime_metrics.pc.weighted_value(),
                weighted: weighted_aging(&worst.lifetime_metrics, CLASS),
                damage: report.mean_damage() - base,
            }
        })
        .collect();
    AgingComparison { cells }
}

/// [`run`] with per-scenario perf + counter reports written to `dir`
/// (`fig13_<scheme>_<weather>_<age>.perf.jsonl`). The returned matrix is
/// bit-identical to [`run`]'s: observation never perturbs a run.
///
/// # Errors
///
/// Propagates filesystem errors writing the perf reports.
pub fn run_observed(seed: u64, dir: &std::path::Path) -> std::io::Result<AgingComparison> {
    let (specs, scenarios) = sweep(seed);
    let runs = run_scenarios_observed_with_threads(scenarios, runner_threads());
    let cells = specs
        .iter()
        .zip(&runs)
        .map(|(&(scheme, weather, old), run)| {
            let report = &run.report;
            let worst = report.worst_node().expect("nodes exist");
            let base = if old { OLD_BATTERY_DAMAGE } else { 0.0 };
            ComparisonCell {
                scheme,
                weather,
                old,
                nat: worst.lifetime_metrics.nat,
                cf: worst.lifetime_metrics.cf,
                pc: worst.lifetime_metrics.pc.weighted_value(),
                weighted: weighted_aging(&worst.lifetime_metrics, CLASS),
                damage: report.mean_damage() - base,
            }
        })
        .collect();
    for (&(scheme, weather, old), run) in specs.iter().zip(&runs) {
        let label = format!(
            "fig13_{}_{}_{}",
            scheme.name().to_lowercase().replace('-', "_"),
            format!("{weather:?}").to_lowercase(),
            if old { "old" } else { "young" }
        );
        write_perf_report(dir, &label, run)?;
    }
    Ok(AgingComparison { cells })
}

/// Renders the matrix plus headline ratios.
pub fn render(c: &AgingComparison) -> String {
    let rows: Vec<Vec<String>> = c
        .cells
        .iter()
        .map(|cell| {
            vec![
                cell.scheme.to_string(),
                cell.weather.to_string(),
                if cell.old { "old" } else { "young" }.into(),
                crate::table::f(cell.nat * 1000.0),
                cell.cf.map_or("—".into(), crate::table::f),
                crate::table::f(cell.pc),
                crate::table::f(cell.weighted),
                crate::table::f(cell.damage * 1000.0),
            ]
        })
        .collect();
    let mut out = crate::table::markdown(
        &[
            "scheme",
            "weather",
            "age",
            "NAT ×1000",
            "CF",
            "PC",
            "Eq-6 weighted",
            "damage ×1000",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\ne-Buff cloudy Ah inflation: {} (paper ~35%)\n\
         mean e-Buff/BAAT Ah ratio: {:.2}× (paper ~1.3×)\n\
         worst-case aging reduction (damage): {} — weighted (Eq 6): {} (paper ~38%)\n",
        crate::table::pct(c.ebuff_cloudy_inflation()),
        c.mean_ah_ratio(),
        crate::table::pct(c.worst_case_aging_reduction()),
        crate::table::pct(c.worst_case_weighted_reduction()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_complete_and_ordered() {
        let c = run(5);
        assert_eq!(c.cells.len(), 16);
        // Cloudy stresses the battery more than sunny for e-Buff.
        assert!(c.ebuff_cloudy_inflation() > 0.0);
    }

    #[test]
    fn baat_reduces_worst_case_aging() {
        let c = run(5);
        assert!(
            c.worst_case_aging_reduction() > 0.0,
            "BAAT must age slower than e-Buff in the worst case: {}",
            c.worst_case_aging_reduction()
        );
    }
}
