//! Table 1: battery usage scenarios in datacenters.
//!
//! The paper's Table 1 classifies three deployment styles — power backup
//! (rare use), demand response (occasional peak shaving) and power
//! smoothing (cyclic green-energy buffering) — by usage frequency, aging
//! speed (Light/Medium/Severe) and aging variation (Small/Medium/Large).
//! This experiment drives a small battery fleet through each pattern and
//! measures both.

use baat_battery::{BatteryModel, BatteryOp, BatteryPack, BatterySpec, VariationParams};
use baat_obs::{Obs, Stage};
use baat_rng::StdRng;
use baat_units::{Celsius, SimDuration, SimInstant, Watts};

/// The three Table-1 usage scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UsageScenario {
    /// Backup: float service, discharged only on rare outages.
    PowerBackup,
    /// Demand response: occasional afternoon peak shaving.
    DemandResponse,
    /// Power smoothing: daily cyclic buffering of green energy.
    PowerSmoothing,
}

impl UsageScenario {
    /// All scenarios in Table 1's order.
    pub const ALL: [UsageScenario; 3] = [
        UsageScenario::PowerBackup,
        UsageScenario::DemandResponse,
        UsageScenario::PowerSmoothing,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            UsageScenario::PowerBackup => "Power Backup",
            UsageScenario::DemandResponse => "Demand Response",
            UsageScenario::PowerSmoothing => "Power Smoothing",
        }
    }
}

/// Measured outcome for one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioResult {
    /// The scenario.
    pub scenario: UsageScenario,
    /// Mean damage per simulated day across the fleet.
    pub aging_speed: f64,
    /// Relative damage spread across units (max/min − 1) — the paper's
    /// "aging variation".
    pub aging_variation: f64,
}

/// Drives a 6-unit fleet through `days` of one scenario.
pub fn run_scenario(scenario: UsageScenario, days: u32, seed: u64) -> ScenarioResult {
    run_scenario_observed(scenario, days, seed, &Obs::disabled())
}

/// [`run_scenario`] profiling battery steps and counting operations into
/// `obs` (`table1.ops.*`, [`Stage::BatteryStep`] timings). Results are
/// bit-identical with observation on or off.
pub fn run_scenario_observed(
    scenario: UsageScenario,
    days: u32,
    seed: u64,
    obs: &Obs,
) -> ScenarioResult {
    let charges = obs.counter("table1.ops.charge");
    let discharges = obs.counter("table1.ops.discharge");
    let mut pack = BatteryPack::manufacture(
        BatterySpec::prototype(),
        6,
        VariationParams::default(),
        seed,
    )
    .expect("static pack parameters are valid");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C);
    let mut now = SimInstant::START;
    let dt = SimDuration::from_minutes(10);

    for _ in 0..days {
        for step in 0..144u32 {
            for (unit_idx, unit) in pack.iter_mut().enumerate() {
                let op = match scenario {
                    // Float charge all day; ~one 20-minute outage per
                    // month somewhere in the fleet.
                    UsageScenario::PowerBackup => {
                        if rng.random_range(0.0..1.0) < 1.0 / (30.0 * 144.0 * 6.0) {
                            BatteryOp::Discharge(Watts::new(150.0))
                        } else {
                            BatteryOp::Charge(Watts::new(15.0))
                        }
                    }
                    // A 2-hour peak-shave window in the afternoon, two or
                    // three days a week, with per-unit depth differences.
                    UsageScenario::DemandResponse => {
                        let shaving_day = rng.random_range(0.0..1.0) < 0.4 / 144.0;
                        let afternoon = (84..96).contains(&step);
                        if afternoon && (shaving_day || rng.random_range(0.0..1.0) < 0.03) {
                            BatteryOp::Discharge(Watts::new(80.0 + 30.0 * unit_idx as f64))
                        } else if (96..120).contains(&step) {
                            BatteryOp::Charge(Watts::new(80.0))
                        } else {
                            // Like any UPS battery, it floats between
                            // events.
                            BatteryOp::Charge(Watts::new(15.0))
                        }
                    }
                    // Daily deep cycling with strong per-unit imbalance
                    // (different server loads per the paper's §IV.B.1).
                    UsageScenario::PowerSmoothing => {
                        if (54..96).contains(&step) {
                            BatteryOp::Discharge(Watts::new(
                                60.0 + 25.0 * unit_idx as f64 + rng.random_range(0.0..30.0),
                            ))
                        } else if (96..144).contains(&step) {
                            BatteryOp::Charge(Watts::new(100.0))
                        } else {
                            BatteryOp::Charge(Watts::new(15.0))
                        }
                    }
                };
                match op {
                    BatteryOp::Discharge(_) => discharges.inc(),
                    BatteryOp::Charge(_) => charges.inc(),
                    BatteryOp::Idle => {}
                }
                let _t = obs.time(Stage::BatteryStep);
                unit.step(op, Celsius::new(25.0), now, dt);
            }
            now += dt;
        }
    }

    let damages: Vec<f64> = pack.iter().map(|u| u.total_damage()).collect();
    let max = damages.iter().cloned().fold(0.0, f64::max);
    let min = damages.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = damages.iter().sum::<f64>() / damages.len() as f64;
    ScenarioResult {
        scenario,
        aging_speed: mean / f64::from(days),
        aging_variation: if min > 0.0 { max / min - 1.0 } else { 0.0 },
    }
}

/// Runs all three scenarios.
pub fn run(days: u32, seed: u64) -> Vec<ScenarioResult> {
    UsageScenario::ALL
        .iter()
        .map(|&s| run_scenario(s, days, seed))
        .collect()
}

/// [`run`] with a per-scenario perf + counter report written to `dir`
/// (`table1_<scenario>.perf.jsonl`). Results are bit-identical to
/// [`run`]'s.
///
/// # Errors
///
/// Propagates filesystem errors writing the perf reports.
pub fn run_observed(
    days: u32,
    seed: u64,
    dir: &std::path::Path,
) -> std::io::Result<Vec<ScenarioResult>> {
    UsageScenario::ALL
        .iter()
        .map(|&s| {
            let obs = Obs::enabled();
            let started = std::time::Instant::now();
            let result = run_scenario_observed(s, days, seed, &obs);
            let label = format!("table1_{}", s.name().to_lowercase().replace(' ', "_"));
            crate::runner::write_perf_jsonl(dir, &label, &obs, started.elapsed())?;
            Ok(result)
        })
        .collect()
}

/// Renders Table 1's reproduced form.
pub fn render(results: &[ScenarioResult]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.scenario.name().to_owned(),
                format!("{:.6}", r.aging_speed),
                crate::table::pct(r.aging_variation),
            ]
        })
        .collect();
    let mut out = crate::table::markdown(
        &[
            "usage objective",
            "aging speed (damage/day)",
            "aging variation",
        ],
        &rows,
    );
    out.push_str(
        "\npaper Table 1: backup = Light/Small, demand response = Medium/Medium, \
         power smoothing = Severe/Large\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aging_speed_orders_as_table1() {
        let r = run(14, 77);
        let speed = |s: UsageScenario| {
            r.iter()
                .find(|x| x.scenario == s)
                .expect("scenario present")
                .aging_speed
        };
        assert!(
            speed(UsageScenario::PowerBackup) < speed(UsageScenario::DemandResponse),
            "backup must age slower than demand response"
        );
        assert!(
            speed(UsageScenario::DemandResponse) < speed(UsageScenario::PowerSmoothing),
            "demand response must age slower than power smoothing"
        );
    }

    #[test]
    fn aging_variation_orders_as_table1() {
        let r = run(14, 77);
        let variation = |s: UsageScenario| {
            r.iter()
                .find(|x| x.scenario == s)
                .expect("scenario present")
                .aging_variation
        };
        assert!(
            variation(UsageScenario::PowerBackup) < variation(UsageScenario::PowerSmoothing),
            "cyclic use must show larger unit-to-unit variation"
        );
    }
}
