//! Figure 20: one-day compute throughput of the four schemes.
//!
//! Paper findings: e-Buff "intuitively" performs best until its battery
//! trips and the server shuts down (throughput zero during downtime);
//! BAAT-s pays a steady DVFS penalty; BAAT-h pays migration overhead; the
//! coordinated BAAT wins the scarcity cases — +28 % over e-Buff in the
//! worst case (cloudy, old batteries).

use baat_core::Scheme;
use baat_solar::Weather;

use crate::runner::{day_config, run_scenarios_forked, Scenario, OLD_BATTERY_DAMAGE};

/// Throughput of the four schemes in one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputRow {
    /// Weather of the matched day.
    pub weather: Weather,
    /// `true` for pre-aged batteries.
    pub old: bool,
    /// Useful work (core-hours) per scheme, Table-4 order.
    pub work: [f64; 4],
    /// Server downtime seconds per scheme (explains the e-Buff losses).
    pub downtime_secs: [u64; 4],
}

/// The Fig 20 study.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputStudy {
    /// Scenario rows.
    pub rows: Vec<ThroughputRow>,
}

impl ThroughputStudy {
    /// BAAT-over-e-Buff throughput gain in the hardest scenario run.
    pub fn worst_case_baat_gain(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.work[3] / r.work[0] - 1.0)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The scenario row for one weather/age pair.
    pub fn row(&self, weather: Weather, old: bool) -> &ThroughputRow {
        self.rows
            .iter()
            .find(|r| r.weather == weather && r.old == old)
            .expect("scenario present")
    }
}

/// Runs the scenarios (matched solar days per the §VI.B methodology).
pub fn run(scenarios: &[(Weather, bool)], seed: u64) -> ThroughputStudy {
    let cells: Vec<Scenario> = scenarios
        .iter()
        .flat_map(|&(weather, old)| {
            Scheme::ALL.iter().map(move |&scheme| {
                let mut cell = Scenario::new(scheme, day_config(weather, seed));
                if old {
                    cell = cell.pre_aged(OLD_BATTERY_DAMAGE);
                }
                cell
            })
        })
        .collect();
    let reports = run_scenarios_forked(cells);
    let rows = scenarios
        .iter()
        .zip(reports.chunks(Scheme::ALL.len()))
        .map(|(&(weather, old), chunk)| {
            let mut work = [0.0; 4];
            let mut downtime_secs = [0; 4];
            for (i, report) in chunk.iter().enumerate() {
                work[i] = report.total_work;
                downtime_secs[i] = report.nodes.iter().map(|n| n.downtime.as_secs()).sum();
            }
            ThroughputRow {
                weather,
                old,
                work,
                downtime_secs,
            }
        })
        .collect();
    ThroughputStudy { rows }
}

/// The paper's four scenarios.
pub fn run_paper(seed: u64) -> ThroughputStudy {
    run(
        &[
            (Weather::Sunny, false),
            (Weather::Cloudy, false),
            (Weather::Cloudy, true),
            (Weather::Rainy, true),
        ],
        seed,
    )
}

/// Renders the study.
pub fn render(t: &ThroughputStudy) -> String {
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.weather.to_string(),
                if r.old { "old" } else { "young" }.into(),
                format!("{:.0} ({:.0}s down)", r.work[0], r.downtime_secs[0]),
                format!("{:.0}", r.work[1]),
                format!("{:.0}", r.work[2]),
                format!("{:.0} ({:.0}s down)", r.work[3], r.downtime_secs[3]),
                crate::table::pct(r.work[3] / r.work[0] - 1.0),
            ]
        })
        .collect();
    let mut out = crate::table::markdown(
        &[
            "weather",
            "age",
            "e-Buff",
            "BAAT-s",
            "BAAT-h",
            "BAAT",
            "BAAT vs e-Buff",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\nworst-case BAAT throughput gain: {} (paper ~28%)\n",
        crate::table::pct(t.worst_case_baat_gain())
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baat_wins_under_scarcity() {
        let t = run(&[(Weather::Rainy, true)], 47);
        let r = &t.rows[0];
        assert!(
            r.work[3] > r.work[0],
            "BAAT {} must beat e-Buff {} when power is scarce",
            r.work[3],
            r.work[0]
        );
    }

    #[test]
    fn ebuff_downtime_explains_its_losses() {
        let t = run(&[(Weather::Rainy, true)], 47);
        let r = &t.rows[0];
        assert!(
            r.downtime_secs[0] > r.downtime_secs[3],
            "e-Buff downtime {} should exceed BAAT {}",
            r.downtime_secs[0],
            r.downtime_secs[3]
        );
    }

    #[test]
    fn baat_s_pays_throttle_penalty() {
        let t = run(&[(Weather::Cloudy, true)], 47);
        let r = &t.rows[0];
        assert!(
            r.work[1] <= r.work[3],
            "BAAT-s {} should not beat coordinated BAAT {}",
            r.work[1],
            r.work[3]
        );
    }
}
