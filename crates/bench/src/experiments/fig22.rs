//! Figure 22: performance benefit of planned aging vs the expected
//! battery service life.
//!
//! When the replacement batteries will outlive the datacenter, BAAT
//! shifts unused battery life into present performance (up to ~33 % more
//! productivity). The benefit fades at both ends: with a very short
//! horizon the DoD is already capped (>90 % DoD is off-limits), and with
//! a very long horizon there is little unused life to shift.

use baat_core::{Baat, PlannedAging, Scheme};
use baat_sim::Simulation;
use baat_solar::Weather;

use crate::runner::{plan_config, run_scheme};

/// One service-horizon sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HorizonPoint {
    /// Expected battery service life (days from install to datacenter
    /// end-of-life).
    pub service_days: f64,
    /// Useful work under planned-aging BAAT.
    pub work: f64,
    /// Per-day productivity improvement vs e-Buff.
    pub improvement: f64,
    /// Total productivity shifted over the whole horizon, in relative
    /// work-days (`improvement × service_days`) — the quantity the
    /// paper's Fig 22 peaks in the interior: very short horizons cap the
    /// DoD at 90 % and leave few days to harvest, very long ones have
    /// little unused life to shift.
    pub benefit_work_days: f64,
}

/// The Fig 22 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizonSweep {
    /// Points, shortest horizon first.
    pub points: Vec<HorizonPoint>,
}

impl HorizonSweep {
    /// The best per-day productivity improvement across horizons.
    pub fn peak_improvement(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.improvement)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// `true` if the *total shifted productivity* peaks in the interior
    /// of the sweep (fades at both ends), as the paper observes.
    pub fn interior_peak(&self) -> bool {
        let best = self
            .points
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.benefit_work_days.total_cmp(&b.benefit_work_days))
            .map(|(i, _)| i)
            .unwrap_or(0);
        best != 0 && best != self.points.len() - 1
    }
}

/// Runs the sweep on scarcity-heavy days.
pub fn run(horizons_days: &[f64], days: usize, seed: u64) -> HorizonSweep {
    let plan: Vec<Weather> = (0..days)
        .map(|i| {
            if i % 2 == 0 {
                Weather::Cloudy
            } else {
                Weather::Rainy
            }
        })
        .collect();
    let ebuff = run_scheme(Scheme::EBuff, plan_config(plan.clone(), seed), None);
    let points = horizons_days
        .iter()
        .map(|&service_days| {
            let mut policy = Baat::with_planned_aging(PlannedAging {
                service_days,
                cycles_per_day: 1.0,
            });
            let sim = Simulation::new(plan_config(plan.clone(), seed)).expect("config validated");
            let report = sim.run(&mut policy).expect("engine invariants hold");
            let improvement = report.total_work / ebuff.total_work - 1.0;
            HorizonPoint {
                service_days,
                work: report.total_work,
                improvement,
                benefit_work_days: improvement * service_days,
            }
        })
        .collect();
    HorizonSweep { points }
}

/// The paper's sweep of service horizons.
pub fn run_paper(seed: u64) -> HorizonSweep {
    run(&[200.0, 400.0, 800.0, 1600.0, 3200.0], 4, seed)
}

/// Renders the sweep.
pub fn render(s: &HorizonSweep) -> String {
    let rows: Vec<Vec<String>> = s
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0} d", p.service_days),
                format!("{:.0}", p.work),
                crate::table::pct(p.improvement),
                format!("{:.1}", p.benefit_work_days),
            ]
        })
        .collect();
    let mut out = crate::table::markdown(
        &[
            "service horizon",
            "work core-h",
            "vs e-Buff",
            "total benefit (work-days)",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\npeak planned-aging per-day benefit: {} (paper: up to ~33%) — \
         total benefit peaks in the interior: {}\n",
        crate::table::pct(s.peak_improvement()),
        s.interior_peak(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_aging_improves_on_ebuff_somewhere() {
        let s = run(&[300.0, 900.0], 2, 59);
        assert!(
            s.peak_improvement() > -0.05,
            "planned aging should roughly match or beat e-Buff, got {}",
            s.peak_improvement()
        );
    }

    #[test]
    fn points_follow_horizons() {
        let s = run(&[300.0, 900.0], 2, 59);
        assert_eq!(s.points.len(), 2);
        assert!(s.points[0].service_days < s.points[1].service_days);
    }
}
