//! Figure 10: battery cycle life under varying depth of discharge, for
//! three manufacturers (Hoppecke, Trojan, UPG).
//!
//! The paper's reading: "battery cycle life decreases by 50 % if it is
//! frequently discharged at a DoD above 50 %".

use baat_battery::{Manufacturer, MemoizedCycleLife};
use baat_units::{AmpHours, Dod};

/// Cell capacity used for the throughput column, matching the prototype's
/// 35 Ah units.
const CELL_CAPACITY_AH: f64 = 35.0;

/// One sweep point: cycle life per manufacturer at one DoD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleLifePoint {
    /// Depth of discharge in `[0, 1]`.
    pub dod: f64,
    /// Cycles to end-of-life for [Hoppecke, Trojan, UPG].
    pub cycles: [f64; 3],
    /// Lifetime Ah throughput at this DoD for [Hoppecke, Trojan, UPG] —
    /// the paper's constant-Ah rule ([31, 32]) made visible.
    pub throughput_ah: [f64; 3],
}

/// The Fig 10 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleLifeSweep {
    /// Sweep points, shallow to deep.
    pub points: Vec<CycleLifePoint>,
}

impl CycleLifeSweep {
    /// Ratio of cycle life at deep (≥50 %) vs shallow (25 %) discharge,
    /// averaged across manufacturers — the paper's headline ~0.5.
    pub fn deep_shallow_ratio(&self) -> f64 {
        let at = |target: f64| {
            self.points
                .iter()
                .min_by(|a, b| (a.dod - target).abs().total_cmp(&(b.dod - target).abs()))
                .expect("points non-empty")
        };
        let shallow = at(0.25);
        let deep = at(0.50);
        (0..3)
            .map(|i| deep.cycles[i] / shallow.cycles[i])
            .sum::<f64>()
            / 3.0
    }
}

/// Runs the sweep over `steps` DoD points from 10 % to 90 %.
///
/// Each point evaluates both cycle life and lifetime throughput; the
/// memoized curves make the throughput query reuse the cycle-life
/// evaluation instead of repeating its `powf·exp`.
pub fn run(steps: usize) -> CycleLifeSweep {
    let mut curves = Manufacturer::ALL.map(|m| MemoizedCycleLife::new(m.curve()));
    let cap = AmpHours::new(CELL_CAPACITY_AH);
    let points = (0..steps)
        .map(|i| {
            let dod = 0.10 + 0.80 * i as f64 / (steps.max(2) - 1) as f64;
            let d = Dod::new(dod).expect("sweep stays in range");
            let eval = |c: &mut MemoizedCycleLife| {
                (c.cycles_to_eol(d), c.lifetime_throughput(d, cap).as_f64())
            };
            let (h, hq) = eval(&mut curves[0]);
            let (t, tq) = eval(&mut curves[1]);
            let (u, uq) = eval(&mut curves[2]);
            CycleLifePoint {
                dod,
                cycles: [h, t, u],
                throughput_ah: [hq, tq, uq],
            }
        })
        .collect();
    CycleLifeSweep { points }
}

/// The paper's resolution: seventeen points.
pub fn run_paper() -> CycleLifeSweep {
    run(17)
}

/// Renders the sweep table plus the headline ratio.
pub fn render(sweep: &CycleLifeSweep) -> String {
    let rows: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.dod * 100.0),
                format!("{:.0}", p.cycles[0]),
                format!("{:.0}", p.cycles[1]),
                format!("{:.0}", p.cycles[2]),
                format!("{:.0}", p.throughput_ah[1]),
            ]
        })
        .collect();
    let mut out = crate::table::markdown(
        &["DoD", "Hoppecke", "Trojan", "UPG", "Trojan Ah-throughput"],
        &rows,
    );
    out.push_str(&format!(
        "\ncycle life at 50% vs 25% DoD: {} (paper: ~50%)\n",
        crate::table::pct(sweep.deep_shallow_ratio())
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_near_half() {
        let sweep = run_paper();
        let r = sweep.deep_shallow_ratio();
        assert!((0.40..0.55).contains(&r), "ratio {r}");
    }

    #[test]
    fn manufacturers_keep_fig10_order_everywhere() {
        for p in &run(9).points {
            assert!(p.cycles[0] > p.cycles[1]);
            assert!(p.cycles[1] > p.cycles[2]);
        }
    }

    #[test]
    fn memoized_sweep_matches_direct_curves_bit_for_bit() {
        use baat_units::AmpHours;
        for p in &run_paper().points {
            let d = Dod::new(p.dod).unwrap();
            for (i, m) in Manufacturer::ALL.iter().enumerate() {
                let cycles = m.curve().cycles_to_eol(d);
                let q = m
                    .curve()
                    .lifetime_throughput(d, AmpHours::new(CELL_CAPACITY_AH));
                assert_eq!(p.cycles[i].to_bits(), cycles.to_bits());
                assert_eq!(p.throughput_ah[i].to_bits(), q.as_f64().to_bits());
            }
        }
    }

    #[test]
    fn curves_decrease_with_dod() {
        let sweep = run(9);
        for pair in sweep.points.windows(2) {
            for i in 0..3 {
                assert!(pair[1].cycles[i] < pair[0].cycles[i]);
            }
        }
    }
}
