//! Minimal markdown table rendering for experiment output.

/// Renders a markdown table from a header and rows.
///
/// Column counts must match; this is an internal tool, so mismatches
/// panic rather than silently misalign.
pub fn markdown(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch");
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Formats a float with three significant decimals.
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a ratio as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows() {
        let t = markdown(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let _ = markdown(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(pct(0.2612), "26.1%");
    }
}
