//! Regenerates every figure of the paper's measurement and evaluation
//! sections and prints a markdown report (the source of EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p baat-bench --bin figures [--quick]`
//!
//! When `BAAT_OBS_DIR` is set, the Table-1 and Fig-13 sweeps run with
//! observation enabled and drop a per-scenario perf + counter + health
//! report (`<scenario>.perf.jsonl`) and an OpenMetrics snapshot
//! (`<scenario>.om`) into that directory, next to the figure output.
//! The figures themselves are bit-identical either way.

use baat_battery::Chemistry;
use baat_bench::experiments::{
    chem_ablation, fig03_05, fig10, fig12, fig13, fig14, fig15, fig16, fig17, fig18_19, fig20,
    fig21, fig22,
};

const SEED: u64 = 2015; // DSN 2015.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut sections: Vec<(&str, String)> = Vec::new();

    eprintln!("[1/12] Figs 3-5: six-month battery degradation…");
    let t = if quick {
        fig03_05::run(2, 10)
    } else {
        fig03_05::run_paper()
    };
    sections.push((
        "Figs 3–5 — measured battery degradation",
        fig03_05::render(&t),
    ));
    let li = if quick {
        fig03_05::run_chemistry(Chemistry::LiIon, 2, 10)
    } else {
        fig03_05::run_chemistry(Chemistry::LiIon, 6, 30)
    };
    sections.push((
        "Figs 3–5 (li-ion) — the same protocol on an LFP unit",
        fig03_05::render(&li),
    ));

    eprintln!("[2/12] Fig 10: cycle life vs DoD…");
    sections.push(("Fig 10 — cycle life vs depth of discharge", {
        fig10::render(&fig10::run_paper())
    }));

    eprintln!("[3/12] Fig 12: runtime profiling…");
    sections.push(("Fig 12 — runtime profiling by weather", {
        let mut body = fig12::render(&fig12::run(SEED));
        if !quick {
            body.push_str(&fig12::render_trajectories(SEED, 0.0015));
        }
        body
    }));

    let obs_dir = baat_bench::runner::obs_dir_from_env();

    eprintln!("[4/12] Fig 13: aging comparison matrix…");
    let f13 = match &obs_dir {
        Some(dir) => fig13::run_observed(SEED, dir).expect("perf reports are writable"),
        None => fig13::run(SEED),
    };
    sections.push((
        "Fig 13 — aging-metric comparison of the four schemes",
        fig13::render(&f13),
    ));

    eprintln!("[5/12] Fig 14: lifetime vs sunshine fraction…");
    let f14 = if quick {
        fig14::run(&[0.45, 0.75], 4, SEED)
    } else {
        fig14::run_paper(SEED)
    };
    sections.push((
        "Fig 14 — lifetime vs solar availability",
        fig14::render(&f14),
    ));

    eprintln!("[6/12] Fig 15: lifetime vs server-to-battery ratio…");
    let f15 = if quick {
        fig15::run(&[2.0, 6.0, 10.0], 3, SEED)
    } else {
        fig15::run_paper(SEED)
    };
    sections.push((
        "Fig 15 — lifetime vs server-to-battery ratio",
        fig15::render(&f15),
    ));

    eprintln!("[7/12] Fig 16: depreciation cost vs slowdown threshold…");
    let f16 = if quick {
        fig16::run(&[0.3, 0.5], 3, SEED)
    } else {
        fig16::run_paper(SEED)
    };
    sections.push(("Fig 16 — annual depreciation cost", fig16::render(&f16)));

    eprintln!("[8/12] Fig 17: scale-out within TCO…");
    let f17 = if quick {
        fig17::run(&[0.45, 0.85], 3, SEED)
    } else {
        fig17::run_paper(SEED)
    };
    sections.push((
        "Fig 17 — servers addable without raising TCO",
        fig17::render(&f17),
    ));

    eprintln!("[9/12] Figs 18-19: availability and SoC distribution…");
    let f1819 = if quick {
        fig18_19::run(6, SEED)
    } else {
        fig18_19::run_paper(SEED)
    };
    sections.push(("Figs 18–19 — low-SoC exposure and SoC distribution", {
        fig18_19::render(&f1819)
    }));

    eprintln!("[10/12] Fig 20: one-day throughput…");
    sections.push(("Fig 20 — compute throughput of the four schemes", {
        fig20::render(&fig20::run_paper(SEED))
    }));

    eprintln!("[11/12] Fig 21: planned aging vs DoD…");
    let f21 = if quick {
        fig21::run(&[0.4, 0.6, 0.9], 2, SEED)
    } else {
        fig21::run_paper(SEED)
    };
    sections.push(("Fig 21 — performance vs planned DoD", fig21::render(&f21)));

    eprintln!("[12/12] Fig 22: planned aging vs service horizon…");
    let f22 = if quick {
        fig22::run(&[300.0, 900.0, 2700.0], 2, SEED)
    } else {
        fig22::run_paper(SEED)
    };
    sections.push((
        "Fig 22 — planned-aging benefit vs service horizon",
        fig22::render(&f22),
    ));

    eprintln!("[+] Table 1: usage scenarios…");
    let t1_days = if quick { 7 } else { 30 };
    let t1 = match &obs_dir {
        Some(dir) => baat_bench::experiments::table1::run_observed(t1_days, SEED, dir)
            .expect("perf reports are writable"),
        None => baat_bench::experiments::table1::run(t1_days, SEED),
    };
    sections.push((
        "Table 1 — battery usage scenarios",
        baat_bench::experiments::table1::render(&t1),
    ));

    eprintln!("[+] ablations…");
    sections.push((
        "Ablations — reproduction design choices",
        baat_bench::experiments::ablations::render(SEED),
    ));

    eprintln!("[+] chemistry ablation…");
    let chem = if quick {
        chem_ablation::run(vec![baat_solar::Weather::Cloudy], SEED)
    } else {
        chem_ablation::run_paper(SEED)
    };
    sections.push((
        "Chemistry ablation — lead-acid vs li-ion banks",
        chem_ablation::render(&chem),
    ));

    println!("# BAAT reproduction — regenerated figures\n");
    println!(
        "Seed {SEED}; {} parameters. Paper targets quoted inline.\n",
        if quick { "quick" } else { "full" }
    );
    for (title, body) in sections {
        println!("## {title}\n");
        println!("{body}");
    }
    if let Some(dir) = obs_dir {
        eprintln!("[obs] per-scenario perf reports in {}", dir.display());
    }
}
