//! The management console: the reproduction's answer to the prototype's
//! "software management console built from scratch" (§V.A display
//! module). Runs one configurable scenario and prints the run summary,
//! the per-battery aging table, and an event digest; optionally dumps
//! the trace as CSV for plotting.
//!
//! ```text
//! cargo run --release -p baat-bench --bin console -- \
//!     --scheme baat --weather cloudy,rainy --seed 7 --old \
//!     --topology shared:2 --faults light --csv trace.csv --jsonl obs/
//! ```
//!
//! Subcommands (first positional argument):
//!
//! * `watch` — run the scenario live, re-rendering a per-node table of
//!   SoC, power, aging and health-check state every `--every N`
//!   simulated minutes (default 30);
//! * `diff A.jsonl B.jsonl` — compare two JSONL exports: first
//!   divergence plus per-metric deltas; exits 1 when they differ;
//! * `trace-check spans.jsonl` — validate a span export against the
//!   trace schema (sequential ids, backward-pointing parents, ordered
//!   timestamps); exits 1 on any violation;
//! * `checkpoint --dir DIR [--every STEPS]` — run the scenario writing a
//!   versioned, policy-inclusive snapshot (`step-NNNNNNNN.snap`) every N
//!   steps, plus `run.jsonl` metadata (written before the run starts, so
//!   a killed process leaves a resumable directory) and the final
//!   `events.jsonl` / `trace.jsonl` / `result.jsonl` artifacts;
//! * `resume DIR/step-NNNNNNNN.snap` — rebuild the configuration from
//!   the sibling `run.jsonl`, restore engine and policy state from the
//!   snapshot, finish the run, and rewrite the artifacts —
//!   byte-identical to never having stopped;
//! * `replay --dir DIR (--to STEP | --event INDEX)` — restore the
//!   nearest checkpoint at or before the target, re-step to it, and
//!   print the state hash (equal to a full run paused there);
//!   `--event INDEX` targets the first state containing the INDEX-th
//!   line of the recorded `events.jsonl`.
//!
//! `--jsonl DIR` runs with observation enabled and dumps the structured
//! exports — `run.jsonl` (run metadata: chemistry, scheme, seed, …),
//! `events.jsonl`, `trace.jsonl`, `metrics.jsonl`, `profile.jsonl`,
//! `spans.jsonl`, `health.jsonl`, `flight.jsonl`, and the OpenMetrics
//! snapshot `metrics.om` — into `DIR`. The run itself is bit-identical
//! either way.
//!
//! `--chemistry lead-acid|li-ion` swaps every node battery for the
//! chosen chemistry's prototype spec (default: the paper's lead-acid).
//! It composes with `--fleet` and `--faults`, is recorded in
//! `run.jsonl`, and — only when passed explicitly — registers a
//! `run.chemistry` gauge in the metric exports, so default runs keep
//! their metric set byte-identical. `console diff` reads each export's
//! sibling `run.jsonl` and labels cross-chemistry comparisons.
//!
//! `--faults light|heavy[:SEED]` layers a seeded deterministic fault
//! plan over the run (one plan per simulated day, generated for the
//! chosen topology). The plan seed defaults to `--seed`, so the same
//! command line always replays the same outages.
//!
//! `--fleet N` scales the scenario to an `N`-host fleet: proportional
//! PV, one service per host plus nine batch jobs per host per day, and
//! throttled trace recording. `console --fleet 1000 --seed 7` is a
//! deterministic 1000-host day.
//!
//! `--threads N` shards the engine's per-bank stages across `N` worker
//! threads (see `DESIGN.md` §13). Results are bit-identical at any
//! count, so the flag is a pure speed knob: it is not recorded in
//! `run.jsonl`, and checkpoints move freely between thread counts.
//! `console --fleet 1000 --threads 8` is the fast 1000-host day.
//!
//! `serve [--port P] [--linger]` runs the scenario with a live scrape
//! endpoint (`/metrics` OpenMetrics, `/healthz`, `/run` metadata) bound
//! to `127.0.0.1:P` (0 = ephemeral; the bound address is printed before
//! the run starts). With `--linger` the endpoint keeps serving the
//! final snapshot after the run completes until a client issues
//! `GET /quit` — the handshake CI's scrape smoke uses. See DESIGN.md
//! §14 for the endpoint contract.

use std::io::IsTerminal;
use std::path::{Path, PathBuf};

use baat_battery::Chemistry;
use baat_bench::{diff, jsonq, registry, trace_schema, watch};
use baat_core::Scheme;
use baat_obs::json::JsonLine;
use baat_obs::{MetricsServer, Obs, SampleValue};
use baat_sim::{
    BatteryTopology, ChemistrySpec, Event, FaultMix, FaultPlan, SimConfig, SimSnapshot, Simulation,
};
use baat_solar::Weather;
use baat_units::SimDuration;

struct Args {
    command: Command,
    scheme: Scheme,
    plan: Vec<Weather>,
    seed: u64,
    old: bool,
    topology: BatteryTopology,
    chemistry: Option<Chemistry>,
    fleet: Option<usize>,
    faults: Option<(FaultMix, Option<u64>)>,
    csv: Option<String>,
    jsonl: Option<String>,
    profile: bool,
    /// `--threads`: engine worker threads for intra-step sharding.
    /// Results are bit-identical at any count, so this is a pure
    /// speed knob and is deliberately absent from `run.jsonl`.
    threads: usize,
    /// `--every`: simulated minutes per frame for `watch`, steps per
    /// snapshot for `checkpoint` (each defaults separately when unset).
    every: Option<u64>,
    /// `--dir`: checkpoint directory for `checkpoint` / `replay`.
    dir: Option<String>,
    /// `replay --to STEP`: the target step index.
    replay_to: Option<u64>,
    /// `replay --event INDEX`: land just after the INDEX-th recorded
    /// event instead of an explicit step.
    replay_event: Option<usize>,
    /// `serve --port P`: scrape-endpoint port (0 = ephemeral).
    port: u16,
    /// `serve --linger`: keep serving the final snapshot after the run
    /// until a client requests `/quit`.
    linger: bool,
    /// `perf-trend --baseline FILE`: committed BENCH_N.json to gate
    /// against (defaults to the bench crate's committed baseline).
    trend_baseline: Option<String>,
    /// `perf-trend --history FILE`: run-registry history file
    /// (defaults to `PERF_HISTORY.jsonl`).
    trend_history: Option<String>,
    /// `perf-trend --report FILE`: the fresh perf report to judge
    /// (defaults to the latest history entry).
    trend_report: Option<String>,
}

impl Args {
    /// The effective chemistry: the `--chemistry` flag, defaulting to
    /// the paper's lead-acid prototype.
    fn chemistry(&self) -> Chemistry {
        self.chemistry.unwrap_or_default()
    }
}

enum Command {
    Run,
    Watch,
    Serve,
    Diff(String, String),
    TraceCheck(String),
    Checkpoint,
    Resume(String),
    Replay,
    PerfTrend,
}

fn usage() -> ! {
    eprintln!(
        "usage: console [watch|checkpoint] [--scheme e-buff|baat-s|baat-h|baat] \
         [--weather sunny,cloudy,rainy] [--seed N] [--old] \
         [--topology per-server|shared:K] [--chemistry lead-acid|li-ion] \
         [--fleet N] [--faults light|heavy[:SEED]] \
         [--csv PATH] [--jsonl DIR] [--profile] [--threads N] \
         [--every N] [--dir DIR]\n\
         \x20      console serve [--port P] [--linger] [scenario flags]\n\
         \x20      console diff A.jsonl B.jsonl\n\
         \x20      console trace-check spans.jsonl|metrics.om\n\
         \x20      console checkpoint --dir DIR [--every STEPS] [scenario flags]\n\
         \x20      console resume DIR/step-NNNNNNNN.snap\n\
         \x20      console replay --dir DIR (--to STEP | --event INDEX)\n\
         \x20      console perf-trend [--baseline FILE] [--history FILE] [--report FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        command: Command::Run,
        scheme: Scheme::Baat,
        plan: vec![Weather::Cloudy],
        seed: 42,
        old: false,
        topology: BatteryTopology::PerServer,
        chemistry: None,
        fleet: None,
        faults: None,
        csv: None,
        jsonl: None,
        profile: false,
        threads: 1,
        every: None,
        dir: None,
        replay_to: None,
        replay_event: None,
        port: 0,
        linger: false,
        trend_baseline: None,
        trend_history: None,
        trend_report: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    match it.peek().map(String::as_str) {
        Some("watch") => {
            args.command = Command::Watch;
            it.next();
        }
        Some("serve") => {
            args.command = Command::Serve;
            it.next();
        }
        Some("perf-trend") => {
            args.command = Command::PerfTrend;
            it.next();
        }
        Some("checkpoint") => {
            args.command = Command::Checkpoint;
            it.next();
        }
        Some("replay") => {
            args.command = Command::Replay;
            it.next();
        }
        Some("resume") => {
            it.next();
            let file = it.next().unwrap_or_else(|| usage());
            if it.next().is_some() {
                usage();
            }
            args.command = Command::Resume(file);
            return args;
        }
        Some("diff") => {
            it.next();
            let a = it.next().unwrap_or_else(|| usage());
            let b = it.next().unwrap_or_else(|| usage());
            if it.next().is_some() {
                usage();
            }
            args.command = Command::Diff(a, b);
            return args;
        }
        Some("trace-check") => {
            it.next();
            let file = it.next().unwrap_or_else(|| usage());
            if it.next().is_some() {
                usage();
            }
            args.command = Command::TraceCheck(file);
            return args;
        }
        _ => {}
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scheme" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.scheme = match v.to_lowercase().as_str() {
                    "e-buff" | "ebuff" => Scheme::EBuff,
                    "baat-s" | "baats" => Scheme::BaatS,
                    "baat-h" | "baath" => Scheme::BaatH,
                    "baat" => Scheme::Baat,
                    _ => usage(),
                };
            }
            "--weather" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.plan = v
                    .split(',')
                    .map(|w| match w.to_lowercase().as_str() {
                        "sunny" => Weather::Sunny,
                        "cloudy" => Weather::Cloudy,
                        "rainy" => Weather::Rainy,
                        _ => usage(),
                    })
                    .collect();
                if args.plan.is_empty() {
                    usage();
                }
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--old" => args.old = true,
            "--topology" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.topology = if v == "per-server" {
                    BatteryTopology::PerServer
                } else if let Some(k) = v.strip_prefix("shared:") {
                    BatteryTopology::SharedPool {
                        pools: k.parse().unwrap_or_else(|_| usage()),
                    }
                } else {
                    usage()
                };
            }
            "--chemistry" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.chemistry =
                    Some(Chemistry::parse(&v.to_lowercase()).unwrap_or_else(|| usage()));
            }
            "--fleet" => {
                args.fleet = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--faults" => {
                let v = it.next().unwrap_or_else(|| usage());
                let (mix, plan_seed) = match v.split_once(':') {
                    Some((m, s)) => (m, Some(s.parse().unwrap_or_else(|_| usage()))),
                    None => (v.as_str(), None),
                };
                let mix = FaultMix::parse(mix).unwrap_or_else(|| usage());
                args.faults = Some((mix, plan_seed));
            }
            "--csv" => args.csv = Some(it.next().unwrap_or_else(|| usage())),
            "--jsonl" => args.jsonl = Some(it.next().unwrap_or_else(|| usage())),
            "--profile" => args.profile = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t > 0)
                    .unwrap_or_else(|| usage());
            }
            "--every" => {
                args.every = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&m| m > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--dir" => args.dir = Some(it.next().unwrap_or_else(|| usage())),
            "--to" => {
                args.replay_to = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--event" => {
                args.replay_event = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--port" => {
                args.port = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--linger" => args.linger = true,
            "--baseline" => args.trend_baseline = Some(it.next().unwrap_or_else(|| usage())),
            "--history" => args.trend_history = Some(it.next().unwrap_or_else(|| usage())),
            "--report" => args.trend_report = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    args
}

/// `console diff A B`: renders first divergence + metric deltas, exits 1
/// when the documents differ. When both sides carry `run.jsonl`
/// metadata, the comparison is labelled with each run's chemistry so
/// cross-chemistry diffs are not mistaken for regressions.
fn run_diff(a: &str, b: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut doc_a = std::fs::read_to_string(a)?;
    let mut doc_b = std::fs::read_to_string(b)?;
    if let Some(banner) = diff::chemistry_banner(Path::new(a), Path::new(b)) {
        println!("{banner}");
    }
    // Perf reports compare through the schema-normalized row shape, so
    // a v1 baseline diffs cleanly against a v2 one (same rows, same
    // order) instead of diverging on the envelope rewrite.
    if let (Some(na), Some(nb)) = (
        baat_bench::perf::normalized_lines(&doc_a),
        baat_bench::perf::normalized_lines(&doc_b),
    ) {
        println!(
            "perf reports (schema v{} vs v{}) — comparing normalized rows",
            baat_bench::perf::schema_version(&doc_a).unwrap_or(0),
            baat_bench::perf::schema_version(&doc_b).unwrap_or(0),
        );
        doc_a = na.join("\n");
        doc_b = nb.join("\n");
    }
    let report = diff::diff_runs(&doc_a, &doc_b);
    print!("{}", report.render());
    if !report.identical() {
        std::process::exit(1);
    }
    Ok(())
}

/// `console trace-check FILE`: validates a span export (`*.jsonl`) or
/// an OpenMetrics exposition (`*.om`, e.g. a `/metrics` scrape body),
/// exits 1 on any schema violation.
fn run_trace_check(file: &str) -> Result<(), Box<dyn std::error::Error>> {
    let doc = std::fs::read_to_string(file)?;
    let openmetrics = file.ends_with(".om");
    let violations = if openmetrics {
        trace_schema::validate_openmetrics(&doc)
    } else {
        trace_schema::validate_trace(&doc)
    };
    if violations.is_empty() {
        if openmetrics {
            let families = doc.lines().filter(|l| l.starts_with("# TYPE ")).count();
            println!("openmetrics ok ({families} metric families)");
        } else {
            println!("trace ok ({} spans)", doc.lines().count());
        }
        Ok(())
    } else {
        for v in &violations {
            eprintln!("trace-check: {v}");
        }
        std::process::exit(1);
    }
}

/// `console perf-trend`: joins the committed perf baseline, the run
/// registry history, and the latest measurement into a per-benchmark
/// trend table, then re-applies the regression gate (exit 1 on any
/// failure). The latest measurement defaults to the newest history
/// entry; `--report FILE` judges a fresh `BAAT_PERF_OUT` report
/// instead.
fn run_perf_trend(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let baseline_path = args
        .trend_baseline
        .clone()
        .unwrap_or_else(|| baat_bench::perf::BASELINE_FILE.to_owned());
    let history_path = args
        .trend_history
        .clone()
        .unwrap_or_else(|| registry::HISTORY_FILE.to_owned());
    let baseline = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("read baseline {baseline_path}: {e}"))?;
    let history = std::fs::read_to_string(&history_path)
        .map_err(|e| format!("read history {history_path}: {e}"))?;
    let (latest, source) = match &args.trend_report {
        Some(path) => {
            let doc =
                std::fs::read_to_string(path).map_err(|e| format!("read report {path}: {e}"))?;
            let records = registry::report_benchmarks(&doc);
            if records.is_empty() {
                return Err(format!("{path}: not a perf report").into());
            }
            (records, format!("report {path}"))
        }
        None => {
            let runs = registry::parse_history(&history);
            let last = runs
                .last()
                .ok_or_else(|| format!("{history_path}: no runs registered"))?;
            (
                last.benchmarks.clone(),
                format!("history run {} ({})", last.run, last.label),
            )
        }
    };
    let trend = registry::trend(&baseline, &history, &latest);
    println!("perf trend — latest: {source}, baseline: {baseline_path}");
    print!("{}", trend.render());
    if trend.failures.is_empty() {
        println!(
            "gate ok ({} benchmarks within {}% of the baseline)",
            trend.rows.len(),
            baat_bench::perf::TOLERANCE_PCT
        );
        Ok(())
    } else {
        for f in &trend.failures {
            eprintln!("perf-trend: {f}");
        }
        std::process::exit(1);
    }
}

/// `console watch`: runs the scenario with observation on, re-rendering
/// the per-node health frame every `--every` simulated minutes.
fn run_watch(args: &Args, config: SimConfig) -> Result<(), Box<dyn std::error::Error>> {
    let obs = Obs::enabled();
    let dt = config.dt.as_secs();
    let total_steps = config.days() as u64 * 86_400 / dt;
    let mut sim = Simulation::with_obs(config, obs.clone())?;
    if args.old {
        sim.pre_age_batteries(0.55);
    }
    let mut policy = args.scheme.build_observed(&obs);
    let frame_steps = (args.every.unwrap_or(30) * 60 / dt).max(1);
    let clear = std::io::stdout().is_terminal();
    let mut done = 0u64;
    while done < total_steps {
        let n = frame_steps.min(total_steps - done);
        sim.run_steps(&mut policy, n)?;
        done += n;
        if clear {
            // Clear the terminal and re-home the cursor between frames.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", watch::render_frame(&sim)?);
        if !clear {
            println!();
        }
    }
    let name = policy.name();
    let report = sim.into_report(name)?;
    println!(
        "done: scheme {} | {} day(s) | work {:.1} core-h | unserved {}",
        report.policy, report.days, report.total_work, report.unserved_energy,
    );
    Ok(())
}

/// Everything that determines a console scenario's [`SimConfig`] and
/// policy — the run identity that checkpoint metadata must round-trip
/// so `resume` and `replay` can rebuild the exact configuration in a
/// fresh process.
struct RunSpec {
    scheme: Scheme,
    plan: Vec<Weather>,
    seed: u64,
    old: bool,
    topology: BatteryTopology,
    /// `Some` only when `--chemistry` was passed explicitly, mirroring
    /// the run path (an explicit spec and the default build the same
    /// batteries, but the config must match byte-for-byte for the
    /// snapshot's config hash to verify).
    chemistry: Option<Chemistry>,
    fleet: Option<usize>,
    /// Fault mix and the resolved plan seed.
    faults: Option<(FaultMix, u64)>,
    /// Engine worker threads. Not part of run identity (results are
    /// bit-identical at any count), so `from_metadata` restores checked
    /// runs at 1 and `--threads` only accelerates live runs.
    threads: usize,
}

impl RunSpec {
    fn from_args(args: &Args) -> Self {
        Self {
            scheme: args.scheme,
            plan: args.plan.clone(),
            seed: args.seed,
            old: args.old,
            topology: args.topology,
            chemistry: args.chemistry,
            fleet: args.fleet,
            faults: args
                .faults
                .as_ref()
                .map(|(mix, plan_seed)| (*mix, plan_seed.unwrap_or(args.seed))),
            threads: args.threads,
        }
    }

    /// Builds the scenario configuration exactly as a `console run`
    /// with the equivalent flags would.
    fn build_config(&self) -> Result<SimConfig, baat_sim::SimError> {
        let mut builder = SimConfig::builder();
        builder
            .weather_plan(self.plan.clone())
            .dt(SimDuration::from_secs(30))
            .sample_every(10)
            .topology(self.topology)
            .seed(self.seed)
            .threads(self.threads);
        if let Some(n) = self.fleet {
            // Applied after the defaults above so the fleet profile's
            // node count, PV sizing, workload and trace throttling win.
            builder.fleet(n);
        }
        if let Some(chemistry) = self.chemistry {
            // Swaps every node battery for the chemistry's prototype
            // spec; composes with --fleet (spec applies per node) and
            // --faults (plans are spec-independent).
            builder.chemistry(ChemistrySpec::new(chemistry));
        }
        if let Some((mix, plan_seed)) = &self.faults {
            // Probe-build to learn the fleet size the defaults resolve
            // to, then generate the plan for that topology.
            let probe = builder.build()?;
            builder.faults(FaultPlan::generate(
                *plan_seed,
                probe.days(),
                probe.nodes,
                self.topology.banks(probe.nodes),
                mix,
            ));
        }
        builder.build()
    }

    /// The metadata line written to a checkpoint directory's
    /// `run.jsonl`: enough to rebuild the configuration (and label
    /// `console diff` comparisons, which read the same `chemistry`
    /// field).
    fn metadata_line(&self, config: &SimConfig, every: u64) -> String {
        let mut line = JsonLine::new();
        line.str_field("chemistry", self.chemistry.unwrap_or_default().name())
            .bool_field("chemistry_explicit", self.chemistry.is_some())
            .str_field("scheme", self.scheme.name())
            .str_field(
                "weather",
                &self
                    .plan
                    .iter()
                    .map(|w| w.name())
                    .collect::<Vec<_>>()
                    .join(","),
            )
            .u64_field("seed", self.seed)
            .u64_field("days", config.days() as u64)
            .u64_field("nodes", config.nodes as u64)
            .bool_field("old", self.old)
            .str_field("topology", &topology_label(self.topology))
            .u64_field("every", every);
        if let Some(n) = self.fleet {
            line.u64_field("fleet", n as u64);
        }
        if let Some((mix, plan_seed)) = &self.faults {
            line.str_field("fault_mix", fault_mix_label(mix))
                .u64_field("fault_seed", *plan_seed);
        }
        let mut out = line.finish();
        out.push('\n');
        out
    }

    /// Rebuilds the spec from a checkpoint directory's `run.jsonl`
    /// line. Returns `None` when a required field is missing or
    /// unparseable.
    fn from_metadata(meta: &str) -> Option<Self> {
        let scheme_name = jsonq::extract_str(meta, "scheme")?;
        let scheme = Scheme::ALL.into_iter().find(|s| s.name() == scheme_name)?;
        let plan: Vec<Weather> = jsonq::extract_str(meta, "weather")?
            .split(',')
            .map(|name| Weather::ALL.into_iter().find(|w| w.name() == name))
            .collect::<Option<Vec<_>>>()?;
        if plan.is_empty() {
            return None;
        }
        let chemistry = if jsonq::extract_bool(meta, "chemistry_explicit")? {
            Some(Chemistry::parse(&jsonq::extract_str(meta, "chemistry")?)?)
        } else {
            None
        };
        let topology = parse_topology(&jsonq::extract_str(meta, "topology")?)?;
        let faults = match jsonq::extract_str(meta, "fault_mix") {
            Some(mix) => Some((
                FaultMix::parse(&mix)?,
                jsonq::extract_u64(meta, "fault_seed")?,
            )),
            None => None,
        };
        Some(Self {
            scheme,
            plan,
            seed: jsonq::extract_u64(meta, "seed")?,
            old: jsonq::extract_bool(meta, "old")?,
            topology,
            chemistry,
            fleet: jsonq::extract_u64(meta, "fleet").map(|n| n as usize),
            faults,
            threads: 1,
        })
    }
}

fn topology_label(topology: BatteryTopology) -> String {
    match topology {
        BatteryTopology::PerServer => "per-server".to_owned(),
        BatteryTopology::SharedPool { pools } => format!("shared:{pools}"),
    }
}

fn parse_topology(label: &str) -> Option<BatteryTopology> {
    if label == "per-server" {
        Some(BatteryTopology::PerServer)
    } else {
        let pools = label.strip_prefix("shared:")?.parse().ok()?;
        Some(BatteryTopology::SharedPool { pools })
    }
}

fn fault_mix_label(mix: &FaultMix) -> &'static str {
    if mix.per_day == FaultMix::light().per_day {
        "light"
    } else {
        "heavy"
    }
}

/// Reads and parses the `run.jsonl` metadata in a checkpoint directory.
fn spec_from_dir(dir: &Path) -> Result<RunSpec, Box<dyn std::error::Error>> {
    let meta_path = dir.join("run.jsonl");
    let meta = std::fs::read_to_string(&meta_path)
        .map_err(|e| format!("read {}: {e}", meta_path.display()))?;
    let line = meta
        .lines()
        .next()
        .ok_or_else(|| format!("{}: empty metadata", meta_path.display()))?;
    RunSpec::from_metadata(line)
        .ok_or_else(|| format!("{}: malformed run metadata", meta_path.display()).into())
}

/// Writes the run artifacts a finished (or resumed) checkpointed run
/// leaves behind: `events.jsonl`, `trace.jsonl` and the one-line
/// `result.jsonl` summary. A resumed run rewrites all three from step
/// zero — the snapshot carries the full event log and trace — so an
/// interrupted-and-resumed run's artifacts byte-compare against an
/// uninterrupted run's.
fn write_run_artifacts(
    dir: &Path,
    report: &baat_sim::SimReport,
) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::write(dir.join("events.jsonl"), report.events.to_jsonl())?;
    std::fs::write(dir.join("trace.jsonl"), report.recorder.to_jsonl())?;
    std::fs::write(dir.join("result.jsonl"), result_line(report))?;
    Ok(())
}

/// The `result.jsonl` summary line: the headline scalars of the run,
/// emitted deterministically for byte-comparison across resumes.
fn result_line(report: &baat_sim::SimReport) -> String {
    let mut line = JsonLine::new();
    line.str_field("policy", report.policy)
        .u64_field("days", report.days as u64)
        .f64_field("work_core_h", report.total_work)
        .u64_field("completed_jobs", report.completed_jobs)
        .u64_field("migrations", report.migrations)
        .f64_field("unserved_wh", report.unserved_energy.as_f64())
        .f64_field("grid_charge_wh", report.grid_charge_energy.as_f64())
        .f64_field("mean_damage", report.mean_damage());
    let mut out = line.finish();
    out.push('\n');
    out
}

/// Default steps between snapshots for `console checkpoint`: 120 steps
/// is one simulated hour at the console's 30 s timestep.
const DEFAULT_CHECKPOINT_EVERY: u64 = 120;

/// `console checkpoint --dir DIR [--every STEPS]`: runs the scenario,
/// writing a policy-inclusive snapshot every N steps plus the metadata
/// and final artifacts `resume` / `replay` need.
fn run_checkpoint(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let Some(dir) = args.dir.as_deref() else {
        eprintln!("checkpoint: --dir DIR is required");
        usage();
    };
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir)?;
    let every = args.every.unwrap_or(DEFAULT_CHECKPOINT_EVERY);
    let spec = RunSpec::from_args(args);
    let config = spec.build_config()?;
    // Metadata goes down before the run starts, so a killed process
    // still leaves a resumable directory.
    std::fs::write(dir.join("run.jsonl"), spec.metadata_line(&config, every))?;
    let mut sim = Simulation::new(config)?;
    if args.old {
        sim.pre_age_batteries(0.55);
    }
    let mut policy = args.scheme.build();
    let mut written = 0u64;
    let snap_dir = dir.clone();
    let report = sim.checkpoint_every(&mut policy, every, |snap| {
        let path = snap_dir.join(format!("step-{:08}.snap", snap.state.step_index));
        snap.write_file(&path)?;
        written += 1;
        Ok(())
    })?;
    write_run_artifacts(&dir, &report)?;
    println!(
        "checkpointed run complete: scheme {} | {} day(s) | {} snapshot(s) every {} steps in {}",
        report.policy,
        report.days,
        written,
        every,
        dir.display(),
    );
    println!(
        "work {:.1} core-h | jobs {} | unserved {}",
        report.total_work, report.completed_jobs, report.unserved_energy,
    );
    Ok(())
}

/// `console resume FILE`: restores the simulation (and policy decision
/// state) from a snapshot file, rebuilds the configuration from the
/// sibling `run.jsonl`, finishes the run, and rewrites the run
/// artifacts — byte-identical to never having stopped.
fn run_resume(file: &str) -> Result<(), Box<dyn std::error::Error>> {
    let path = Path::new(file);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let spec = spec_from_dir(dir)?;
    let config = spec.build_config()?;
    let snapshot = SimSnapshot::read_file(path).map_err(baat_sim::SimError::from)?;
    // Pre-aging is not re-applied: the snapshot's battery state already
    // carries the accumulated damage.
    let sim = Simulation::restore(config, &snapshot)?;
    let mut policy = spec.scheme.build();
    let restored_policy = snapshot.apply_policy_state(&mut *policy);
    let from_step = sim.step_index();
    let report = sim.run_remaining(&mut policy)?;
    write_run_artifacts(dir, &report)?;
    println!(
        "resumed {} from step {} ({}) — run complete",
        path.display(),
        from_step,
        if restored_policy {
            "policy state restored"
        } else {
            "fresh policy state"
        },
    );
    println!(
        "work {:.1} core-h | jobs {} | unserved {}",
        report.total_work, report.completed_jobs, report.unserved_energy,
    );
    Ok(())
}

/// `console replay --dir DIR (--to STEP | --event INDEX)`: restores the
/// nearest checkpoint at or before the target step, re-steps to it, and
/// prints the state hash — equal to a full run paused at that step.
fn run_replay(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let Some(dir) = args.dir.as_deref() else {
        eprintln!("replay: --dir DIR is required");
        usage();
    };
    let dir = Path::new(dir);
    let spec = spec_from_dir(dir)?;
    let config = spec.build_config()?;
    let dt = config.dt.as_secs();
    let target = match (args.replay_to, args.replay_event) {
        (Some(step), None) => step,
        (None, Some(index)) => {
            // Land on the first state that includes the INDEX-th
            // recorded event: events are stamped with their step's
            // start time, so the state just after that step is the
            // earliest one containing the event.
            let events = std::fs::read_to_string(dir.join("events.jsonl"))?;
            let line = events
                .lines()
                .nth(index)
                .ok_or_else(|| format!("events.jsonl has no line {index}"))?;
            let at_s = jsonq::extract_u64(line, "at_s")
                .ok_or_else(|| format!("events.jsonl line {index}: no at_s field"))?;
            at_s / dt + 1
        }
        _ => {
            eprintln!("replay: exactly one of --to STEP or --event INDEX is required");
            usage();
        }
    };
    // Nearest checkpoint at or before the target step.
    let mut nearest: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(step) = name
            .to_str()
            .and_then(|n| n.strip_prefix("step-"))
            .and_then(|n| n.strip_suffix(".snap"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        if step <= target && nearest.as_ref().is_none_or(|(best, _)| step > *best) {
            nearest = Some((step, entry.path()));
        }
    }
    let Some((base, snap_path)) = nearest else {
        return Err(format!(
            "{}: no checkpoint at or before step {target}",
            dir.display()
        )
        .into());
    };
    let snapshot = SimSnapshot::read_file(&snap_path).map_err(baat_sim::SimError::from)?;
    let mut sim = Simulation::restore(config, &snapshot)?;
    let mut policy = spec.scheme.build();
    snapshot.apply_policy_state(&mut *policy);
    sim.run_steps(&mut policy, target - base)?;
    println!(
        "replayed to step {target} (checkpoint {base} + {} step(s)) | t = {} s | state hash {:016x}",
        target - base,
        target * dt,
        sim.state_hash(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    match &args.command {
        Command::Diff(a, b) => return run_diff(a, b),
        Command::TraceCheck(file) => return run_trace_check(file),
        Command::Checkpoint => return run_checkpoint(&args),
        Command::Resume(file) => return run_resume(file),
        Command::Replay => return run_replay(&args),
        Command::PerfTrend => return run_perf_trend(&args),
        Command::Run | Command::Watch | Command::Serve => {}
    }
    let config = RunSpec::from_args(&args).build_config()?;

    if matches!(args.command, Command::Watch) {
        return run_watch(&args, config);
    }

    let serving = matches!(args.command, Command::Serve);
    let obs = if serving || args.jsonl.is_some() || args.profile {
        Obs::enabled()
    } else {
        Obs::disabled()
    };
    // The scrape endpoint comes up before the first step so a scraper
    // can follow the whole run; the bound address is printed (and
    // flushed) immediately for scripted clients.
    let server = if serving {
        let server = MetricsServer::start(args.port, obs.clone(), pre_run_metadata(&args))?;
        println!(
            "serving http://{}/  routes: /metrics /healthz /run /quit",
            server.addr()
        );
        std::io::Write::flush(&mut std::io::stdout())?;
        Some(server)
    } else {
        None
    };
    if args.chemistry.is_some() {
        // Registered only when --chemistry was given explicitly, so
        // default runs keep their metric set (and the CI OpenMetrics
        // golden) byte-identical. 0 = lead-acid, 1 = li-ion.
        let index = Chemistry::ALL
            .iter()
            .position(|&c| c == args.chemistry())
            .expect("every chemistry is in ALL");
        obs.gauge("run.chemistry").set(index as f64);
    }
    let mut sim = Simulation::with_obs(config, obs.clone())?;
    if args.old {
        sim.pre_age_batteries(0.55);
    }
    let mut policy = args.scheme.build_observed(&obs);
    let report = sim.run(&mut policy)?;
    if let Some(server) = &server {
        // The run is complete: swap the provisional /run payload for
        // the full metadata line a --jsonl export would have written.
        server.set_run_info(run_metadata(&args, &report));
    }

    println!("=== BAAT management console ===");
    println!(
        "scheme {} | {} day(s): {} | seed {} | {} {} batteries",
        report.policy,
        report.days,
        args.plan
            .iter()
            .map(|w| w.name())
            .collect::<Vec<_>>()
            .join(","),
        args.seed,
        if args.old { "old" } else { "new" },
        args.chemistry(),
    );
    println!();
    println!(
        "work {:.1} core-h | jobs {} | migrations {} | unserved {} | grid charge {}",
        report.total_work,
        report.completed_jobs,
        report.migrations,
        report.unserved_energy,
        report.grid_charge_energy,
    );

    println!("\nper-node battery table (paper Table 2 view):");
    println!(
        "{:<5} {:>8} {:>9} {:>8} {:>7} {:>9} {:>10} {:>9}",
        "node", "damage", "capacity", "NAT", "CF", "deep <40%", "downtime", "cutoffs"
    );
    for n in &report.nodes {
        println!(
            "{:<5} {:>8.4} {:>8.1}% {:>8.4} {:>7} {:>9} {:>10} {:>9}",
            n.node,
            n.damage,
            n.capacity_fraction * 100.0,
            n.lifetime_metrics.nat,
            n.lifetime_metrics
                .cf
                .map_or("—".to_owned(), |v| format!("{v:.2}")),
            n.deep_discharge_time,
            n.downtime,
            n.cutoff_events,
        );
    }

    println!("\nevent digest:");
    let count = |pred: fn(&Event) -> bool| report.events.count(pred);
    println!(
        "  shutdowns {}  restarts {}  dvfs changes {}  migrations {}  cutoffs {}  queue overflows {}",
        count(|e| matches!(e, Event::ServerShutdown { .. })),
        count(|e| matches!(e, Event::ServerRestart { .. })),
        count(|e| matches!(e, Event::DvfsChanged { .. })),
        count(|e| matches!(e, Event::MigrationStarted { .. })),
        count(|e| matches!(e, Event::BatteryCutoff { .. })),
        count(|e| matches!(e, Event::PlacementFailed { .. })),
    );
    let rejected = report.events.count(|e| match e {
        Event::Action { outcome } => outcome.is_rejected(),
        _ => false,
    });
    if rejected > 0 {
        println!("  rejected actions {rejected}");
    }
    if args.faults.is_some() {
        println!(
            "  faults injected {}  cleared {}  degraded transitions {}",
            count(|e| matches!(e, Event::FaultInjected { .. })),
            count(|e| matches!(e, Event::FaultCleared { .. })),
            count(|e| matches!(e, Event::DegradedMode { .. })),
        );
    }

    if args.profile {
        println!("\nper-stage profile:");
        println!(
            "{:<16} {:>9} {:>12} {:>12}",
            "stage", "calls", "ns/call", "total ms"
        );
        for s in obs.stage_stats() {
            println!(
                "{:<16} {:>9} {:>12} {:>12.3}",
                s.stage.name(),
                s.calls,
                s.mean_ns(),
                s.total_ns as f64 / 1e6,
            );
        }
        print_exec_profile(&obs);
    }

    if let Some(path) = &args.csv {
        std::fs::write(path, report.recorder.to_csv())?;
        println!(
            "\ntrace written to {path} ({} samples)",
            report.recorder.len()
        );
    }

    if let Some(dir) = &args.jsonl {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("run.jsonl"), run_metadata(&args, &report))?;
        std::fs::write(dir.join("events.jsonl"), report.events.to_jsonl())?;
        std::fs::write(dir.join("trace.jsonl"), report.recorder.to_jsonl())?;
        std::fs::write(dir.join("metrics.jsonl"), obs.metrics_jsonl())?;
        std::fs::write(dir.join("profile.jsonl"), obs.profile_jsonl())?;
        std::fs::write(dir.join("spans.jsonl"), obs.spans_jsonl())?;
        std::fs::write(dir.join("health.jsonl"), obs.health_jsonl())?;
        std::fs::write(dir.join("flight.jsonl"), obs.flight_jsonl())?;
        std::fs::write(dir.join("metrics.om"), obs.metrics_openmetrics())?;
        println!(
            "\nstructured exports written to {} (run, events, trace, metrics, \
             profile, spans, health, flight, metrics.om)",
            dir.display()
        );
    }

    if let Some(server) = server {
        if args.linger {
            println!("\nrun complete — still serving; GET /quit to stop");
            std::io::Write::flush(&mut std::io::stdout())?;
            server.wait_for_quit();
        }
        server.shutdown();
    }
    Ok(())
}

/// The provisional `/run` payload served while the simulation is still
/// stepping: the flags that identify the run (the full metadata line
/// replaces it once the report exists).
fn pre_run_metadata(args: &Args) -> String {
    let mut line = JsonLine::new();
    line.str_field("state", "running")
        .str_field("chemistry", args.chemistry().name())
        .str_field("scheme", args.scheme.name())
        .str_field(
            "weather",
            &args
                .plan
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(","),
        )
        .u64_field("seed", args.seed)
        .u64_field("threads", args.threads as u64)
        .bool_field("old", args.old);
    if let Some(n) = args.fleet {
        line.u64_field("fleet", n as u64);
    }
    line.finish()
}

/// Renders the `exec.*` pool summary under `--profile`: where the
/// sharded stages' wall time went (busy vs merge wait), per worker, and
/// the parallel efficiency of the pool — the number that explains a
/// sharded run stepping *slower* than the sequential path (see
/// BENCH history: `simulated_day/BAAT-sharded`). Prints nothing for
/// sequential runs, which register no `exec.*` metrics.
fn print_exec_profile(obs: &Obs) {
    let snapshot = obs.snapshot();
    let gauge = |name: &str| {
        snapshot.iter().find(|s| s.name == name).and_then(|s| {
            if let SampleValue::Gauge(v) = s.value {
                Some(v)
            } else {
                None
            }
        })
    };
    let counter = |name: &str| {
        snapshot.iter().find(|s| s.name == name).and_then(|s| {
            if let SampleValue::Counter(v) = s.value {
                Some(v)
            } else {
                None
            }
        })
    };
    let Some(threads) = gauge("exec.pool.threads") else {
        return;
    };
    let threads = threads as usize;
    let wall_ns = gauge("exec.pool.wall_ns").unwrap_or(0.0);
    let merge_wait_ns = gauge("exec.pool.merge_wait_ns").unwrap_or(0.0);
    let batches = gauge("exec.pool.batches").unwrap_or(0.0);
    println!("\nexec pool ({threads} threads):");
    println!(
        "  {batches:.0} batches | wall {:.3} ms | caller merge wait {:.3} ms",
        wall_ns / 1e6,
        merge_wait_ns / 1e6,
    );
    let mut busy_total = 0.0;
    for w in 0..threads {
        let busy = gauge(&format!("exec.worker.{w}.busy_ns")).unwrap_or(0.0);
        let tasks = gauge(&format!("exec.worker.{w}.tasks")).unwrap_or(0.0);
        busy_total += busy;
        let role = if w == 0 { "caller" } else { "worker" };
        println!(
            "  thread {w} ({role}): busy {:.3} ms | {tasks:.0} tasks",
            busy / 1e6,
        );
    }
    if wall_ns > 0.0 {
        // Busy time across all threads over perfectly-parallel wall
        // time: 1.0 means every thread worked the whole batch, low
        // values mean dispatch overhead and merge waits dominate —
        // the pool slows the step loop down.
        println!(
            "  pool efficiency {:.2} (busy {:.3} ms / {threads} threads x wall {:.3} ms)",
            busy_total / (wall_ns * threads as f64),
            busy_total / 1e6,
            wall_ns / 1e6,
        );
    }
    let stages = [
        ("battery_step", "exec.merge_wait.battery_step_ns"),
        ("fleet_refresh", "exec.merge_wait.fleet_refresh_ns"),
        ("view", "exec.merge_wait.view_ns"),
    ];
    let waits: Vec<String> = stages
        .iter()
        .filter_map(|(label, name)| {
            counter(name).map(|ns| format!("{label} {:.3} ms", ns as f64 / 1e6))
        })
        .collect();
    if !waits.is_empty() {
        println!("  merge wait by stage: {}", waits.join(" | "));
    }
    if let Some(imbalance) = gauge("exec.shard.imbalance_x1000") {
        println!(
            "  shard imbalance (latest sampled step): {:.2}x slowest/mean",
            imbalance / 1000.0
        );
    }
}

/// The `run.jsonl` metadata line written next to every `--jsonl` export:
/// one flat object identifying the run (chemistry, scheme, weather,
/// seed, topology, fleet, faults), so `console diff` can label
/// cross-chemistry comparisons and scripts can index export
/// directories without re-parsing command lines.
fn run_metadata(args: &Args, report: &baat_sim::SimReport) -> String {
    let mut line = JsonLine::new();
    line.str_field("chemistry", args.chemistry().name())
        .str_field("scheme", report.policy)
        .str_field(
            "weather",
            &args
                .plan
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(","),
        )
        .u64_field("seed", args.seed)
        .u64_field("days", report.days as u64)
        .u64_field("nodes", report.nodes.len() as u64)
        .bool_field("old", args.old);
    if let Some(n) = args.fleet {
        line.u64_field("fleet", n as u64);
    }
    if let Some((mix, plan_seed)) = &args.faults {
        line.u64_field("faults_per_day", mix.per_day as u64)
            .u64_field("fault_seed", plan_seed.unwrap_or(args.seed));
    }
    let mut out = line.finish();
    out.push('\n');
    out
}
