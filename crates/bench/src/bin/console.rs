//! The management console: the reproduction's answer to the prototype's
//! "software management console built from scratch" (§V.A display
//! module). Runs one configurable scenario and prints the run summary,
//! the per-battery aging table, and an event digest; optionally dumps
//! the trace as CSV for plotting.
//!
//! ```text
//! cargo run --release -p baat-bench --bin console -- \
//!     --scheme baat --weather cloudy,rainy --seed 7 --old \
//!     --topology shared:2 --faults light --csv trace.csv --jsonl obs/
//! ```
//!
//! Subcommands (first positional argument):
//!
//! * `watch` — run the scenario live, re-rendering a per-node table of
//!   SoC, power, aging and health-check state every `--every N`
//!   simulated minutes (default 30);
//! * `diff A.jsonl B.jsonl` — compare two JSONL exports: first
//!   divergence plus per-metric deltas; exits 1 when they differ;
//! * `trace-check spans.jsonl` — validate a span export against the
//!   trace schema (sequential ids, backward-pointing parents, ordered
//!   timestamps); exits 1 on any violation.
//!
//! `--jsonl DIR` runs with observation enabled and dumps the structured
//! exports — `run.jsonl` (run metadata: chemistry, scheme, seed, …),
//! `events.jsonl`, `trace.jsonl`, `metrics.jsonl`, `profile.jsonl`,
//! `spans.jsonl`, `health.jsonl`, `flight.jsonl`, and the OpenMetrics
//! snapshot `metrics.om` — into `DIR`. The run itself is bit-identical
//! either way.
//!
//! `--chemistry lead-acid|li-ion` swaps every node battery for the
//! chosen chemistry's prototype spec (default: the paper's lead-acid).
//! It composes with `--fleet` and `--faults`, is recorded in
//! `run.jsonl`, and — only when passed explicitly — registers a
//! `run.chemistry` gauge in the metric exports, so default runs keep
//! their metric set byte-identical. `console diff` reads each export's
//! sibling `run.jsonl` and labels cross-chemistry comparisons.
//!
//! `--faults light|heavy[:SEED]` layers a seeded deterministic fault
//! plan over the run (one plan per simulated day, generated for the
//! chosen topology). The plan seed defaults to `--seed`, so the same
//! command line always replays the same outages.
//!
//! `--fleet N` scales the scenario to an `N`-host fleet: proportional
//! PV, one service per host plus nine batch jobs per host per day, and
//! throttled trace recording. `console --fleet 1000 --seed 7` is a
//! deterministic 1000-host day.

use std::io::IsTerminal;

use baat_battery::Chemistry;
use baat_bench::{diff, jsonq, trace_schema, watch};
use baat_core::Scheme;
use baat_obs::json::JsonLine;
use baat_obs::Obs;
use baat_sim::{BatteryTopology, ChemistrySpec, Event, FaultMix, FaultPlan, SimConfig, Simulation};
use baat_solar::Weather;
use baat_units::SimDuration;

struct Args {
    command: Command,
    scheme: Scheme,
    plan: Vec<Weather>,
    seed: u64,
    old: bool,
    topology: BatteryTopology,
    chemistry: Option<Chemistry>,
    fleet: Option<usize>,
    faults: Option<(FaultMix, Option<u64>)>,
    csv: Option<String>,
    jsonl: Option<String>,
    profile: bool,
    every_minutes: u64,
}

impl Args {
    /// The effective chemistry: the `--chemistry` flag, defaulting to
    /// the paper's lead-acid prototype.
    fn chemistry(&self) -> Chemistry {
        self.chemistry.unwrap_or_default()
    }
}

enum Command {
    Run,
    Watch,
    Diff(String, String),
    TraceCheck(String),
}

fn usage() -> ! {
    eprintln!(
        "usage: console [watch] [--scheme e-buff|baat-s|baat-h|baat] \
         [--weather sunny,cloudy,rainy] [--seed N] [--old] \
         [--topology per-server|shared:K] [--chemistry lead-acid|li-ion] \
         [--fleet N] [--faults light|heavy[:SEED]] \
         [--csv PATH] [--jsonl DIR] [--profile] [--every MINUTES]\n\
         \x20      console diff A.jsonl B.jsonl\n\
         \x20      console trace-check spans.jsonl"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        command: Command::Run,
        scheme: Scheme::Baat,
        plan: vec![Weather::Cloudy],
        seed: 42,
        old: false,
        topology: BatteryTopology::PerServer,
        chemistry: None,
        fleet: None,
        faults: None,
        csv: None,
        jsonl: None,
        profile: false,
        every_minutes: 30,
    };
    let mut it = std::env::args().skip(1).peekable();
    match it.peek().map(String::as_str) {
        Some("watch") => {
            args.command = Command::Watch;
            it.next();
        }
        Some("diff") => {
            it.next();
            let a = it.next().unwrap_or_else(|| usage());
            let b = it.next().unwrap_or_else(|| usage());
            if it.next().is_some() {
                usage();
            }
            args.command = Command::Diff(a, b);
            return args;
        }
        Some("trace-check") => {
            it.next();
            let file = it.next().unwrap_or_else(|| usage());
            if it.next().is_some() {
                usage();
            }
            args.command = Command::TraceCheck(file);
            return args;
        }
        _ => {}
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scheme" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.scheme = match v.to_lowercase().as_str() {
                    "e-buff" | "ebuff" => Scheme::EBuff,
                    "baat-s" | "baats" => Scheme::BaatS,
                    "baat-h" | "baath" => Scheme::BaatH,
                    "baat" => Scheme::Baat,
                    _ => usage(),
                };
            }
            "--weather" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.plan = v
                    .split(',')
                    .map(|w| match w.to_lowercase().as_str() {
                        "sunny" => Weather::Sunny,
                        "cloudy" => Weather::Cloudy,
                        "rainy" => Weather::Rainy,
                        _ => usage(),
                    })
                    .collect();
                if args.plan.is_empty() {
                    usage();
                }
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--old" => args.old = true,
            "--topology" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.topology = if v == "per-server" {
                    BatteryTopology::PerServer
                } else if let Some(k) = v.strip_prefix("shared:") {
                    BatteryTopology::SharedPool {
                        pools: k.parse().unwrap_or_else(|_| usage()),
                    }
                } else {
                    usage()
                };
            }
            "--chemistry" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.chemistry =
                    Some(Chemistry::parse(&v.to_lowercase()).unwrap_or_else(|| usage()));
            }
            "--fleet" => {
                args.fleet = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--faults" => {
                let v = it.next().unwrap_or_else(|| usage());
                let (mix, plan_seed) = match v.split_once(':') {
                    Some((m, s)) => (m, Some(s.parse().unwrap_or_else(|_| usage()))),
                    None => (v.as_str(), None),
                };
                let mix = FaultMix::parse(mix).unwrap_or_else(|| usage());
                args.faults = Some((mix, plan_seed));
            }
            "--csv" => args.csv = Some(it.next().unwrap_or_else(|| usage())),
            "--jsonl" => args.jsonl = Some(it.next().unwrap_or_else(|| usage())),
            "--profile" => args.profile = true,
            "--every" => {
                args.every_minutes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&m| m > 0)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    args
}

/// The chemistry recorded in the `run.jsonl` sitting next to an export
/// file, when that metadata exists (exports predating it have none).
fn sibling_chemistry(export: &str) -> Option<String> {
    let meta = std::path::Path::new(export).parent()?.join("run.jsonl");
    let line = std::fs::read_to_string(meta).ok()?;
    jsonq::extract_str(line.lines().next()?, "chemistry")
}

/// `console diff A B`: renders first divergence + metric deltas, exits 1
/// when the documents differ. When both sides carry `run.jsonl`
/// metadata, the comparison is labelled with each run's chemistry so
/// cross-chemistry diffs are not mistaken for regressions.
fn run_diff(a: &str, b: &str) -> Result<(), Box<dyn std::error::Error>> {
    let doc_a = std::fs::read_to_string(a)?;
    let doc_b = std::fs::read_to_string(b)?;
    if let (Some(chem_a), Some(chem_b)) = (sibling_chemistry(a), sibling_chemistry(b)) {
        if chem_a == chem_b {
            println!("chemistry: {chem_a} (both runs)");
        } else {
            println!("chemistry: A={chem_a} B={chem_b} — cross-chemistry comparison");
        }
    }
    let report = diff::diff_runs(&doc_a, &doc_b);
    print!("{}", report.render());
    if !report.identical() {
        std::process::exit(1);
    }
    Ok(())
}

/// `console trace-check FILE`: validates a span export, exits 1 on any
/// schema violation.
fn run_trace_check(file: &str) -> Result<(), Box<dyn std::error::Error>> {
    let doc = std::fs::read_to_string(file)?;
    let violations = trace_schema::validate_trace(&doc);
    if violations.is_empty() {
        println!("trace ok ({} spans)", doc.lines().count());
        Ok(())
    } else {
        for v in &violations {
            eprintln!("trace-check: {v}");
        }
        std::process::exit(1);
    }
}

/// `console watch`: runs the scenario with observation on, re-rendering
/// the per-node health frame every `--every` simulated minutes.
fn run_watch(args: &Args, config: SimConfig) -> Result<(), Box<dyn std::error::Error>> {
    let obs = Obs::enabled();
    let dt = config.dt.as_secs();
    let total_steps = config.days() as u64 * 86_400 / dt;
    let mut sim = Simulation::with_obs(config, obs.clone())?;
    if args.old {
        sim.pre_age_batteries(0.55);
    }
    let mut policy = args.scheme.build_observed(&obs);
    let frame_steps = (args.every_minutes * 60 / dt).max(1);
    let clear = std::io::stdout().is_terminal();
    let mut done = 0u64;
    while done < total_steps {
        let n = frame_steps.min(total_steps - done);
        sim.run_steps(&mut policy, n)?;
        done += n;
        if clear {
            // Clear the terminal and re-home the cursor between frames.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", watch::render_frame(&sim)?);
        if !clear {
            println!();
        }
    }
    let name = policy.name();
    let report = sim.into_report(name)?;
    println!(
        "done: scheme {} | {} day(s) | work {:.1} core-h | unserved {}",
        report.policy, report.days, report.total_work, report.unserved_energy,
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    match &args.command {
        Command::Diff(a, b) => return run_diff(a, b),
        Command::TraceCheck(file) => return run_trace_check(file),
        Command::Run | Command::Watch => {}
    }
    let mut builder = SimConfig::builder();
    builder
        .weather_plan(args.plan.clone())
        .dt(SimDuration::from_secs(30))
        .sample_every(10)
        .topology(args.topology)
        .seed(args.seed);
    if let Some(n) = args.fleet {
        // Applied after the defaults above so the fleet profile's node
        // count, PV sizing, workload and trace throttling win.
        builder.fleet(n);
    }
    if let Some(chemistry) = args.chemistry {
        // Swaps every node battery for the chemistry's prototype spec;
        // composes with --fleet (spec applies per node) and --faults
        // (plans are spec-independent).
        builder.chemistry(ChemistrySpec::new(chemistry));
    }
    if let Some((mix, plan_seed)) = &args.faults {
        // Probe-build to learn the fleet size the defaults resolve to,
        // then generate the plan for that topology.
        let probe = builder.build()?;
        builder.faults(FaultPlan::generate(
            plan_seed.unwrap_or(args.seed),
            probe.days(),
            probe.nodes,
            args.topology.banks(probe.nodes),
            mix,
        ));
    }
    let config = builder.build()?;

    if matches!(args.command, Command::Watch) {
        return run_watch(&args, config);
    }

    let obs = if args.jsonl.is_some() || args.profile {
        Obs::enabled()
    } else {
        Obs::disabled()
    };
    if args.chemistry.is_some() {
        // Registered only when --chemistry was given explicitly, so
        // default runs keep their metric set (and the CI OpenMetrics
        // golden) byte-identical. 0 = lead-acid, 1 = li-ion.
        let index = Chemistry::ALL
            .iter()
            .position(|&c| c == args.chemistry())
            .expect("every chemistry is in ALL");
        obs.gauge("run.chemistry").set(index as f64);
    }
    let mut sim = Simulation::with_obs(config, obs.clone())?;
    if args.old {
        sim.pre_age_batteries(0.55);
    }
    let mut policy = args.scheme.build_observed(&obs);
    let report = sim.run(&mut policy)?;

    println!("=== BAAT management console ===");
    println!(
        "scheme {} | {} day(s): {} | seed {} | {} {} batteries",
        report.policy,
        report.days,
        args.plan
            .iter()
            .map(|w| w.name())
            .collect::<Vec<_>>()
            .join(","),
        args.seed,
        if args.old { "old" } else { "new" },
        args.chemistry(),
    );
    println!();
    println!(
        "work {:.1} core-h | jobs {} | migrations {} | unserved {} | grid charge {}",
        report.total_work,
        report.completed_jobs,
        report.migrations,
        report.unserved_energy,
        report.grid_charge_energy,
    );

    println!("\nper-node battery table (paper Table 2 view):");
    println!(
        "{:<5} {:>8} {:>9} {:>8} {:>7} {:>9} {:>10} {:>9}",
        "node", "damage", "capacity", "NAT", "CF", "deep <40%", "downtime", "cutoffs"
    );
    for n in &report.nodes {
        println!(
            "{:<5} {:>8.4} {:>8.1}% {:>8.4} {:>7} {:>9} {:>10} {:>9}",
            n.node,
            n.damage,
            n.capacity_fraction * 100.0,
            n.lifetime_metrics.nat,
            n.lifetime_metrics
                .cf
                .map_or("—".to_owned(), |v| format!("{v:.2}")),
            n.deep_discharge_time,
            n.downtime,
            n.cutoff_events,
        );
    }

    println!("\nevent digest:");
    let count = |pred: fn(&Event) -> bool| report.events.count(pred);
    println!(
        "  shutdowns {}  restarts {}  dvfs changes {}  migrations {}  cutoffs {}  queue overflows {}",
        count(|e| matches!(e, Event::ServerShutdown { .. })),
        count(|e| matches!(e, Event::ServerRestart { .. })),
        count(|e| matches!(e, Event::DvfsChanged { .. })),
        count(|e| matches!(e, Event::MigrationStarted { .. })),
        count(|e| matches!(e, Event::BatteryCutoff { .. })),
        count(|e| matches!(e, Event::PlacementFailed { .. })),
    );
    let rejected = report.events.count(|e| match e {
        Event::Action { outcome } => outcome.is_rejected(),
        _ => false,
    });
    if rejected > 0 {
        println!("  rejected actions {rejected}");
    }
    if args.faults.is_some() {
        println!(
            "  faults injected {}  cleared {}  degraded transitions {}",
            count(|e| matches!(e, Event::FaultInjected { .. })),
            count(|e| matches!(e, Event::FaultCleared { .. })),
            count(|e| matches!(e, Event::DegradedMode { .. })),
        );
    }

    if args.profile {
        println!("\nper-stage profile:");
        println!(
            "{:<16} {:>9} {:>12} {:>12}",
            "stage", "calls", "ns/call", "total ms"
        );
        for s in obs.stage_stats() {
            println!(
                "{:<16} {:>9} {:>12} {:>12.3}",
                s.stage.name(),
                s.calls,
                s.mean_ns(),
                s.total_ns as f64 / 1e6,
            );
        }
    }

    if let Some(path) = &args.csv {
        std::fs::write(path, report.recorder.to_csv())?;
        println!(
            "\ntrace written to {path} ({} samples)",
            report.recorder.len()
        );
    }

    if let Some(dir) = &args.jsonl {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("run.jsonl"), run_metadata(&args, &report))?;
        std::fs::write(dir.join("events.jsonl"), report.events.to_jsonl())?;
        std::fs::write(dir.join("trace.jsonl"), report.recorder.to_jsonl())?;
        std::fs::write(dir.join("metrics.jsonl"), obs.metrics_jsonl())?;
        std::fs::write(dir.join("profile.jsonl"), obs.profile_jsonl())?;
        std::fs::write(dir.join("spans.jsonl"), obs.spans_jsonl())?;
        std::fs::write(dir.join("health.jsonl"), obs.health_jsonl())?;
        std::fs::write(dir.join("flight.jsonl"), obs.flight_jsonl())?;
        std::fs::write(dir.join("metrics.om"), obs.metrics_openmetrics())?;
        println!(
            "\nstructured exports written to {} (run, events, trace, metrics, \
             profile, spans, health, flight, metrics.om)",
            dir.display()
        );
    }
    Ok(())
}

/// The `run.jsonl` metadata line written next to every `--jsonl` export:
/// one flat object identifying the run (chemistry, scheme, weather,
/// seed, topology, fleet, faults), so `console diff` can label
/// cross-chemistry comparisons and scripts can index export
/// directories without re-parsing command lines.
fn run_metadata(args: &Args, report: &baat_sim::SimReport) -> String {
    let mut line = JsonLine::new();
    line.str_field("chemistry", args.chemistry().name())
        .str_field("scheme", report.policy)
        .str_field(
            "weather",
            &args
                .plan
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(","),
        )
        .u64_field("seed", args.seed)
        .u64_field("days", report.days as u64)
        .u64_field("nodes", report.nodes.len() as u64)
        .bool_field("old", args.old);
    if let Some(n) = args.fleet {
        line.u64_field("fleet", n as u64);
    }
    if let Some((mix, plan_seed)) = &args.faults {
        line.u64_field("faults_per_day", mix.per_day as u64)
            .u64_field("fault_seed", plan_seed.unwrap_or(args.seed));
    }
    let mut out = line.finish();
    out.push('\n');
    out
}
