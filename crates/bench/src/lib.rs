//! Experiment harness for the BAAT reproduction: one module per paper
//! figure, shared by the `figures` binary and the Criterion benches.

#![forbid(unsafe_code)]

pub mod diff;
pub mod experiments;
pub mod jsonq;
pub mod perf;
pub mod registry;
pub mod runner;
pub mod table;
pub mod trace_schema;
pub mod watch;
