//! Experiment harness for the BAAT reproduction: one module per paper
//! figure, shared by the `figures` binary and the Criterion benches.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod perf;
pub mod runner;
pub mod table;
