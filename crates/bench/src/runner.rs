//! Shared experiment plumbing: standard configurations and scheme runs.

use baat_core::Scheme;
use baat_sim::{SimConfig, SimReport, Simulation};
use baat_solar::Weather;
use baat_units::SimDuration;

/// Pre-aging damage used for the paper's "old" battery stage (§VI.B ran
/// its aged-battery comparison in October, roughly six months of cycling
/// after the April setup — about 0.55 damage in our model).
pub const OLD_BATTERY_DAMAGE: f64 = 0.55;

/// Standard experiment timestep: 30 simulated seconds balances battery
/// dynamics fidelity against sweep runtime.
pub const EXPERIMENT_DT: SimDuration = SimDuration::from_secs(30);

/// Builds the standard prototype-day configuration used across
/// experiments.
pub fn day_config(weather: Weather, seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![weather])
        .dt(EXPERIMENT_DT)
        .sample_every(20)
        .seed(seed);
    b.build().expect("experiment defaults are valid")
}

/// Builds a multi-day configuration with the given weather plan.
pub fn plan_config(plan: Vec<Weather>, seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(plan)
        .dt(EXPERIMENT_DT)
        .sample_every(40)
        .seed(seed);
    b.build().expect("experiment defaults are valid")
}

/// Runs one scheme on one configuration, optionally pre-aging the
/// batteries to the "old" stage first.
pub fn run_scheme(scheme: Scheme, config: SimConfig, pre_age: Option<f64>) -> SimReport {
    let mut sim = Simulation::new(config).expect("config validated by builder");
    if let Some(damage) = pre_age {
        sim.pre_age_batteries(damage);
    }
    let mut policy = scheme.build();
    sim.run(&mut policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_config_is_one_day() {
        let c = day_config(Weather::Cloudy, 1);
        assert_eq!(c.days(), 1);
        assert_eq!(c.dt, EXPERIMENT_DT);
    }

    #[test]
    fn run_scheme_produces_report() {
        let report = run_scheme(Scheme::EBuff, day_config(Weather::Sunny, 2), None);
        assert_eq!(report.policy, "e-Buff");
        assert!(report.total_work > 0.0);
    }

    #[test]
    fn pre_age_flows_through() {
        let report = run_scheme(
            Scheme::EBuff,
            day_config(Weather::Sunny, 2),
            Some(OLD_BATTERY_DAMAGE),
        );
        assert!(report.mean_damage() >= OLD_BATTERY_DAMAGE);
    }
}
