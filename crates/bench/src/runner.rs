//! Shared experiment plumbing: standard configurations, scheme runs,
//! and the parallel scenario runner.
//!
//! # Parallelism and determinism
//!
//! Figure and ablation sweeps are embarrassingly parallel: every
//! scenario owns its full simulation state and its own seed, so
//! [`run_scenarios`] fans them out across a [`baat_exec::ExecPool`] —
//! the same worker pool the engine uses for intra-step sharding.
//! Determinism is preserved by construction — a scenario's result is a
//! pure function of its [`Scenario`] value, the pool returns results in
//! item order, and nothing about scheduling order can leak into a
//! [`SimReport`]. The same scenario list therefore produces
//! **bit-identical** reports on 1 thread and on N (verified by
//! `tests/determinism.rs`).
//!
//! Thread count comes from `BAAT_RUNNER_THREADS` when set, else from
//! [`std::thread::available_parallelism`].

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use baat_battery::Chemistry;
use baat_core::Scheme;
use baat_obs::json::JsonLine;
use baat_obs::Obs;
use baat_rng::derive_seed;
use baat_sim::{
    ChemistrySpec, FaultMix, FaultPlan, SimConfig, SimError, SimReport, SimSnapshot, Simulation,
    SnapshotError,
};
use baat_solar::Weather;
use baat_units::SimDuration;

/// Pre-aging damage used for the paper's "old" battery stage (§VI.B ran
/// its aged-battery comparison in October, roughly six months of cycling
/// after the April setup — about 0.55 damage in our model).
pub const OLD_BATTERY_DAMAGE: f64 = 0.55;

/// Standard experiment timestep: 30 simulated seconds balances battery
/// dynamics fidelity against sweep runtime.
pub const EXPERIMENT_DT: SimDuration = SimDuration::from_secs(30);

/// Builds the standard prototype-day configuration used across
/// experiments.
pub fn day_config(weather: Weather, seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![weather])
        .dt(EXPERIMENT_DT)
        .sample_every(20)
        .seed(seed);
    b.build().expect("experiment defaults are valid")
}

/// [`day_config`] with the node batteries swapped for `chemistry`'s
/// prototype spec — everything else (weather, timestep, sampling, seed)
/// is identical, so a lead-acid vs li-ion pair is a pure chemistry
/// ablation.
pub fn chemistry_day_config(chemistry: Chemistry, weather: Weather, seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![weather])
        .dt(EXPERIMENT_DT)
        .sample_every(20)
        .seed(seed)
        .chemistry(ChemistrySpec::new(chemistry));
    b.build().expect("experiment defaults are valid")
}

/// [`plan_config`] with the node batteries swapped for `chemistry`'s
/// prototype spec (see [`chemistry_day_config`]).
pub fn chemistry_plan_config(chemistry: Chemistry, plan: Vec<Weather>, seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(plan)
        .dt(EXPERIMENT_DT)
        .sample_every(40)
        .seed(seed)
        .chemistry(ChemistrySpec::new(chemistry));
    b.build().expect("experiment defaults are valid")
}

/// [`day_config`] with a seeded fault plan layered on top: the same
/// weather, timestep and sampling cadence, plus `mix.per_day` faults
/// generated over the default 6-node / per-server topology. The plan is
/// a pure function of `seed`, so faulted sweeps replay exactly.
pub fn faulted_day_config(weather: Weather, seed: u64, mix: &FaultMix) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![weather])
        .dt(EXPERIMENT_DT)
        .sample_every(20)
        .seed(seed)
        .faults(FaultPlan::generate(seed, 1, 6, 6, mix));
    b.build().expect("experiment defaults are valid")
}

/// Builds a clean/faulted scenario pair per scheme — the degradation
/// ablation matrix. Both cells of a pair share the seed, so the fault
/// plan is the only thing that differs; the clean cell always precedes
/// its faulted twin in the returned order.
pub fn fault_matrix(
    schemes: &[Scheme],
    weather: Weather,
    seed: u64,
    mix: &FaultMix,
) -> Vec<Scenario> {
    let mut out = Vec::with_capacity(schemes.len() * 2);
    for &scheme in schemes {
        out.push(Scenario::new(scheme, day_config(weather, seed)));
        out.push(Scenario::new(
            scheme,
            faulted_day_config(weather, seed, mix),
        ));
    }
    out
}

/// Builds a single-day fleet-scale configuration: `nodes` hosts with
/// proportionally scaled PV and workload (see
/// [`baat_sim::SimConfigBuilder::fleet`]), the standard experiment
/// timestep, and deterministic content from `seed` alone — two calls
/// with equal arguments produce byte-identical runs.
pub fn fleet_config(nodes: usize, weather: Weather, seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![weather])
        .dt(EXPERIMENT_DT)
        .seed(seed)
        .fleet(nodes);
    b.build().expect("fleet defaults are valid")
}

/// Builds a multi-day configuration with the given weather plan.
pub fn plan_config(plan: Vec<Weather>, seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(plan)
        .dt(EXPERIMENT_DT)
        .sample_every(40)
        .seed(seed);
    b.build().expect("experiment defaults are valid")
}

/// Runs one scheme on one configuration, optionally pre-aging the
/// batteries to the "old" stage first.
pub fn run_scheme(scheme: Scheme, config: SimConfig, pre_age: Option<f64>) -> SimReport {
    run_scheme_observed(scheme, config, pre_age, Obs::disabled())
}

/// [`run_scheme`] recording metrics and stage timings into `obs`.
///
/// The report is bit-identical to the unobserved run of the same
/// configuration: observation never perturbs the simulation.
pub fn run_scheme_observed(
    scheme: Scheme,
    config: SimConfig,
    pre_age: Option<f64>,
    obs: Obs,
) -> SimReport {
    let mut sim = Simulation::with_obs(config, obs.clone()).expect("config validated by builder");
    if let Some(damage) = pre_age {
        sim.pre_age_batteries(damage);
    }
    let mut policy = scheme.build_observed(&obs);
    sim.run(&mut policy)
        .expect("experiment scenarios uphold engine invariants")
}

/// One sweep cell: everything needed to produce one [`SimReport`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The scheme under test.
    pub scheme: Scheme,
    /// The full simulation configuration (carries the seed).
    pub config: SimConfig,
    /// Optional pre-aging damage (the paper's "old battery" stage).
    pub pre_age: Option<f64>,
}

impl Scenario {
    /// A fresh-battery scenario.
    pub fn new(scheme: Scheme, config: SimConfig) -> Self {
        Self {
            scheme,
            config,
            pre_age: None,
        }
    }

    /// Adds pre-aging.
    pub fn pre_aged(mut self, damage: f64) -> Self {
        self.pre_age = Some(damage);
        self
    }

    fn run(self) -> SimReport {
        run_scheme(self.scheme, self.config, self.pre_age)
    }

    fn run_observed(self) -> ObservedRun {
        let obs = Obs::enabled();
        let started = Instant::now();
        let report = run_scheme_observed(self.scheme, self.config, self.pre_age, obs.clone());
        ObservedRun {
            report,
            obs,
            wall: started.elapsed(),
        }
    }
}

/// One scenario's report together with the observability registry and
/// wall-clock time of its run.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// The simulation report — identical to an unobserved run.
    pub report: SimReport,
    /// The per-scenario metric/profiler registry.
    pub obs: Obs,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

/// Runs every scenario with a fresh enabled [`Obs`] each, fanned out over
/// `threads` workers, and returns runs **in scenario order**.
///
/// Reports are bit-identical to [`run_scenarios_with_threads`] for the
/// same scenario list (verified by `tests/determinism.rs`); only the
/// wall-clock figures and metric registries are extra.
pub fn run_scenarios_observed_with_threads(
    scenarios: Vec<Scenario>,
    threads: usize,
) -> Vec<ObservedRun> {
    parallel_map(scenarios, threads, Scenario::run_observed)
}

/// Writes one scenario's perf + counter report as JSONL next to the
/// figure outputs: a header line (scenario, wall-clock), the per-stage
/// profile lines, then the metric lines.
///
/// Returns the path written (`<dir>/<label>.perf.jsonl`).
///
/// # Errors
///
/// Propagates filesystem errors creating `dir` or writing the file.
pub fn write_perf_report(dir: &Path, label: &str, run: &ObservedRun) -> std::io::Result<PathBuf> {
    let mut line = JsonLine::new();
    line.str_field("scenario", label)
        .str_field("policy", run.report.policy)
        .f64_field("wall_ms", run.wall.as_secs_f64() * 1e3)
        .u64_field("days", run.report.days as u64)
        .u64_field("events", run.report.events.len() as u64);
    write_perf_lines(dir, label, line.finish(), &run.obs)
}

/// Like [`write_perf_report`] for sweeps that drive substrates directly
/// (no [`SimReport`]): the header carries only the label and wall-clock.
///
/// # Errors
///
/// Propagates filesystem errors creating `dir` or writing the file.
pub fn write_perf_jsonl(
    dir: &Path,
    label: &str,
    obs: &Obs,
    wall: Duration,
) -> std::io::Result<PathBuf> {
    let mut line = JsonLine::new();
    line.str_field("scenario", label)
        .f64_field("wall_ms", wall.as_secs_f64() * 1e3);
    write_perf_lines(dir, label, line.finish(), obs)
}

fn write_perf_lines(
    dir: &Path,
    label: &str,
    header: String,
    obs: &Obs,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{label}.perf.jsonl"));
    let mut out = header;
    out.push('\n');
    out.push_str(&obs.profile_jsonl());
    out.push_str(&obs.metrics_jsonl());
    out.push_str(&obs.health_jsonl());
    let mut file = std::fs::File::create(&path)?;
    file.write_all(out.as_bytes())?;
    // An OpenMetrics snapshot of the same registry rides along for
    // scrape-style consumers (`<label>.om`, `# EOF`-terminated).
    std::fs::write(dir.join(format!("{label}.om")), obs.metrics_openmetrics())?;
    Ok(path)
}

/// The directory perf reports go to when the `BAAT_OBS_DIR` environment
/// variable is set; `None` disables perf emission.
pub fn obs_dir_from_env() -> Option<PathBuf> {
    std::env::var_os("BAAT_OBS_DIR").map(PathBuf::from)
}

/// Derives the seed for sweep cell `index` from a base seed.
///
/// Sweeps that want decorrelated stochastic inputs per cell (rather than
/// the paper's matched-day methodology, which reuses one seed) route the
/// base seed through this so cell streams share no structure while the
/// whole sweep stays a pure function of the base seed.
pub fn scenario_seed(base: u64, index: usize) -> u64 {
    derive_seed(base, index as u64)
}

/// Worker-thread count for [`run_scenarios`]: `BAAT_RUNNER_THREADS` when
/// set (min 1), else the machine's available parallelism.
pub fn runner_threads() -> usize {
    if let Ok(raw) = std::env::var("BAAT_RUNNER_THREADS") {
        if let Ok(n) = raw.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs every scenario, fanned out over [`runner_threads`] workers, and
/// returns the reports **in scenario order**.
pub fn run_scenarios(scenarios: Vec<Scenario>) -> Vec<SimReport> {
    run_scenarios_with_threads(scenarios, runner_threads())
}

/// [`run_scenarios`] with an explicit worker count (exposed so the
/// determinism tests can compare 1-thread and N-thread execution).
pub fn run_scenarios_with_threads(scenarios: Vec<Scenario>, threads: usize) -> Vec<SimReport> {
    parallel_map(scenarios, threads, Scenario::run)
}

/// [`run_scenarios`] with snapshot-forked warm-ups: scenarios that share
/// everything but scheme and fault plan (same config-minus-faults, same
/// pre-aging) simulate their policy-free pre-window prefix **once**,
/// then each variant forks a clone of the warm engine and runs its own
/// tail.
///
/// Reports are **bit-identical** to [`run_scenarios`] (verified by
/// `tests/determinism.rs`): the prefix is policy-independent by
/// construction — arrivals, placement and control are all gated on the
/// operating window — and a fault plan installed at the fork point
/// rebuilds an injector bit-identical to one armed from step 0, as long
/// as the fork precedes the earliest fault onset. Groups whose faults
/// fire before the window simply fork earlier (worst case: step 0).
pub fn run_scenarios_forked(scenarios: Vec<Scenario>) -> Vec<SimReport> {
    run_scenarios_forked_with_threads(scenarios, runner_threads())
}

/// [`run_scenarios_forked`] with an explicit worker count.
pub fn run_scenarios_forked_with_threads(
    scenarios: Vec<Scenario>,
    threads: usize,
) -> Vec<SimReport> {
    // Group by (config with faults stripped, pre-age): the members of a
    // group differ only in scheme and fault plan, which is exactly what
    // the policy-free prefix is independent of.
    let mut groups: Vec<(SimConfig, Option<u64>, Vec<usize>)> = Vec::new();
    for (index, scenario) in scenarios.iter().enumerate() {
        let mut config = scenario.config.clone();
        config.faults = FaultPlan::new();
        let pre_age = scenario.pre_age.map(f64::to_bits);
        match groups
            .iter_mut()
            .find(|(c, p, _)| *p == pre_age && *c == config)
        {
            Some((_, _, members)) => members.push(index),
            None => groups.push((config, pre_age, vec![index])),
        }
    }

    // Phase 1: one warm prefix per group, in parallel. The fork point
    // stops before the operating window opens *and* before the earliest
    // fault of any member arms.
    let prefixes: Vec<(Simulation, Vec<usize>)> = parallel_map(groups, threads, |group| {
        let (config, pre_age, members) = group;
        let dt_secs = config.dt.as_secs();
        let mut sim = Simulation::new(config).expect("config validated by builder");
        if let Some(bits) = pre_age {
            sim.pre_age_batteries(f64::from_bits(bits));
        }
        let earliest_fault_step = members
            .iter()
            .flat_map(|&i| scenarios[i].config.faults.faults())
            .map(|s| s.start.as_secs() / dt_secs)
            .min()
            .unwrap_or(u64::MAX);
        let fork = sim.policy_free_prefix_steps().min(earliest_fault_step);
        // Any policy works here — the prefix never consults it.
        sim.run_steps(&mut baat_sim::RoundRobinPolicy::new(), fork)
            .expect("experiment scenarios uphold engine invariants");
        (sim, members)
    });
    let prefix_of: Vec<&Simulation> = {
        let mut slots: Vec<Option<&Simulation>> = vec![None; scenarios.len()];
        for (sim, members) in &prefixes {
            for &index in members {
                slots[index] = Some(sim);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every scenario belongs to one group"))
            .collect()
    };

    // Phase 2: fork and finish every scenario tail, in parallel.
    let jobs: Vec<(Scenario, &Simulation)> = scenarios.iter().cloned().zip(prefix_of).collect();
    parallel_map(jobs, threads, |(scenario, prefix)| {
        let mut sim = prefix.clone();
        if !scenario.config.faults.is_empty() {
            sim.install_fault_plan(scenario.config.faults)
                .expect("fork point precedes the earliest fault onset");
        }
        let mut policy = scenario.scheme.build_observed(&Obs::disabled());
        sim.run_remaining(&mut policy)
            .expect("experiment scenarios uphold engine invariants")
    })
}

/// [`run_scenarios_forked`] with the warm prefix **materialized to
/// disk**: each group's policy-free prefix simulates once, is written to
/// `dir` as a versioned [`SimSnapshot`] file (`warm-<group>.snap`), and
/// every variant restores its own engine from that file before running
/// its tail.
///
/// Reports are **bit-identical** to [`run_scenarios`] (verified by
/// `tests/determinism.rs`): restore rebuilds the engine from the
/// group's fault-free config and the snapshot round-trips every dynamic
/// field bit-exactly, so the forked-from-file engine is
/// indistinguishable from the in-memory clone [`run_scenarios_forked`]
/// uses. The snapshot files are left in `dir` — a later invocation of
/// the same sweep could fork from them without re-simulating, and CI
/// inspects them as checkpoint artifacts.
///
/// # Errors
///
/// Returns [`SimError`] on snapshot write/read failures (the simulation
/// itself upholds engine invariants, as in [`run_scenarios`]).
pub fn run_scenarios_warmstart(
    scenarios: Vec<Scenario>,
    dir: &Path,
) -> Result<Vec<SimReport>, SimError> {
    run_scenarios_warmstart_with_threads(scenarios, dir, runner_threads())
}

/// [`run_scenarios_warmstart`] with an explicit worker count.
///
/// # Errors
///
/// Returns [`SimError`] on snapshot write/read failures.
pub fn run_scenarios_warmstart_with_threads(
    scenarios: Vec<Scenario>,
    dir: &Path,
    threads: usize,
) -> Result<Vec<SimReport>, SimError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| SnapshotError::Io(format!("create {}: {e}", dir.display())))?;

    // Group exactly as `run_scenarios_forked` does: members differ only
    // in scheme and fault plan.
    let mut groups: Vec<(SimConfig, Option<u64>, Vec<usize>)> = Vec::new();
    for (index, scenario) in scenarios.iter().enumerate() {
        let mut config = scenario.config.clone();
        config.faults = FaultPlan::new();
        let pre_age = scenario.pre_age.map(f64::to_bits);
        match groups
            .iter_mut()
            .find(|(c, p, _)| *p == pre_age && *c == config)
        {
            Some((_, _, members)) => members.push(index),
            None => groups.push((config, pre_age, vec![index])),
        }
    }

    // Phase 1: simulate each group's prefix once and write it to disk.
    // The file carries the group's config hash, so a stale file from a
    // different sweep cannot be restored by mistake.
    let jobs: Vec<(usize, SimConfig, Option<u64>, Vec<usize>)> = groups
        .into_iter()
        .enumerate()
        .map(|(g, (config, pre_age, members))| (g, config, pre_age, members))
        .collect();
    let written = parallel_map(jobs, threads, |(group, config, pre_age, members)| {
        let dt_secs = config.dt.as_secs();
        let mut sim = Simulation::new(config.clone()).expect("config validated by builder");
        if let Some(bits) = pre_age {
            sim.pre_age_batteries(f64::from_bits(bits));
        }
        let earliest_fault_step = members
            .iter()
            .flat_map(|&i| scenarios[i].config.faults.faults())
            .map(|s| s.start.as_secs() / dt_secs)
            .min()
            .unwrap_or(u64::MAX);
        let fork = sim.policy_free_prefix_steps().min(earliest_fault_step);
        sim.run_steps(&mut baat_sim::RoundRobinPolicy::new(), fork)
            .expect("experiment scenarios uphold engine invariants");
        let path = dir.join(format!("warm-{group}.snap"));
        let result = sim.snapshot().write_file(&path).map(|()| path);
        (result, config, members)
    });
    let mut prefix_of: Vec<Option<(PathBuf, SimConfig)>> = vec![None; scenarios.len()];
    for (result, config, members) in written {
        let path = result?;
        for &index in members.iter() {
            prefix_of[index] = Some((path.clone(), config.clone()));
        }
    }

    // Phase 2: every variant restores from its group's file and runs its
    // own tail.
    let jobs: Vec<(Scenario, (PathBuf, SimConfig))> = scenarios
        .into_iter()
        .zip(prefix_of)
        .map(|(s, p)| (s, p.expect("every scenario belongs to one group")))
        .collect();
    let reports = parallel_map(jobs, threads, |(scenario, (path, config))| {
        let snapshot = SimSnapshot::read_file(&path)?;
        let mut sim = Simulation::restore(config, &snapshot)?;
        if !scenario.config.faults.is_empty() {
            sim.install_fault_plan(scenario.config.faults)
                .expect("fork point precedes the earliest fault onset");
        }
        let mut policy = scenario.scheme.build_observed(&Obs::disabled());
        sim.run_remaining(&mut policy)
    });
    reports.into_iter().collect()
}

/// Order-preserving parallel map over independent jobs.
///
/// Jobs run on a [`baat_exec::ExecPool`] of `threads` workers; the pool
/// hands results back in item order, so the output order (and therefore
/// every downstream table) is independent of scheduling. Runner jobs are
/// whole simulations (seconds each), so a per-call pool spin-up is noise
/// here — unlike the engine's per-step batches, which hold one pool for
/// the run's lifetime.
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    baat_exec::ExecPool::new(threads).map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_config_is_one_day() {
        let c = day_config(Weather::Cloudy, 1);
        assert_eq!(c.days(), 1);
        assert_eq!(c.dt, EXPERIMENT_DT);
    }

    #[test]
    fn faulted_day_config_carries_a_replayable_plan() {
        let mix = FaultMix::light();
        let a = faulted_day_config(Weather::Cloudy, 9, &mix);
        let b = faulted_day_config(Weather::Cloudy, 9, &mix);
        assert_eq!(a.faults.len(), mix.per_day);
        assert_eq!(a.faults.faults(), b.faults.faults());
        assert_eq!(a.dt, EXPERIMENT_DT);
    }

    #[test]
    fn fault_matrix_pairs_clean_with_faulted() {
        let schemes = [Scheme::EBuff, Scheme::Baat];
        let cells = fault_matrix(&schemes, Weather::Sunny, 11, &FaultMix::heavy());
        assert_eq!(cells.len(), 4);
        for (i, &scheme) in schemes.iter().enumerate() {
            let clean = &cells[2 * i];
            let faulted = &cells[2 * i + 1];
            assert_eq!(clean.scheme, scheme);
            assert_eq!(faulted.scheme, scheme);
            assert!(clean.config.faults.is_empty());
            assert!(!faulted.config.faults.is_empty());
            assert_eq!(clean.config.seed, faulted.config.seed);
        }
    }

    #[test]
    fn run_scheme_produces_report() {
        let report = run_scheme(Scheme::EBuff, day_config(Weather::Sunny, 2), None);
        assert_eq!(report.policy, "e-Buff");
        assert!(report.total_work > 0.0);
    }

    #[test]
    fn pre_age_flows_through() {
        let report = run_scheme(
            Scheme::EBuff,
            day_config(Weather::Sunny, 2),
            Some(OLD_BATTERY_DAMAGE),
        );
        assert!(report.mean_damage() >= OLD_BATTERY_DAMAGE);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let squares = parallel_map((0..100u64).collect(), 8, |x| x * x);
        assert_eq!(squares, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(vec![7u32], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn scenario_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            (0..64).map(|i| scenario_seed(2015, i)).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn forked_sweep_matches_from_scratch_on_a_mixed_matrix() {
        // Clean + faulted pairs across two schemes, plus a pre-aged cell
        // from a different group: exercises grouping, fault-plan
        // installation at the fork point, and the pre-age key.
        let mut scenarios = fault_matrix(
            &[Scheme::EBuff, Scheme::Baat],
            Weather::Cloudy,
            17,
            &FaultMix::light(),
        );
        scenarios.push(
            Scenario::new(Scheme::Baat, day_config(Weather::Cloudy, 17))
                .pre_aged(OLD_BATTERY_DAMAGE),
        );
        let from_scratch = run_scenarios_with_threads(scenarios.clone(), 3);
        let forked = run_scenarios_forked_with_threads(scenarios, 3);
        assert_eq!(from_scratch, forked);
    }

    #[test]
    fn warmstart_sweep_matches_from_scratch_via_disk_roundtrip() {
        // Same matrix as the forked test, but the warm prefix travels
        // through a snapshot file between phase 1 and phase 2.
        let mut scenarios = fault_matrix(
            &[Scheme::EBuff, Scheme::Baat],
            Weather::Cloudy,
            17,
            &FaultMix::light(),
        );
        scenarios.push(
            Scenario::new(Scheme::Baat, day_config(Weather::Cloudy, 17))
                .pre_aged(OLD_BATTERY_DAMAGE),
        );
        let dir = std::env::temp_dir().join(format!("baat-warmstart-{}", std::process::id()));
        let from_scratch = run_scenarios_with_threads(scenarios.clone(), 3);
        let warm = run_scenarios_warmstart_with_threads(scenarios, &dir, 3)
            .expect("warm-start sweep succeeds");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(from_scratch, warm);
    }

    #[test]
    fn run_scenarios_matches_sequential_run_scheme() {
        let scenarios = vec![
            Scenario::new(Scheme::EBuff, day_config(Weather::Sunny, 3)),
            Scenario::new(Scheme::Baat, day_config(Weather::Sunny, 3)),
            Scenario::new(Scheme::EBuff, day_config(Weather::Rainy, 3)).pre_aged(0.4),
        ];
        let sequential: Vec<SimReport> = scenarios.clone().into_iter().map(Scenario::run).collect();
        let parallel = run_scenarios_with_threads(scenarios, 3);
        assert_eq!(sequential, parallel);
    }
}
