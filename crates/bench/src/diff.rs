//! Run-diff tooling: compare two JSONL exports from seeded runs.
//!
//! Every structured export in this workspace is deterministic for a
//! seeded run, so two runs that should match can be compared
//! line-by-line. [`diff_runs`] reports the **first divergence** (the
//! earliest line index where the files differ — for event or trace
//! logs, the first simulated moment the runs tell different stories)
//! and, for metric-style lines (`"name"` + `"value"` fields, the
//! `metrics.jsonl` shape), the **per-metric deltas** between the two
//! snapshots. `console diff a.jsonl b.jsonl` renders the result.

use crate::jsonq::{extract_f64, extract_str};

/// One differing metric between the two inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Value in the first input (`None` when absent there).
    pub a: Option<f64>,
    /// Value in the second input (`None` when absent there).
    pub b: Option<f64>,
}

/// The outcome of comparing two JSONL documents.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Line count of the first input.
    pub lines_a: usize,
    /// Line count of the second input.
    pub lines_b: usize,
    /// First differing line: `(zero-based index, line from a, line from
    /// b)`, with a missing line rendered as the empty string. `None`
    /// when the documents are identical.
    pub first_divergence: Option<(usize, String, String)>,
    /// Per-metric deltas, in first-input order then new-in-b order.
    /// Empty when no metric-style lines differ.
    pub metric_deltas: Vec<MetricDelta>,
}

impl DiffReport {
    /// `true` when the two documents are byte-identical.
    pub fn identical(&self) -> bool {
        self.first_divergence.is_none()
    }

    /// Renders the report for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.first_divergence {
            None => out.push_str(&format!("identical ({} lines)\n", self.lines_a)),
            Some((idx, a, b)) => {
                out.push_str(&format!(
                    "first divergence at line {} ({} vs {} lines)\n",
                    idx + 1,
                    self.lines_a,
                    self.lines_b
                ));
                out.push_str(&format!(
                    "  a: {}\n",
                    if a.is_empty() { "<absent>" } else { a }
                ));
                out.push_str(&format!(
                    "  b: {}\n",
                    if b.is_empty() { "<absent>" } else { b }
                ));
            }
        }
        if !self.metric_deltas.is_empty() {
            out.push_str("metric deltas:\n");
            for d in &self.metric_deltas {
                let fmt = |v: Option<f64>| v.map_or("—".to_owned(), |v| format!("{v}"));
                let delta = match (d.a, d.b) {
                    (Some(a), Some(b)) => format!("  ({:+})", b - a),
                    _ => String::new(),
                };
                out.push_str(&format!(
                    "  {:<40} {:>14} -> {:<14}{delta}\n",
                    d.name,
                    fmt(d.a),
                    fmt(d.b)
                ));
            }
        }
        out
    }
}

/// The chemistry recorded in the `run.jsonl` sitting next to an export
/// file, when that metadata exists (exports predating it have none).
pub fn sibling_chemistry(export: &std::path::Path) -> Option<String> {
    let meta = export.parent()?.join("run.jsonl");
    let line = std::fs::read_to_string(meta).ok()?;
    extract_str(line.lines().next()?, "chemistry")
}

/// The chemistry banner `console diff` prints above a comparison: both
/// sides' `run.jsonl` metadata must exist for a label; a cross-chemistry
/// pair is called out so it is not mistaken for a regression.
pub fn chemistry_banner(a: &std::path::Path, b: &std::path::Path) -> Option<String> {
    match (sibling_chemistry(a), sibling_chemistry(b)) {
        (Some(ca), Some(cb)) if ca == cb => Some(format!("chemistry: {ca} (both runs)")),
        (Some(ca), Some(cb)) => Some(format!(
            "chemistry: A={ca} B={cb} — cross-chemistry comparison"
        )),
        _ => None,
    }
}

/// Collects `(name, value)` pairs from metric-style lines.
fn metrics(doc: &str) -> Vec<(String, f64)> {
    doc.lines()
        .filter_map(|l| Some((extract_str(l, "name")?, extract_f64(l, "value")?)))
        .collect()
}

/// Compares two JSONL documents line-by-line.
pub fn diff_runs(a: &str, b: &str) -> DiffReport {
    let lines_a: Vec<&str> = a.lines().collect();
    let lines_b: Vec<&str> = b.lines().collect();
    let first_divergence = lines_a
        .iter()
        .map(Some)
        .chain(std::iter::repeat(None))
        .zip(lines_b.iter().map(Some).chain(std::iter::repeat(None)))
        .take(lines_a.len().max(lines_b.len()))
        .position(|(la, lb)| la != lb)
        .map(|idx| {
            (
                idx,
                lines_a.get(idx).copied().unwrap_or("").to_owned(),
                lines_b.get(idx).copied().unwrap_or("").to_owned(),
            )
        });

    let ma = metrics(a);
    let mb = metrics(b);
    let mut metric_deltas = Vec::new();
    for (name, va) in &ma {
        let vb = mb.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        if vb != Some(*va) {
            metric_deltas.push(MetricDelta {
                name: name.clone(),
                a: Some(*va),
                b: vb,
            });
        }
    }
    for (name, vb) in &mb {
        if !ma.iter().any(|(n, _)| n == name) {
            metric_deltas.push(MetricDelta {
                name: name.clone(),
                a: None,
                b: Some(*vb),
            });
        }
    }

    DiffReport {
        lines_a: lines_a.len(),
        lines_b: lines_b.len(),
        first_divergence,
        metric_deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_documents_have_no_divergence() {
        let doc = "{\"at_s\":0}\n{\"at_s\":60}\n";
        let r = diff_runs(doc, doc);
        assert!(r.identical());
        assert!(r.metric_deltas.is_empty());
        assert!(r.render().starts_with("identical (2 lines)"));
    }

    #[test]
    fn first_divergence_is_the_earliest_differing_line() {
        let a = "{\"at_s\":0}\n{\"at_s\":60,\"x\":1}\n{\"at_s\":120}\n";
        let b = "{\"at_s\":0}\n{\"at_s\":60,\"x\":2}\n{\"at_s\":120}\n";
        let r = diff_runs(a, b);
        let (idx, la, lb) = r.first_divergence.expect("diverges");
        assert_eq!(idx, 1);
        assert!(la.contains("\"x\":1") && lb.contains("\"x\":2"));
    }

    #[test]
    fn length_mismatch_diverges_at_the_missing_line() {
        let a = "{\"at_s\":0}\n";
        let b = "{\"at_s\":0}\n{\"at_s\":60}\n";
        let r = diff_runs(a, b);
        let (idx, la, lb) = r.first_divergence.clone().expect("diverges");
        assert_eq!((idx, la.as_str(), lb.as_str()), (1, "", "{\"at_s\":60}"));
        assert!(r.render().contains("<absent>"));
    }

    #[test]
    fn metric_deltas_cover_changed_missing_and_new() {
        let a = "{\"name\":\"sim.x\",\"kind\":\"counter\",\"value\":3}\n\
                 {\"name\":\"sim.gone\",\"kind\":\"counter\",\"value\":1}\n";
        let b = "{\"name\":\"sim.x\",\"kind\":\"counter\",\"value\":5}\n\
                 {\"name\":\"sim.new\",\"kind\":\"gauge\",\"value\":0.5}\n";
        let r = diff_runs(a, b);
        assert_eq!(r.metric_deltas.len(), 3);
        assert_eq!(r.metric_deltas[0].name, "sim.x");
        assert_eq!(r.metric_deltas[0].b, Some(5.0));
        assert_eq!(r.metric_deltas[1].name, "sim.gone");
        assert_eq!(r.metric_deltas[1].b, None);
        assert_eq!(r.metric_deltas[2].name, "sim.new");
        assert_eq!(r.metric_deltas[2].a, None);
        let rendered = r.render();
        assert!(rendered.contains("sim.x") && rendered.contains("(+2)"));
    }

    #[test]
    fn non_metric_lines_produce_no_deltas() {
        let a = "{\"at_s\":0,\"soc\":[1.0]}\n";
        let b = "{\"at_s\":0,\"soc\":[0.9]}\n";
        let r = diff_runs(a, b);
        assert!(!r.identical());
        assert!(r.metric_deltas.is_empty());
    }

    #[test]
    fn truncated_document_diverges_at_the_cut_line() {
        // A copy cut off mid-object (killed process, partial download):
        // the diff must report the cut cleanly, not panic or misalign.
        let full = "{\"at_s\":0}\n{\"at_s\":60,\"x\":1}\n{\"at_s\":120}\n";
        let truncated = "{\"at_s\":0}\n{\"at_s\":60,\"x\"";
        let r = diff_runs(full, truncated);
        let (idx, la, lb) = r.first_divergence.expect("diverges");
        assert_eq!(idx, 1);
        assert_eq!(la, "{\"at_s\":60,\"x\":1}");
        assert_eq!(lb, "{\"at_s\":60,\"x\"");
        assert_eq!((r.lines_a, r.lines_b), (3, 2));
    }

    #[test]
    fn truncated_metric_line_is_not_counted_as_a_metric() {
        // The value got cut off: no parsable value, no bogus delta.
        let a = "{\"name\":\"sim.x\",\"kind\":\"counter\",\"value\":3}\n";
        let b = "{\"name\":\"sim.x\",\"kind\":\"counter\",\"val";
        let r = diff_runs(a, b);
        assert!(!r.identical());
        assert_eq!(r.metric_deltas.len(), 1, "a's metric is missing in b");
        assert_eq!(r.metric_deltas[0].b, None);
    }

    #[test]
    fn nan_null_values_do_not_panic_and_produce_no_false_deltas() {
        // JSON has no NaN: emitters write null. Such lines are not
        // metric-style (no parsable value), so they can only surface as
        // line divergences or one-sided deltas — never a NaN comparison.
        let nulls = "{\"name\":\"sim.ratio\",\"kind\":\"gauge\",\"value\":null}\n";
        let r = diff_runs(nulls, nulls);
        assert!(r.identical());
        assert!(r.metric_deltas.is_empty());

        let healthy = "{\"name\":\"sim.ratio\",\"kind\":\"gauge\",\"value\":0.5}\n";
        let r = diff_runs(nulls, healthy);
        assert!(!r.identical());
        assert_eq!(r.metric_deltas.len(), 1);
        assert_eq!(r.metric_deltas[0].a, None, "null side has no value");
        assert_eq!(r.metric_deltas[0].b, Some(0.5));
        // Render must not format a NaN or panic on the one-sided delta.
        assert!(r.render().contains("—"));
    }

    #[test]
    fn empty_and_whitespace_documents_compare_cleanly() {
        assert!(diff_runs("", "").identical());
        let r = diff_runs("", "{\"at_s\":0}\n");
        let (idx, la, _) = r.first_divergence.expect("diverges");
        assert_eq!((idx, la.as_str()), (0, ""));
    }

    #[test]
    fn chemistry_banner_labels_same_cross_and_missing_metadata() {
        let root = std::env::temp_dir().join(format!("baat-diff-meta-{}", std::process::id()));
        let (a_dir, b_dir, c_dir) = (root.join("a"), root.join("b"), root.join("c"));
        for d in [&a_dir, &b_dir, &c_dir] {
            std::fs::create_dir_all(d).expect("create temp export dir");
        }
        std::fs::write(
            a_dir.join("run.jsonl"),
            "{\"chemistry\":\"lead-acid\",\"seed\":7}\n",
        )
        .expect("write metadata");
        std::fs::write(
            b_dir.join("run.jsonl"),
            "{\"chemistry\":\"li-ion\",\"seed\":7}\n",
        )
        .expect("write metadata");
        // c has no run.jsonl (export predating the metadata).
        let (a, b, c) = (
            a_dir.join("events.jsonl"),
            b_dir.join("events.jsonl"),
            c_dir.join("events.jsonl"),
        );

        assert_eq!(
            chemistry_banner(&a, &a).as_deref(),
            Some("chemistry: lead-acid (both runs)")
        );
        let cross = chemistry_banner(&a, &b).expect("both sides labelled");
        assert!(cross.contains("A=lead-acid"));
        assert!(cross.contains("B=li-ion"));
        assert!(cross.contains("cross-chemistry"));
        assert_eq!(
            chemistry_banner(&a, &c),
            None,
            "missing metadata: no banner"
        );
        assert_eq!(chemistry_banner(&c, &c), None);

        // Malformed metadata (truncated line, no chemistry field) also
        // yields no banner rather than an error.
        std::fs::write(c_dir.join("run.jsonl"), "{\"chem").expect("write metadata");
        assert_eq!(chemistry_banner(&a, &c), None);

        std::fs::remove_dir_all(&root).ok();
    }
}
