//! Property-based tests for the power infrastructure.

use baat_power::{Charger, PowerSwitcher};
use baat_testkit::prelude::*;
use baat_units::{Soc, Watts};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The switcher conserves energy on both the supply and demand sides
    /// for any inputs.
    #[test]
    fn switcher_conserves_energy(
        demand in 0.0f64..2000.0,
        solar in 0.0f64..2000.0,
        battery in 0.0f64..2000.0,
        acceptance in 0.0f64..500.0,
    ) {
        let sw = PowerSwitcher::prototype();
        let r = sw.route(
            Watts::new(demand),
            Watts::new(solar),
            Watts::new(battery),
            Watts::new(acceptance),
        );
        // Supply side: solar splits exactly into load, charger, curtailed.
        let solar_split =
            r.solar_to_load.as_f64() + r.surplus_to_charger.as_f64() + r.curtailed.as_f64();
        prop_assert!((solar_split - solar).abs() < 1e-9);
        // Demand side: load splits into solar, inverter-delivered battery
        // power, and unserved.
        let served = r.solar_to_load.as_f64()
            + r.battery_to_load.as_f64() * sw.inverter_efficiency()
            + r.unserved.as_f64();
        prop_assert!((served - demand).abs() < 1e-9);
        // No component is negative or exceeds its source.
        for v in [
            r.solar_to_load.as_f64(),
            r.battery_to_load.as_f64(),
            r.surplus_to_charger.as_f64(),
            r.unserved.as_f64(),
            r.curtailed.as_f64(),
        ] {
            prop_assert!(v >= 0.0);
        }
        prop_assert!(r.battery_to_load.as_f64() <= battery + 1e-9);
        prop_assert!(r.surplus_to_charger.as_f64() <= acceptance + 1e-9);
    }

    /// Battery is only used when solar cannot cover demand.
    #[test]
    fn battery_is_the_second_choice(demand in 0.0f64..1000.0, solar in 0.0f64..1000.0) {
        let sw = PowerSwitcher::prototype();
        let r = sw.route(
            Watts::new(demand),
            Watts::new(solar),
            Watts::new(10_000.0),
            Watts::new(10_000.0),
        );
        if solar >= demand {
            prop_assert_eq!(r.battery_to_load, Watts::ZERO);
            prop_assert_eq!(r.unserved, Watts::ZERO);
        } else {
            prop_assert!(r.battery_to_load.as_f64() > 0.0 || demand == solar);
        }
    }

    /// Charger output is bounded by acceptance × efficiency and is
    /// monotone in available power.
    #[test]
    fn charger_monotone_and_bounded(
        soc in 0.0f64..=1.0,
        p1 in 0.0f64..600.0,
        p2 in 0.0f64..600.0,
    ) {
        prop_assume!(p1 <= p2);
        let c = Charger::prototype();
        let soc = Soc::new(soc).unwrap();
        let out1 = c.charge_power(soc, Watts::new(p1));
        let out2 = c.charge_power(soc, Watts::new(p2));
        prop_assert!(out1 <= out2);
        prop_assert!(out2.as_f64() <= c.acceptance(soc).as_f64() * c.efficiency() + 1e-9);
        prop_assert!(out2.as_f64() <= p2 * c.efficiency() + 1e-9);
    }

    /// Charger acceptance never grows as the battery fills.
    #[test]
    fn acceptance_monotone_in_soc(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        prop_assume!(a <= b);
        let c = Charger::prototype();
        let acc_low = c.acceptance(Soc::new(a).unwrap());
        let acc_high = c.acceptance(Soc::new(b).unwrap());
        prop_assert!(acc_high <= acc_low + Watts::new(1e-9));
    }
}
