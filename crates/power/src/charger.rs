//! Three-stage lead-acid battery charger.
//!
//! The prototype's controller "can precisely control the battery charger
//! so that the stored energy reflects the actual solar power supply"
//! (§V.B). The charger follows the standard lead-acid regime: *bulk*
//! (full current), *absorption* (tapering toward full), *float*
//! (maintenance trickle). The taper protects the battery from the
//! overcharge/water-loss aging path.

use baat_units::{Soc, Watts};

use crate::error::PowerError;

/// Charging stage, determined by state of charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChargeStage {
    /// Full-power charging below 80 % SoC.
    Bulk,
    /// Tapered charging from 80 % up to full.
    Absorption,
    /// Maintenance trickle at full charge.
    Float,
}

/// A battery charger with a power budget and three-stage control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Charger {
    max_power: Watts,
    /// Conversion efficiency from input bus to battery terminals.
    efficiency: f64,
    /// Float trickle as a fraction of max power.
    float_fraction: f64,
}

impl Charger {
    /// Creates a charger with the given maximum output power and
    /// conversion efficiency.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidConfig`] if `max_power` is not
    /// positive or `efficiency` is outside `(0, 1]`.
    pub fn new(max_power: Watts, efficiency: f64) -> Result<Self, PowerError> {
        if !(max_power.as_f64().is_finite() && max_power.as_f64() > 0.0) {
            return Err(PowerError::InvalidConfig {
                field: "max_power",
                reason: format!("must be positive and finite, got {max_power}"),
            });
        }
        if !(efficiency > 0.0 && efficiency <= 1.0) {
            return Err(PowerError::InvalidConfig {
                field: "efficiency",
                reason: format!("must be in (0, 1], got {efficiency}"),
            });
        }
        Ok(Self {
            max_power,
            efficiency,
            float_fraction: 0.02,
        })
    }

    /// The prototype charger: 240 W per battery node (two 35 Ah units in
    /// parallel charge at C/4) at 93 % efficiency.
    pub fn prototype() -> Self {
        Self::new(Watts::new(240.0), 0.93).expect("static values are valid")
    }

    /// Maximum output power.
    pub fn max_power(&self) -> Watts {
        self.max_power
    }

    /// Conversion efficiency.
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// The stage for a battery at the given SoC.
    pub fn stage(&self, soc: Soc) -> ChargeStage {
        if soc.value() >= 0.99 {
            ChargeStage::Float
        } else if soc.value() >= 0.80 {
            ChargeStage::Absorption
        } else {
            ChargeStage::Bulk
        }
    }

    fn stage_scale(&self, soc: Soc) -> f64 {
        match self.stage(soc) {
            ChargeStage::Bulk => 1.0,
            ChargeStage::Absorption => {
                let span = (0.99 - soc.value()) / (0.99 - 0.80);
                self.float_fraction + (1.0 - self.float_fraction) * span.clamp(0.0, 1.0)
            }
            ChargeStage::Float => self.float_fraction,
        }
    }

    /// Maximum input-bus power the charger will usefully absorb at the
    /// given SoC (before conversion loss). The power switcher uses this to
    /// decide how much surplus solar to send versus curtail.
    pub fn acceptance(&self, soc: Soc) -> Watts {
        self.max_power * self.stage_scale(soc)
    }

    /// Power delivered to the battery terminals given `available` input
    /// power and the battery's SoC.
    ///
    /// Bulk passes everything up to the rating; absorption tapers the
    /// current limit linearly toward the float trickle at full; float
    /// holds the trickle. Conversion efficiency applies once here.
    pub fn charge_power(&self, soc: Soc, available: Watts) -> Watts {
        available.max(Watts::ZERO).min(self.acceptance(soc)) * self.efficiency
    }
}

impl ChargeStage {
    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            ChargeStage::Bulk => "bulk",
            ChargeStage::Absorption => "absorption",
            ChargeStage::Float => "float",
        }
    }
}

impl Default for Charger {
    fn default() -> Self {
        Self::prototype()
    }
}

/// Tracks a charger's stage transitions (bulk ↔ absorption ↔ float) and
/// counts mode switches into an observability counter.
///
/// One tracker per charger: the engine feeds it the stage it computed
/// for each step, and the tracker bumps the counter whenever the stage
/// differs from the last observed one. With a disabled counter the
/// tracker still tracks (cheap) but records nothing.
#[derive(Debug, Clone, Default)]
pub struct StageTracker {
    last: Option<ChargeStage>,
    switches: baat_obs::Counter,
}

impl StageTracker {
    /// Creates a tracker feeding the given counter.
    pub fn new(switches: baat_obs::Counter) -> Self {
        Self {
            last: None,
            switches,
        }
    }

    /// Observes the stage for this step; counts a switch if it changed.
    /// The first observation establishes the baseline and is not counted.
    pub fn observe(&mut self, stage: ChargeStage) {
        if let Some(last) = self.last {
            if last != stage {
                self.switches.inc();
            }
        }
        self.last = Some(stage);
    }

    /// The most recently observed stage.
    pub fn last(&self) -> Option<ChargeStage> {
        self.last
    }

    /// Overrides the last-observed stage (checkpoint restore), so the
    /// first post-restore observation does not miscount a switch.
    pub fn set_last(&mut self, stage: Option<ChargeStage>) {
        self.last = stage;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soc(v: f64) -> Soc {
        Soc::new(v).unwrap()
    }

    #[test]
    fn stages_by_soc() {
        let c = Charger::prototype();
        assert_eq!(c.stage(soc(0.3)), ChargeStage::Bulk);
        assert_eq!(c.stage(soc(0.85)), ChargeStage::Absorption);
        assert_eq!(c.stage(soc(1.0)), ChargeStage::Float);
    }

    #[test]
    fn bulk_passes_full_power_with_efficiency() {
        let c = Charger::prototype();
        let p = c.charge_power(soc(0.3), Watts::new(100.0));
        assert!((p.as_f64() - 93.0).abs() < 1e-9);
    }

    #[test]
    fn charger_rating_caps_input() {
        let c = Charger::prototype();
        let p = c.charge_power(soc(0.3), Watts::new(1_000.0));
        assert!((p.as_f64() - 240.0 * 0.93).abs() < 1e-9);
    }

    #[test]
    fn absorption_tapers_monotonically() {
        let c = Charger::prototype();
        let mut prev = f64::INFINITY;
        for s in [0.80, 0.85, 0.90, 0.95, 0.98] {
            let p = c.charge_power(soc(s), Watts::new(240.0)).as_f64();
            assert!(p < prev, "taper must be monotone at soc {s}");
            prev = p;
        }
    }

    #[test]
    fn float_is_a_trickle() {
        let c = Charger::prototype();
        let p = c.charge_power(soc(1.0), Watts::new(120.0));
        assert!(p.as_f64() < 120.0 * 0.05);
        assert!(p.as_f64() > 0.0);
    }

    #[test]
    fn negative_available_power_yields_zero() {
        let c = Charger::prototype();
        assert_eq!(c.charge_power(soc(0.5), Watts::new(-10.0)), Watts::ZERO);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Charger::new(Watts::ZERO, 0.9).is_err());
        assert!(Charger::new(Watts::new(100.0), 0.0).is_err());
        assert!(Charger::new(Watts::new(100.0), 1.5).is_err());
    }
}
