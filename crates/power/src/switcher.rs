//! The power switcher: routes solar, battery and utility power to one
//! server node.
//!
//! Models the prototype's "power switch controller included some PLC,
//! relays and DC-AC inverter to switch the power sources among utility,
//! renewable power or battery power" (§V.A). Routing priority for a green
//! node: solar feeds the load first; shortfall draws from the battery
//! (through the inverter); surplus solar charges the battery; anything the
//! battery cannot cover is *unserved* (triggering checkpoint or, if
//! permitted, a utility fallback).

use baat_units::Watts;

use crate::error::PowerError;

/// How one node's demand was met during a step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Routing {
    /// Load power served directly from solar.
    pub solar_to_load: Watts,
    /// Load power served from the battery (at the terminals, before
    /// inverter loss).
    pub battery_to_load: Watts,
    /// Solar surplus offered to the charger (input-bus side).
    pub surplus_to_charger: Watts,
    /// Demand that could not be met (load must shed or checkpoint).
    pub unserved: Watts,
    /// Solar energy with nowhere to go (battery full, load met).
    pub curtailed: Watts,
}

/// The per-node power switcher with conversion losses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSwitcher {
    /// DC→AC inverter efficiency on the battery-discharge path.
    inverter_efficiency: f64,
}

impl PowerSwitcher {
    /// Creates a switcher with the given inverter efficiency.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidConfig`] if `inverter_efficiency` is
    /// outside `(0, 1]`.
    pub fn new(inverter_efficiency: f64) -> Result<Self, PowerError> {
        if !(inverter_efficiency > 0.0 && inverter_efficiency <= 1.0) {
            return Err(PowerError::InvalidConfig {
                field: "inverter_efficiency",
                reason: format!("must be in (0, 1], got {inverter_efficiency}"),
            });
        }
        Ok(Self {
            inverter_efficiency,
        })
    }

    /// The prototype inverter: 92 % efficient.
    pub fn prototype() -> Self {
        Self::new(0.92).expect("static value is valid")
    }

    /// Inverter efficiency on the battery path.
    pub fn inverter_efficiency(&self) -> f64 {
        self.inverter_efficiency
    }

    /// Battery terminal power needed to serve `load` watts at the AC bus.
    pub fn battery_draw_for_load(&self, load: Watts) -> Watts {
        Watts::new(load.as_f64() / self.inverter_efficiency)
    }

    /// Routes one step of power for a node.
    ///
    /// * `demand` — server load power;
    /// * `solar` — solar power allocated to this node;
    /// * `battery_available` — maximum battery terminal power the unit can
    ///   deliver right now;
    /// * `charger_acceptance` — maximum power the charger+battery will
    ///   absorb right now (terminal side).
    pub fn route(
        &self,
        demand: Watts,
        solar: Watts,
        battery_available: Watts,
        charger_acceptance: Watts,
    ) -> Routing {
        let demand = demand.max(Watts::ZERO);
        let solar = solar.max(Watts::ZERO);

        let solar_to_load = demand.min(solar);
        let shortfall = demand - solar_to_load;
        let surplus = solar - solar_to_load;

        // Battery covers the shortfall through the inverter.
        let needed_at_terminals = self.battery_draw_for_load(shortfall);
        let battery_to_load = needed_at_terminals.min(battery_available.max(Watts::ZERO));
        let served_by_battery = battery_to_load * self.inverter_efficiency;
        let unserved = (shortfall - served_by_battery).max(Watts::ZERO);

        // Surplus solar goes to the charger, the rest is curtailed.
        let surplus_to_charger = surplus.min(charger_acceptance.max(Watts::ZERO));
        let curtailed = surplus - surplus_to_charger;

        Routing {
            solar_to_load,
            battery_to_load,
            surplus_to_charger,
            unserved,
            curtailed,
        }
    }
}

impl Default for PowerSwitcher {
    fn default() -> Self {
        Self::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw() -> PowerSwitcher {
        PowerSwitcher::prototype()
    }

    #[test]
    fn solar_covers_everything_when_plentiful() {
        let r = sw().route(
            Watts::new(100.0),
            Watts::new(250.0),
            Watts::new(500.0),
            Watts::new(120.0),
        );
        assert_eq!(r.solar_to_load, Watts::new(100.0));
        assert_eq!(r.battery_to_load, Watts::ZERO);
        assert_eq!(r.surplus_to_charger, Watts::new(120.0));
        assert_eq!(r.curtailed, Watts::new(30.0));
        assert_eq!(r.unserved, Watts::ZERO);
    }

    #[test]
    fn battery_bridges_the_shortfall_with_inverter_loss() {
        let r = sw().route(
            Watts::new(100.0),
            Watts::new(40.0),
            Watts::new(500.0),
            Watts::new(120.0),
        );
        assert_eq!(r.solar_to_load, Watts::new(40.0));
        // 60 W shortfall needs 60/0.92 ≈ 65.2 W at the terminals.
        assert!((r.battery_to_load.as_f64() - 60.0 / 0.92).abs() < 1e-9);
        assert_eq!(r.unserved, Watts::ZERO);
        assert_eq!(r.surplus_to_charger, Watts::ZERO);
    }

    #[test]
    fn exhausted_battery_leaves_demand_unserved() {
        let r = sw().route(
            Watts::new(100.0),
            Watts::ZERO,
            Watts::new(23.0),
            Watts::ZERO,
        );
        let served = 23.0 * 0.92;
        assert!((r.unserved.as_f64() - (100.0 - served)).abs() < 1e-9);
    }

    #[test]
    fn no_demand_routes_all_solar_to_charger() {
        let r = sw().route(
            Watts::ZERO,
            Watts::new(80.0),
            Watts::new(500.0),
            Watts::new(50.0),
        );
        assert_eq!(r.surplus_to_charger, Watts::new(50.0));
        assert_eq!(r.curtailed, Watts::new(30.0));
        assert_eq!(r.battery_to_load, Watts::ZERO);
    }

    #[test]
    fn energy_is_conserved() {
        // solar = to_load + to_charger + curtailed.
        let r = sw().route(
            Watts::new(120.0),
            Watts::new(90.0),
            Watts::new(10.0),
            Watts::new(40.0),
        );
        let solar_total =
            r.solar_to_load.as_f64() + r.surplus_to_charger.as_f64() + r.curtailed.as_f64();
        assert!((solar_total - 90.0).abs() < 1e-9);
        // demand = solar_to_load + battery served + unserved.
        let demand_total =
            r.solar_to_load.as_f64() + r.battery_to_load.as_f64() * 0.92 + r.unserved.as_f64();
        assert!((demand_total - 120.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_efficiency_rejected() {
        assert!(PowerSwitcher::new(0.0).is_err());
        assert!(PowerSwitcher::new(1.01).is_err());
    }
}
