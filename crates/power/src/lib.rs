//! Power infrastructure — switcher, charger, sensors and power tables —
//! the plumbing between solar supply, batteries and servers in the BAAT
//! reproduction.
//!
//! Models the prototype's power module (§V.A): IPDU server metering, the
//! PLC/relay/inverter power switcher, the controllable battery charger,
//! and the per-battery sensor front-ends whose rows (Table 2) feed the
//! BAAT controller's power tables.
//!
//! * [`PowerSwitcher`] — routes solar/battery power to a node with
//!   inverter losses, reporting unserved demand and curtailment;
//! * [`Charger`] — three-stage (bulk/absorption/float) lead-acid charging;
//! * [`BatterySensor`] — noisy voltage/current/temperature sampling;
//! * [`PowerTable`] — the controller-facing per-node history logs.
//!
//! # Examples
//!
//! ```
//! use baat_power::PowerSwitcher;
//! use baat_units::Watts;
//!
//! let switcher = PowerSwitcher::prototype();
//! let routing = switcher.route(
//!     Watts::new(100.0), // server demand
//!     Watts::new(60.0),  // solar share
//!     Watts::new(400.0), // battery can deliver
//!     Watts::new(110.0), // charger would accept
//! );
//! assert_eq!(routing.unserved, Watts::ZERO);
//! assert!(routing.battery_to_load.as_f64() > 40.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod charger;
mod error;
mod sensors;
mod switcher;
mod table;

pub use charger::{ChargeStage, Charger, StageTracker};
pub use error::PowerError;
pub use sensors::{BatterySensor, NoiseSpec};
pub use switcher::{PowerSwitcher, Routing};
pub use table::{NodeLog, PowerTable, ServerPowerRecord};
