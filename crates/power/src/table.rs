//! The per-node power table (paper Table 2 + Fig 7).
//!
//! "Each group of batteries has a power table which records the battery
//! utilization history logs … collected from corresponding sensor of each
//! battery and sent to [the] BAAT controller", which also reads server
//! power through the IPDU (§IV.A). The [`PowerTable`] is that
//! controller-facing data layer: per-node battery sensor rows and server
//! power rows.

use std::collections::VecDeque;

use baat_battery::SensorSample;
use baat_units::{SimInstant, Watts};

/// One IPDU server-power reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerPowerRecord {
    /// Reading timestamp.
    pub at: SimInstant,
    /// Server power at the outlet.
    pub power: Watts,
}

/// History log for one server/battery node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeLog {
    battery: VecDeque<SensorSample>,
    server: VecDeque<ServerPowerRecord>,
}

/// Retention limit per node and per channel.
const MAX_ROWS: usize = 8_192;

impl NodeLog {
    fn push_battery(&mut self, row: SensorSample) {
        if self.battery.len() == MAX_ROWS {
            self.battery.pop_front();
        }
        self.battery.push_back(row);
    }

    fn push_server(&mut self, row: ServerPowerRecord) {
        if self.server.len() == MAX_ROWS {
            self.server.pop_front();
        }
        self.server.push_back(row);
    }

    /// Battery sensor rows, oldest first.
    pub fn battery_rows(&self) -> impl Iterator<Item = &SensorSample> {
        self.battery.iter()
    }

    /// Server power rows, oldest first.
    pub fn server_rows(&self) -> impl Iterator<Item = &ServerPowerRecord> {
        self.server.iter()
    }

    /// The most recent battery row.
    pub fn latest_battery(&self) -> Option<&SensorSample> {
        self.battery.back()
    }

    /// The most recent server power row.
    pub fn latest_server(&self) -> Option<&ServerPowerRecord> {
        self.server.back()
    }

    /// Mean server power over the retained window.
    pub fn mean_server_power(&self) -> Watts {
        if self.server.is_empty() {
            return Watts::ZERO;
        }
        let sum: f64 = self.server.iter().map(|r| r.power.as_f64()).sum();
        Watts::new(sum / self.server.len() as f64)
    }
}

/// The monitoring architecture: one [`NodeLog`] per server/battery node.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTable {
    nodes: Vec<NodeLog>,
}

impl PowerTable {
    /// Creates a table for `nodes` server/battery pairs.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes: (0..nodes).map(|_| NodeLog::default()).collect(),
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a battery sensor row for a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn record_battery(&mut self, node: usize, row: SensorSample) {
        self.nodes[node].push_battery(row);
    }

    /// Records an IPDU server power row for a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn record_server(&mut self, node: usize, row: ServerPowerRecord) {
        self.nodes[node].push_server(row);
    }

    /// The log of one node, or `None` if out of range.
    pub fn node(&self, node: usize) -> Option<&NodeLog> {
        self.nodes.get(node)
    }

    /// Iterates over all node logs.
    pub fn iter(&self) -> impl Iterator<Item = &NodeLog> {
        self.nodes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_units::{Amperes, Celsius, Soc, Volts};

    fn sample(at: u64) -> SensorSample {
        SensorSample {
            at: SimInstant::from_secs(at),
            voltage: Volts::new(12.3),
            current: Amperes::new(2.0),
            temperature: Celsius::new(26.0),
            soc: Soc::new(0.8).unwrap(),
        }
    }

    #[test]
    fn records_are_retrievable_per_node() {
        let mut t = PowerTable::new(3);
        t.record_battery(1, sample(10));
        t.record_server(
            1,
            ServerPowerRecord {
                at: SimInstant::from_secs(10),
                power: Watts::new(90.0),
            },
        );
        assert_eq!(t.node(1).unwrap().battery_rows().count(), 1);
        assert_eq!(t.node(0).unwrap().battery_rows().count(), 0);
        assert_eq!(
            t.node(1).unwrap().latest_server().unwrap().power,
            Watts::new(90.0)
        );
        assert!(t.node(7).is_none());
    }

    #[test]
    fn mean_server_power_over_window() {
        let mut t = PowerTable::new(1);
        for (at, p) in [(0, 80.0), (10, 120.0)] {
            t.record_server(
                0,
                ServerPowerRecord {
                    at: SimInstant::from_secs(at),
                    power: Watts::new(p),
                },
            );
        }
        assert_eq!(t.node(0).unwrap().mean_server_power(), Watts::new(100.0));
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut t = PowerTable::new(1);
        for i in 0..(MAX_ROWS as u64 + 5) {
            t.record_battery(0, sample(i));
        }
        let log = t.node(0).unwrap();
        assert_eq!(log.battery_rows().count(), MAX_ROWS);
        assert_eq!(
            log.battery_rows().next().unwrap().at,
            SimInstant::from_secs(5)
        );
    }

    #[test]
    fn empty_log_defaults() {
        let t = PowerTable::new(1);
        let log = t.node(0).unwrap();
        assert!(log.latest_battery().is_none());
        assert_eq!(log.mean_server_power(), Watts::ZERO);
    }
}
