//! Battery sensor front-ends with measurement noise.
//!
//! The prototype instruments every battery with voltage, current and
//! temperature sensors whose signals pass through an NI BNC-2110 block
//! into a PCI-6221 acquisition card (§V.A, Table 2). The model adds
//! bounded uniform measurement noise to the true values — the BAAT
//! controller only ever sees these noisy readings.

use baat_battery::{BatteryModel, SensorSample};
use baat_rng::StdRng;
use baat_units::{Amperes, Celsius, SimInstant, Volts};

/// Relative/absolute noise bounds of one sensor channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseSpec {
    /// Half-width of the voltage noise (volts).
    pub voltage: f64,
    /// Half-width of the current noise (amperes).
    pub current: f64,
    /// Half-width of the temperature noise (°C).
    pub temperature: f64,
}

impl Default for NoiseSpec {
    fn default() -> Self {
        // Hall-effect current sensor and thermistor class accuracy.
        Self {
            voltage: 0.02,
            current: 0.05,
            temperature: 0.5,
        }
    }
}

impl NoiseSpec {
    /// A noiseless (ideal) sensor.
    pub const IDEAL: NoiseSpec = NoiseSpec {
        voltage: 0.0,
        current: 0.0,
        temperature: 0.0,
    };
}

/// A per-battery sensor front-end.
#[derive(Debug, Clone)]
pub struct BatterySensor {
    noise: NoiseSpec,
    rng: StdRng,
}

impl BatterySensor {
    /// Creates a sensor with the given noise and deterministic seed.
    pub fn new(noise: NoiseSpec, seed: u64) -> Self {
        Self {
            noise,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Checkpoint view: the noise-stream position.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuilds a sensor at a saved noise-stream position.
    pub fn restore(noise: NoiseSpec, rng_state: [u64; 4]) -> Self {
        Self {
            noise,
            rng: StdRng::from_state(rng_state),
        }
    }

    fn jitter(&mut self, half_width: f64) -> f64 {
        if half_width == 0.0 {
            0.0
        } else {
            self.rng.random_range(-half_width..=half_width)
        }
    }

    /// Samples a battery, returning a noisy [`SensorSample`].
    ///
    /// `true_current` and `true_voltage` come from the battery's last step
    /// result; SoC is re-derived from the noisy voltage the way the
    /// prototype derives it ("discharging voltage used for calculating
    /// SoC", Table 2) — here we keep the true SoC but perturb the
    /// electrical channels. Works for any [`BatteryModel`] chemistry;
    /// only temperature and SoC are read from the battery.
    pub fn sample<B: BatteryModel>(
        &mut self,
        battery: &B,
        true_voltage: Volts,
        true_current: Amperes,
        at: SimInstant,
    ) -> SensorSample {
        SensorSample {
            at,
            voltage: Volts::new(true_voltage.as_f64() + self.jitter(self.noise.voltage)),
            current: Amperes::new(true_current.as_f64() + self.jitter(self.noise.current)),
            temperature: Celsius::new(
                battery.temperature().as_f64() + self.jitter(self.noise.temperature),
            ),
            soc: battery.soc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_battery::{Battery, BatterySpec};

    #[test]
    fn ideal_sensor_reports_exact_values() {
        let battery = Battery::new(BatterySpec::prototype());
        let mut sensor = BatterySensor::new(NoiseSpec::IDEAL, 1);
        let s = sensor.sample(
            &battery,
            Volts::new(12.5),
            Amperes::new(3.0),
            SimInstant::START,
        );
        assert_eq!(s.voltage, Volts::new(12.5));
        assert_eq!(s.current, Amperes::new(3.0));
        assert_eq!(s.temperature, battery.temperature());
    }

    #[test]
    fn noisy_sensor_stays_within_bounds() {
        let battery = Battery::new(BatterySpec::prototype());
        let mut sensor = BatterySensor::new(NoiseSpec::default(), 2);
        for _ in 0..1000 {
            let s = sensor.sample(
                &battery,
                Volts::new(12.5),
                Amperes::new(3.0),
                SimInstant::START,
            );
            assert!((s.voltage.as_f64() - 12.5).abs() <= 0.02 + 1e-12);
            assert!((s.current.as_f64() - 3.0).abs() <= 0.05 + 1e-12);
            assert!((s.temperature.as_f64() - battery.temperature().as_f64()).abs() <= 0.5 + 1e-12);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let battery = Battery::new(BatterySpec::prototype());
        let mut a = BatterySensor::new(NoiseSpec::default(), 7);
        let mut b = BatterySensor::new(NoiseSpec::default(), 7);
        for _ in 0..10 {
            let sa = a.sample(
                &battery,
                Volts::new(12.0),
                Amperes::new(1.0),
                SimInstant::START,
            );
            let sb = b.sample(
                &battery,
                Volts::new(12.0),
                Amperes::new(1.0),
                SimInstant::START,
            );
            assert_eq!(sa.voltage, sb.voltage);
            assert_eq!(sa.current, sb.current);
        }
    }
}
