//! Error types for the power infrastructure.

/// Configuration failure in the power infrastructure.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
}

impl core::fmt::Display for PowerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PowerError::InvalidConfig { field, reason } => {
                write!(f, "invalid power config field `{field}`: {reason}")
            }
        }
    }
}

impl std::error::Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let err = PowerError::InvalidConfig {
            field: "efficiency",
            reason: "zero".to_owned(),
        };
        assert!(err.to_string().contains("efficiency"));
    }
}
