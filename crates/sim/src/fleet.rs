//! Incremental fleet state for placement: struct-of-arrays score
//! caches, dirty-node invalidation, and order-stable ranked indices.
//!
//! The legacy placement path rebuilds a [`crate::SystemView`] and re-sorts
//! every node per `placement_order` call — O(n log n) with a weighted-
//! aging evaluation per comparison. [`FleetView`] replaces that for
//! policies that declare a [`PlacementSpec`]: per-bank aging scores are
//! cached in contiguous arrays, only nodes *marked dirty* since the last
//! query are re-scored, and each ranking mode maintains a sorted order
//! incrementally — O(dirty · log n) per query instead of O(n log n) per
//! placement.
//!
//! # Determinism and bit-identity
//!
//! The ranked orders reproduce the legacy sorts *exactly*:
//!
//! * Scores come from the same calls the scratch path makes
//!   (`AgingMetrics::from_accumulator` on the bank's lifetime telemetry,
//!   then `baat_metrics::weighted_aging` per class), so the cached floats
//!   are bit-identical to freshly computed ones.
//! * Each node's sort key packs `(degraded, score, node)` into one `u128`
//!   using [`ordered_bits`], which maps `f64::total_cmp` order onto
//!   unsigned integer order. Keys are unique (the node id is embedded),
//!   so the incremental order equals what the legacy *stable* sort
//!   produces over ascending node ids — ties on `(degraded, score)`
//!   break by node index in both.
//! * Dirty marks are engine bookkeeping only: they never read or write
//!   simulated state, never draw randomness, and are independent of
//!   whether observation is enabled.
//!
//! See DESIGN.md §10 for the full architecture and invalidation map.

use baat_metrics::{weighted_aging_all, AgingMetrics};
use baat_server::ServerPowerModel;
use baat_workload::{DemandClass, WorkloadKind};

/// Number of weighted-aging ranking modes (one per Table-3 demand
/// class); mode [`NAT_MODE`] ranks by lifetime NAT alone (BAAT-h).
const WEIGHTED_MODES: usize = 4;
/// The lifetime-NAT ranking mode (no degraded tier, matching BAAT-h's
/// legacy sort).
pub(crate) const NAT_MODE: usize = WEIGHTED_MODES;
/// Total ranking modes a [`FleetView`] can maintain.
const MODES: usize = WEIGHTED_MODES + 1;

/// Dirty-set rebuild threshold: when more than `1/REBUILD_DIVISOR` of
/// the fleet is dirty, a wholesale key re-sort beats per-node repair.
const REBUILD_DIVISOR: usize = 4;

/// How a policy's placement order is produced.
///
/// [`PlacementSpec::Custom`] (the trait default) keeps the legacy path:
/// the engine builds a [`crate::SystemView`] and calls
/// [`crate::Policy::placement_order`]. Any other variant is a
/// declarative description the engine satisfies from its incremental
/// [`FleetView`] — bit-identical to the legacy path, without building
/// views or re-sorting from scratch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementSpec {
    /// Call [`crate::Policy::placement_order`] with a fresh view.
    Custom,
    /// Ascending node index (e-Buff / BAAT-s first-fit).
    FirstFit,
    /// Rotating start index, one step per placement attempt
    /// ([`crate::RoundRobinPolicy`] semantics).
    RoundRobin,
    /// Ascending Eq-6 weighted aging for the workload's demand class,
    /// degraded nodes last, ties by node index (BAAT's Fig-8 order).
    WeightedAging {
        /// The power model the policy classifies workloads against.
        server_power: ServerPowerModel,
    },
    /// Ascending lifetime normalized-Ah-throughput, ties by node index
    /// (BAAT-h's naive aging-hiding order).
    LifetimeNat,
}

/// Why a node was marked dirty. The per-node reason set is a monotone
/// union over the run — observability for tests and diagnostics; the
/// drainable dirty *list* is what drives re-scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum DirtyReason {
    /// A policy or fallback action touched the node (DVFS, migration
    /// endpoint, SoC-floor change on its bank).
    Action,
    /// A fault targeting the node or its bank was injected or cleared.
    Fault,
    /// The bank's charger switched charge stage.
    ModeSwitch,
    /// The bank's battery integrated a timestep (telemetry advanced).
    Battery,
    /// The node entered or left degraded (stale-telemetry) mode.
    Degraded,
    /// The node powered on or off (window edge, shedding, restart,
    /// host-failure enforcement).
    Power,
}

impl DirtyReason {
    /// Number of reasons.
    pub const COUNT: usize = 6;

    /// All reasons.
    pub const ALL: [DirtyReason; DirtyReason::COUNT] = [
        DirtyReason::Action,
        DirtyReason::Fault,
        DirtyReason::ModeSwitch,
        DirtyReason::Battery,
        DirtyReason::Degraded,
        DirtyReason::Power,
    ];

    /// This reason's bit in a node's dirty-reason mask.
    pub fn bit(self) -> u8 {
        1 << (self as usize)
    }

    /// Stable snake-case name.
    pub fn name(self) -> &'static str {
        match self {
            DirtyReason::Action => "action",
            DirtyReason::Fault => "fault",
            DirtyReason::ModeSwitch => "mode_switch",
            DirtyReason::Battery => "battery",
            DirtyReason::Degraded => "degraded",
            DirtyReason::Power => "power",
        }
    }
}

/// Maps an `f64`'s bits onto a `u64` whose unsigned order equals
/// [`f64::total_cmp`] order (the IEEE-754 total order): flip all bits of
/// negatives, flip only the sign bit of non-negatives.
fn ordered_bits(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Packs one node's sort key for `mode`. Weighted modes order by
/// `(degraded, score, node)`; the NAT mode by `(score, node)` — exactly
/// the comparator chains of the legacy sorts, with the node id as the
/// unique tiebreak a stable sort over ascending ids would produce.
fn mode_key(
    mode: usize,
    node: usize,
    bank: usize,
    bank_weighted: &[[f64; WEIGHTED_MODES]],
    bank_nat: &[f64],
    degraded: &[bool],
) -> u128 {
    if mode == NAT_MODE {
        ((ordered_bits(bank_nat[bank]) as u128) << 32) | node as u128
    } else {
        ((degraded[node] as u128) << 96)
            | ((ordered_bits(bank_weighted[bank][mode]) as u128) << 32)
            | node as u128
    }
}

/// One ranking mode's order, maintained incrementally: `order[r]` is the
/// node at rank `r`, `pos[node]` its rank, `node_key[node]` its packed
/// sort key. Small dirty sets are repaired by binary-searched
/// remove/insert; large ones trigger a wholesale re-sort. Both produce
/// the same (unique-key) order.
#[derive(Debug, Clone)]
struct RankedOrder {
    node_key: Vec<u128>,
    order: Vec<u32>,
    pos: Vec<u32>,
}

impl RankedOrder {
    fn build(node_key: Vec<u128>) -> Self {
        let n = node_key.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| node_key[i as usize]);
        let mut pos = vec![0u32; n];
        for (r, &i) in order.iter().enumerate() {
            pos[i as usize] = r as u32;
        }
        Self {
            node_key,
            order,
            pos,
        }
    }

    /// Re-sorts `order` from `node_key` (caller already updated the
    /// dirty keys in place).
    fn rebuild(&mut self) {
        let keys = &self.node_key;
        self.order.sort_unstable_by_key(|&i| keys[i as usize]);
        for (r, &i) in self.order.iter().enumerate() {
            self.pos[i as usize] = r as u32;
        }
    }

    /// Moves one node to its new key's rank. O(log n) search plus the
    /// memmove between old and new rank.
    fn repair(&mut self, node: u32, new_key: u128) {
        let i = node as usize;
        if self.node_key[i] == new_key {
            return;
        }
        self.node_key[i] = new_key;
        let cur = self.pos[i] as usize;
        self.order.remove(cur);
        let keys = &self.node_key;
        let ins = self
            .order
            .partition_point(|&other| keys[other as usize] < new_key);
        self.order.insert(ins, node);
        let (lo, hi) = (cur.min(ins), cur.max(ins));
        for r in lo..=hi {
            self.pos[self.order[r] as usize] = r as u32;
        }
    }
}

/// Struct-of-arrays fleet state with dirty-node invalidation.
///
/// Owned by the engine; refreshed lazily when a [`PlacementSpec`]-driven
/// placement queries it. See the module docs for the bit-identity
/// argument.
#[derive(Debug, Clone)]
pub struct FleetView {
    nodes: usize,
    bank_of: Vec<usize>,
    /// `1 / members(bank)` — the per-node share of bank-level figures.
    bank_share: Vec<f64>,

    // Contiguous per-node state (scatter of the bank caches plus
    // node-local flags), refreshed for dirty nodes on each query.
    soc: Vec<f64>,
    headroom: Vec<f64>,
    damage: Vec<f64>,
    degraded: Vec<bool>,
    online: Vec<bool>,

    // Per-bank score caches, recomputed once per refresh per dirty bank.
    bank_weighted: Vec<[f64; WEIGHTED_MODES]>,
    bank_nat: Vec<f64>,
    bank_soc: Vec<f64>,
    bank_headroom: Vec<f64>,
    bank_damage: Vec<f64>,

    // Dirty tracking: a drainable deduplicated list plus per-node flag,
    // a monotone per-node reason mask, and per-reason mark counters.
    dirty: Vec<u32>,
    dirty_flag: Vec<bool>,
    reasons: Vec<u8>,
    reason_marks: [u64; DirtyReason::COUNT],
    bank_seen: Vec<bool>,
    seen_banks: Vec<u32>,

    /// Lazily built ranked orders, one per mode actually queried.
    ranks: [Option<RankedOrder>; MODES],
    /// Engine-owned round-robin cursor (advances once per placement
    /// attempt, mirroring [`crate::RoundRobinPolicy`]).
    rr_cursor: usize,
}

impl FleetView {
    /// Builds the fleet state for `nodes` nodes over `banks` battery
    /// banks. Every node starts dirty (no reason bits — initial fill is
    /// not a mutation), so the first refresh scores the whole fleet.
    pub(crate) fn new(nodes: usize, banks: usize, bank_of: Vec<usize>) -> Self {
        debug_assert_eq!(bank_of.len(), nodes);
        let mut members = vec![0usize; banks];
        for &b in &bank_of {
            members[b] += 1;
        }
        let bank_share: Vec<f64> = members
            .iter()
            .map(|&m| if m == 0 { 0.0 } else { 1.0 / m as f64 })
            .collect();
        Self {
            nodes,
            bank_of,
            bank_share,
            soc: vec![0.0; nodes],
            headroom: vec![0.0; nodes],
            damage: vec![0.0; nodes],
            degraded: vec![false; nodes],
            online: vec![false; nodes],
            bank_weighted: vec![[0.0; WEIGHTED_MODES]; banks],
            bank_nat: vec![0.0; banks],
            bank_soc: vec![0.0; banks],
            bank_headroom: vec![0.0; banks],
            bank_damage: vec![0.0; banks],
            dirty: (0..nodes as u32).collect(),
            dirty_flag: vec![true; nodes],
            reasons: vec![0; nodes],
            reason_marks: [0; DirtyReason::COUNT],
            bank_seen: vec![false; banks],
            seen_banks: Vec::new(),
            ranks: [None, None, None, None, None],
            rr_cursor: 0,
        }
    }

    /// Marks one node stale. Idempotent on the dirty list; the reason
    /// mask and per-reason counter always record the mark.
    pub(crate) fn mark(&mut self, node: usize, reason: DirtyReason) {
        self.reason_marks[reason as usize] += 1;
        self.reasons[node] |= reason.bit();
        if !self.dirty_flag[node] {
            self.dirty_flag[node] = true;
            self.dirty.push(node as u32);
        }
    }

    /// Marks every node stale (battery steps, window edges, global
    /// faults).
    pub(crate) fn mark_all(&mut self, reason: DirtyReason) {
        for node in 0..self.nodes {
            self.mark(node, reason);
        }
    }

    /// `true` when no node needs re-scoring.
    pub(crate) fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Takes the dirty list for a refresh pass; hand it back through
    /// [`Self::commit_refresh`] so the allocation is reused.
    pub(crate) fn take_dirty(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.dirty)
    }

    /// `true` the first time `bank` is seen in the current refresh pass
    /// — callers recompute the bank's scores exactly once per pass.
    pub(crate) fn bank_needs_refresh(&mut self, bank: usize) -> bool {
        if self.bank_seen[bank] {
            return false;
        }
        self.bank_seen[bank] = true;
        self.seen_banks.push(bank as u32);
        true
    }

    /// Stores bank-level scores from the bank's lifetime metrics. The
    /// weighted values come from [`weighted_aging_all`] — the same
    /// `weighted_aging` calls the scratch path makes per comparison.
    pub(crate) fn update_bank(
        &mut self,
        bank: usize,
        metrics: &AgingMetrics,
        soc: f64,
        headroom_w: f64,
        damage: f64,
    ) {
        self.bank_weighted[bank] = weighted_aging_all(metrics);
        self.bank_nat[bank] = metrics.nat;
        self.bank_soc[bank] = soc;
        self.bank_headroom[bank] = headroom_w;
        self.bank_damage[bank] = damage;
    }

    /// Scatters the node's bank scores plus node-local flags into the
    /// contiguous per-node arrays.
    pub(crate) fn update_node(&mut self, node: usize, degraded: bool, online: bool) {
        let bank = self.bank_of[node];
        self.degraded[node] = degraded;
        self.online[node] = online;
        self.soc[node] = self.bank_soc[bank];
        self.headroom[node] = self.bank_headroom[bank] * self.bank_share[bank];
        self.damage[node] = self.bank_damage[bank];
    }

    /// Folds the refreshed dirty set into every built ranking mode —
    /// per-node repair for small sets, a wholesale key re-sort past the
    /// `n/4` threshold (identical orders either way) — then clears the
    /// dirty flags and returns the list's allocation to the pool.
    pub(crate) fn commit_refresh(&mut self, mut dirty: Vec<u32>) {
        let wholesale = dirty.len() > self.nodes / REBUILD_DIVISOR;
        for mode in 0..MODES {
            let Some(rank) = self.ranks[mode].as_mut() else {
                continue;
            };
            for &node in &dirty {
                let i = node as usize;
                let key = mode_key(
                    mode,
                    i,
                    self.bank_of[i],
                    &self.bank_weighted,
                    &self.bank_nat,
                    &self.degraded,
                );
                if wholesale {
                    rank.node_key[i] = key;
                } else {
                    rank.repair(node, key);
                }
            }
            if wholesale {
                rank.rebuild();
            }
        }
        for &node in &dirty {
            self.dirty_flag[node as usize] = false;
        }
        while let Some(b) = self.seen_banks.pop() {
            self.bank_seen[b as usize] = false;
        }
        dirty.clear();
        self.dirty = dirty;
    }

    /// Builds `mode`'s ranked order from the current caches if this is
    /// its first query. Callers must refresh (drain the dirty set)
    /// first, so the caches cover every node.
    pub(crate) fn ensure_mode(&mut self, mode: usize) {
        if self.ranks[mode].is_some() {
            return;
        }
        debug_assert!(self.dirty.is_empty(), "refresh before building a mode");
        let keys: Vec<u128> = (0..self.nodes)
            .map(|i| {
                mode_key(
                    mode,
                    i,
                    self.bank_of[i],
                    &self.bank_weighted,
                    &self.bank_nat,
                    &self.degraded,
                )
            })
            .collect();
        self.ranks[mode] = Some(RankedOrder::build(keys));
    }

    /// The node at `rank` in `mode`'s current order.
    pub(crate) fn ranked_node(&self, mode: usize, rank: usize) -> usize {
        let order = &self.ranks[mode].as_ref().expect("mode built").order;
        order[rank] as usize
    }

    /// Advances the round-robin cursor and returns the start index for
    /// this placement attempt.
    pub(crate) fn rr_next(&mut self) -> usize {
        let n = self.nodes;
        if n == 0 {
            return 0;
        }
        let start = self.rr_cursor % n;
        self.rr_cursor = (self.rr_cursor + 1) % n;
        start
    }

    /// Checkpoint view: the raw round-robin cursor.
    pub(crate) fn rr_cursor(&self) -> usize {
        self.rr_cursor
    }

    /// Restores the round-robin cursor from a checkpoint. Everything
    /// else in the view is a lazily rebuilt cache over live state, so a
    /// fresh all-dirty view plus this cursor resumes bit-identically.
    pub(crate) fn set_rr_cursor(&mut self, cursor: usize) {
        self.rr_cursor = cursor;
    }

    /// The start index the next round-robin placement would use, without
    /// advancing the cursor.
    pub(crate) fn rr_peek(&self) -> usize {
        if self.nodes == 0 {
            0
        } else {
            self.rr_cursor % self.nodes
        }
    }

    /// Per-node battery state of charge (refreshed lazily; current as of
    /// the last placement query).
    pub fn socs(&self) -> &[f64] {
        &self.soc
    }

    /// Per-node battery power headroom above the SoC floor, in watts
    /// (the node's share of its bank's headroom).
    pub fn headrooms(&self) -> &[f64] {
        &self.headroom
    }

    /// Per-node accumulated aging damage (1.0 = end of life).
    pub fn damages(&self) -> &[f64] {
        &self.damage
    }

    /// Per-node degraded (stale-telemetry fallback) flags.
    pub fn degraded_flags(&self) -> &[bool] {
        &self.degraded
    }

    /// Per-node online flags.
    pub fn online_flags(&self) -> &[bool] {
        &self.online
    }

    /// The union of [`DirtyReason`] bits ever recorded for `node`.
    pub fn dirty_reasons(&self, node: usize) -> u8 {
        self.reasons[node]
    }

    /// Total marks recorded for `reason` (every call counts, including
    /// marks on already-dirty nodes).
    pub fn reason_marks(&self, reason: DirtyReason) -> u64 {
        self.reason_marks[reason as usize]
    }

    /// Number of nodes currently awaiting re-scoring.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }
}

/// Classifies a workload against the policy's server power model —
/// the same expression `baat-core`'s `classify_workload` uses, inlined
/// here because the engine cannot depend on `baat-core`.
pub(crate) fn demand_class(kind: WorkloadKind, server_power: &ServerPowerModel) -> DemandClass {
    kind.profile()
        .classify(server_power.idle(), server_power.peak())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_bits_matches_total_cmp() {
        let samples = [
            f64::NEG_INFINITY,
            -1.5e300,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            0.25,
            1.0,
            1.5e300,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    ordered_bits(a).cmp(&ordered_bits(b)),
                    a.total_cmp(&b),
                    "a={a}, b={b}"
                );
            }
        }
    }

    fn keys_of(values: &[f64]) -> Vec<u128> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| ((ordered_bits(v) as u128) << 32) | i as u128)
            .collect()
    }

    #[test]
    fn build_matches_stable_sort() {
        let values = [0.3, 0.1, 0.3, 0.0, 0.2, 0.1];
        let rank = RankedOrder::build(keys_of(&values));
        // Reference: stable sort over ascending node ids by value.
        let mut expect: Vec<usize> = (0..values.len()).collect();
        expect.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let got: Vec<usize> = rank.order.iter().map(|&i| i as usize).collect();
        assert_eq!(got, expect);
        for (r, &i) in rank.order.iter().enumerate() {
            assert_eq!(rank.pos[i as usize] as usize, r);
        }
    }

    #[test]
    fn repair_equals_rebuild() {
        let mut values = vec![0.5, 0.2, 0.9, 0.1, 0.7, 0.3, 0.6, 0.4];
        let mut incremental = RankedOrder::build(keys_of(&values));
        // Deterministic pseudo-random single-node updates.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let node = (state >> 33) as usize % values.len();
            let value = ((state >> 11) & 0xFFFF) as f64 / 65536.0;
            values[node] = value;
            incremental.repair(node as u32, keys_of(&values)[node]);
            let scratch = RankedOrder::build(keys_of(&values));
            assert_eq!(incremental.order, scratch.order);
            assert_eq!(incremental.pos, scratch.pos);
        }
    }

    #[test]
    fn marks_dedupe_but_reasons_accumulate() {
        let mut fleet = FleetView::new(4, 4, vec![0, 1, 2, 3]);
        // Drain the construction-time dirt.
        let dirty = fleet.take_dirty();
        fleet.commit_refresh(dirty);
        assert!(fleet.is_clean());

        fleet.mark(2, DirtyReason::Action);
        fleet.mark(2, DirtyReason::Fault);
        fleet.mark(2, DirtyReason::Action);
        assert_eq!(fleet.dirty_len(), 1);
        assert_eq!(
            fleet.dirty_reasons(2),
            DirtyReason::Action.bit() | DirtyReason::Fault.bit()
        );
        assert_eq!(fleet.reason_marks(DirtyReason::Action), 2);
        assert_eq!(fleet.reason_marks(DirtyReason::Fault), 1);
        assert_eq!(fleet.dirty_reasons(0), 0);

        let dirty = fleet.take_dirty();
        assert_eq!(dirty, vec![2]);
        fleet.commit_refresh(dirty);
        assert!(fleet.is_clean());
        // The reason mask survives the refresh (monotone union).
        assert_ne!(fleet.dirty_reasons(2), 0);
    }

    #[test]
    fn round_robin_cursor_cycles() {
        let mut fleet = FleetView::new(3, 3, vec![0, 1, 2]);
        assert_eq!(fleet.rr_next(), 0);
        assert_eq!(fleet.rr_next(), 1);
        assert_eq!(fleet.rr_next(), 2);
        assert_eq!(fleet.rr_next(), 0);
    }

    #[test]
    fn reason_bits_are_distinct() {
        let mut seen = 0u8;
        for r in DirtyReason::ALL {
            assert_eq!(seen & r.bit(), 0, "{} overlaps", r.name());
            seen |= r.bit();
        }
    }
}
