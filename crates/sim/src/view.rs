//! The read-only system view handed to policies.

use baat_metrics::AgingMetrics;
use baat_server::DvfsLevel;
use baat_solar::Weather;
use baat_units::{Fraction, SimInstant, Soc, TimeOfDay, Watts};
use baat_workload::{VmId, VmState, WorkloadKind};

/// Snapshot of one VM for policy decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmView {
    /// The VM's identifier.
    pub id: VmId,
    /// The hosted workload.
    pub kind: WorkloadKind,
    /// Lifecycle state.
    pub state: VmState,
    /// Completed fraction of nominal work.
    pub progress: f64,
}

/// Snapshot of one server/battery node for policy decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeView {
    /// Node index (server and battery share it).
    pub node: usize,
    /// Battery state of charge.
    pub soc: Soc,
    /// Metrics over the current control window.
    pub window_metrics: AgingMetrics,
    /// Metrics since installation.
    pub lifetime_metrics: AgingMetrics,
    /// Accumulated aging damage (1.0 = end-of-life).
    pub damage: f64,
    /// Effective capacity as a fraction of nominal.
    pub capacity_fraction: f64,
    /// Server electrical power right now.
    pub server_power: Watts,
    /// Server CPU utilization.
    pub utilization: Fraction,
    /// Current DVFS level.
    pub dvfs: DvfsLevel,
    /// `true` if the server is powered on.
    pub online: bool,
    /// `true` while the node's telemetry is stale past the configured
    /// bound and the engine is in degraded (conservative fallback) mode
    /// for it. Policies should treat this node's battery readings as
    /// last-known-good, not current.
    pub degraded: bool,
    /// Free schedulable resources (cores, memory GiB).
    pub free_resources: (u32, u32),
    /// Hosted VMs.
    pub vms: Vec<VmView>,
    /// Power the battery could deliver right now (respecting the SoC
    /// floor).
    pub battery_available: Watts,
    /// Effective battery energy capacity right now (Wh), after aging.
    pub battery_capacity_wh: f64,
    /// Nominal battery charge capacity (Ah).
    pub battery_capacity_ah: f64,
    /// Nominal life-long Ah throughput (`CAP_nom` in Eq 1).
    pub battery_lifetime_throughput_ah: f64,
    /// The policy-set SoC floor currently in force.
    pub soc_floor: Soc,
    /// Cumulative under-voltage/empty cutoff events.
    pub cutoff_events: u64,
    /// Hours since the battery last reached full charge.
    pub hours_since_full: f64,
}

/// Snapshot of the whole system at a control instant.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemView {
    /// Simulation time.
    pub now: SimInstant,
    /// Wall-clock time of day.
    pub tod: TimeOfDay,
    /// Today's weather class.
    pub weather: Weather,
    /// Total solar power this instant.
    pub solar: Watts,
    /// Per-node snapshots, indexed by node id.
    pub nodes: Vec<NodeView>,
}

impl SystemView {
    /// Index of the node whose battery holds the least charge.
    pub fn lowest_soc_node(&self) -> Option<usize> {
        self.nodes
            .iter()
            .min_by(|a, b| a.soc.value().total_cmp(&b.soc.value()))
            .map(|n| n.node)
    }

    /// Nodes that are online, sorted by index.
    pub fn online_nodes(&self) -> impl Iterator<Item = &NodeView> {
        self.nodes.iter().filter(|n| n.online)
    }

    /// Total server power demand right now.
    pub fn total_demand(&self) -> Watts {
        self.nodes.iter().map(|n| n.server_power).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_metrics::{AgingMetrics, BatteryRatings};
    use baat_units::AmpHours;

    fn metrics() -> AgingMetrics {
        AgingMetrics::from_accumulator(
            &baat_battery::UsageAccumulator::default(),
            &BatteryRatings {
                capacity: AmpHours::new(35.0),
                lifetime_throughput: AmpHours::new(17_500.0),
            },
        )
    }

    fn node(i: usize, soc: f64, online: bool) -> NodeView {
        NodeView {
            node: i,
            soc: Soc::new(soc).unwrap(),
            window_metrics: metrics(),
            lifetime_metrics: metrics(),
            damage: 0.0,
            capacity_fraction: 1.0,
            server_power: Watts::new(100.0),
            utilization: Fraction::HALF,
            dvfs: DvfsLevel::P0,
            online,
            degraded: false,
            free_resources: (8, 16),
            vms: Vec::new(),
            battery_available: Watts::new(300.0),
            battery_capacity_wh: 840.0,
            battery_capacity_ah: 70.0,
            battery_lifetime_throughput_ah: 35_000.0,
            soc_floor: Soc::EMPTY,
            cutoff_events: 0,
            hours_since_full: 0.0,
        }
    }

    #[test]
    fn lowest_soc_node_found() {
        let view = SystemView {
            now: SimInstant::START,
            tod: TimeOfDay::NOON,
            weather: Weather::Sunny,
            solar: Watts::new(500.0),
            nodes: vec![node(0, 0.9, true), node(1, 0.2, true), node(2, 0.5, false)],
        };
        assert_eq!(view.lowest_soc_node(), Some(1));
        assert_eq!(view.online_nodes().count(), 2);
        assert_eq!(view.total_demand(), Watts::new(300.0));
    }

    #[test]
    fn empty_view_has_no_lowest() {
        let view = SystemView {
            now: SimInstant::START,
            tod: TimeOfDay::NOON,
            weather: Weather::Sunny,
            solar: Watts::ZERO,
            nodes: vec![],
        };
        assert_eq!(view.lowest_soc_node(), None);
    }
}
