//! Simulation configuration.

use baat_battery::{BatterySpec, Chemistry, VariationParams};
use baat_faults::FaultPlan;
use baat_power::NoiseSpec;
use baat_server::{MigrationSpec, ServerCapacity, ServerPowerModel};
use baat_solar::Weather;
use baat_units::{AmpHours, Amperes, Fraction, Ohms, Volts};
use baat_units::{Celsius, SimDuration, TimeOfDay, WattHours};

use crate::error::SimError;

/// How batteries are attached to servers (paper Fig 7 supports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatteryTopology {
    /// Each server has its own battery bank (Google-style in-server
    /// integration \[1\]) — the prototype default.
    PerServer,
    /// Several servers share per-rack battery pools (Facebook Open Rack
    /// style \[3\]). Nodes are assigned round-robin-contiguously to
    /// `pools` pools; each pool's bank aggregates the per-node capacity.
    SharedPool {
        /// Number of pools; must divide the node count.
        pools: usize,
    },
}

impl BatteryTopology {
    /// Number of physical battery banks for `nodes` servers.
    pub fn banks(self, nodes: usize) -> usize {
        match self {
            BatteryTopology::PerServer => nodes,
            BatteryTopology::SharedPool { pools } => pools,
        }
    }

    /// The bank a node draws from.
    pub fn bank_of(self, node: usize, nodes: usize) -> usize {
        match self {
            BatteryTopology::PerServer => node,
            BatteryTopology::SharedPool { pools } => node / (nodes / pools),
        }
    }

    /// Servers per bank.
    pub fn nodes_per_bank(self, nodes: usize) -> usize {
        nodes / self.banks(nodes)
    }
}

/// Engine worker-thread count — a *performance* knob, deliberately
/// invisible to configuration identity.
///
/// Sharded stepping is bit-identical at any thread count, so two
/// configs differing only in `threads` describe the same simulation:
/// they must compare equal (the bench runner groups warm-started
/// scenarios by config equality) and must hash identically (snapshot
/// `config_hash` covers the `Debug` rendering, and a snapshot taken on
/// an 8-thread run must restore into a 1-thread process). Both are
/// guaranteed here: `PartialEq` always matches and `Debug` prints a
/// fixed placeholder.
#[derive(Clone, Copy)]
pub struct EngineThreads(usize);

impl EngineThreads {
    /// Single-threaded stepping (the default).
    pub const ONE: EngineThreads = EngineThreads(1);

    /// Wraps a thread count; clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        Self(threads.max(1))
    }

    /// The thread count (≥ 1).
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for EngineThreads {
    fn default() -> Self {
        Self::ONE
    }
}

impl std::fmt::Debug for EngineThreads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Fixed rendering regardless of the count: the snapshot config
        // hash covers `format!("{config:?}")`, and thread count is not
        // part of a run's identity.
        f.write_str("EngineThreads(_)")
    }
}

impl PartialEq for EngineThreads {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for EngineThreads {}

/// Full configuration of one green-datacenter simulation.
///
/// Defaults reproduce the paper's prototype: six servers with individual
/// 12 V 35 Ah batteries, an 8 kWh-sunny-day solar array, servers powered
/// 08:30–18:30, 10-second timestep, one-minute control interval.
///
/// Build with [`SimConfig::builder`]:
///
/// ```
/// # fn main() -> Result<(), baat_sim::SimError> {
/// use baat_sim::SimConfig;
/// use baat_solar::Weather;
///
/// let config = SimConfig::builder()
///     .weather_plan(vec![Weather::Cloudy])
///     .seed(7)
///     .build()?;
/// assert_eq!(config.nodes, 6);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct SimConfig {
    /// Number of server/battery nodes.
    pub nodes: usize,
    /// Simulation timestep.
    pub dt: SimDuration,
    /// How often the policy's `control` hook runs.
    pub control_interval: SimDuration,
    /// Server power-on time.
    pub day_start: TimeOfDay,
    /// Server shutdown time.
    pub day_end: TimeOfDay,
    /// Weather for each simulated day (cycled if the run is longer).
    pub weather_plan: Vec<Weather>,
    /// Solar array size expressed as sunny-day energy yield.
    pub solar_sunny_budget: WattHours,
    /// Battery unit specification (per server; shared pools aggregate
    /// it).
    pub battery_spec: BatterySpec,
    /// Battery attachment architecture.
    pub topology: BatteryTopology,
    /// Unit-to-unit manufacturing variation.
    pub variation: VariationParams,
    /// Server power model.
    pub server_power: ServerPowerModel,
    /// Server schedulable capacity.
    pub server_capacity: ServerCapacity,
    /// VM migration cost model.
    pub migration: MigrationSpec,
    /// Web Serving service instances started at power-on.
    pub services: usize,
    /// Batch-job arrivals per day.
    pub batch_jobs_per_day: usize,
    /// Ambient temperature.
    pub ambient: Celsius,
    /// Measurement noise of the battery sensor front-ends.
    pub sensor_noise: NoiseSpec,
    /// Record one trace sample every this many steps.
    pub sample_every: usize,
    /// Upper bound on stored trace rows (`None` = unbounded). When the
    /// cap is reached the recorder halves its resolution in place, so
    /// long sweeps keep bounded memory without losing the run's span.
    pub max_trace_rows: Option<usize>,
    /// Scheduled fault injections (empty by default: a clean run).
    pub faults: FaultPlan,
    /// Master RNG seed (weather, workloads, sensors, manufacturing).
    pub seed: u64,
    /// Worker threads for sharded stepping (default 1 = sequential).
    /// Results are bit-identical at any value; excluded from config
    /// identity and snapshot hashing (see [`EngineThreads`]).
    pub threads: EngineThreads,
}

/// Manual `Debug` mirroring the derive output field-for-field — except
/// `threads`, which is omitted entirely. `crate::config_hash` hashes the
/// `Debug` rendering, and the worker-thread count must not change config
/// identity (results are bit-identical at any count), nor may adding the
/// knob invalidate previously written checkpoints. The golden snapshot
/// test pins this rendering byte-for-byte.
impl core::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SimConfig")
            .field("nodes", &self.nodes)
            .field("dt", &self.dt)
            .field("control_interval", &self.control_interval)
            .field("day_start", &self.day_start)
            .field("day_end", &self.day_end)
            .field("weather_plan", &self.weather_plan)
            .field("solar_sunny_budget", &self.solar_sunny_budget)
            .field("battery_spec", &self.battery_spec)
            .field("topology", &self.topology)
            .field("variation", &self.variation)
            .field("server_power", &self.server_power)
            .field("server_capacity", &self.server_capacity)
            .field("migration", &self.migration)
            .field("services", &self.services)
            .field("batch_jobs_per_day", &self.batch_jobs_per_day)
            .field("ambient", &self.ambient)
            .field("sensor_noise", &self.sensor_noise)
            .field("sample_every", &self.sample_every)
            .field("max_trace_rows", &self.max_trace_rows)
            .field("faults", &self.faults)
            .field("seed", &self.seed)
            .finish()
    }
}

impl SimConfig {
    /// Starts building a configuration from the prototype defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// The paper's prototype configuration for one day of the given
    /// weather.
    pub fn prototype_day(weather: Weather, seed: u64) -> Self {
        let mut b = Self::builder();
        b.weather_plan(vec![weather]).seed(seed);
        b.build().expect("prototype defaults are valid")
    }

    /// Number of simulated days in the weather plan.
    pub fn days(&self) -> usize {
        self.weather_plan.len()
    }
}

/// The default per-node battery: the prototype deploys twelve 12 V
/// 35 Ah units across six servers, i.e. two per node — modeled as one
/// 70 Ah bank with halved internal resistance and doubled current
/// limits.
pub fn prototype_node_battery() -> BatterySpec {
    let mut b = BatterySpec::builder();
    b.capacity(AmpHours::new(70.0))
        .internal_resistance(Ohms::new(0.006))
        .max_charge_current(Amperes::new(17.5))
        .max_discharge_current(Amperes::new(70.0));
    b.build().expect("static values are valid")
}

/// The Li-ion drop-in for [`prototype_node_battery`]: the same 70 Ah
/// per-node bank built from LFP cells — higher nominal voltage, lower
/// resistance, C/2 charging, 2C discharge and a ~2000 full-cycle life.
/// Thermal parameters stay at the builder defaults so shared-pool
/// aggregation treats both chemistries identically.
pub fn li_ion_node_battery() -> BatterySpec {
    let mut b = BatterySpec::builder();
    b.chemistry(Chemistry::LiIon)
        .nominal_voltage(Volts::new(12.8))
        .capacity(AmpHours::new(70.0))
        .internal_resistance(Ohms::new(0.004))
        .cutoff_voltage(Volts::new(10.0))
        .max_charge_current(Amperes::new(35.0)) // C/2
        .max_discharge_current(Amperes::new(140.0)) // 2C
        .lifetime_throughput(AmpHours::new(70.0 * 2_000.0))
        .coulombic_efficiency(Fraction::saturating(0.99))
        .self_discharge_per_day(Fraction::saturating(0.000_3));
    b.build().expect("static values are valid")
}

/// Declarative chemistry selection: maps a [`Chemistry`] onto the
/// matching prototype node-battery spec, so configs (and the console's
/// `--chemistry` flag) can pick a chemistry without spelling out a full
/// [`BatterySpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ChemistrySpec {
    chemistry: Chemistry,
}

impl ChemistrySpec {
    /// The paper's sealed lead-acid hardware (the default).
    pub fn lead_acid() -> Self {
        Self {
            chemistry: Chemistry::LeadAcid,
        }
    }

    /// The LFP-flavoured Li-ion alternative.
    pub fn li_ion() -> Self {
        Self {
            chemistry: Chemistry::LiIon,
        }
    }

    /// Wraps an already-parsed [`Chemistry`].
    pub fn new(chemistry: Chemistry) -> Self {
        Self { chemistry }
    }

    /// The selected chemistry.
    pub fn chemistry(self) -> Chemistry {
        self.chemistry
    }

    /// The per-node battery spec this chemistry maps to.
    pub fn node_battery(self) -> BatterySpec {
        match self.chemistry {
            Chemistry::LeadAcid => prototype_node_battery(),
            Chemistry::LiIon => li_ion_node_battery(),
        }
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        Self {
            config: SimConfig {
                nodes: 6,
                dt: SimDuration::from_secs(10),
                control_interval: SimDuration::from_secs(60),
                day_start: TimeOfDay::from_hm(8, 30),
                day_end: TimeOfDay::from_hm(18, 30),
                weather_plan: vec![Weather::Sunny],
                solar_sunny_budget: WattHours::from_kwh(8.0),
                battery_spec: prototype_node_battery(),
                topology: BatteryTopology::PerServer,
                variation: VariationParams::default(),
                server_power: ServerPowerModel::prototype(),
                server_capacity: ServerCapacity::default(),
                migration: MigrationSpec::default(),
                services: 6,
                batch_jobs_per_day: 60,
                ambient: Celsius::new(25.0),
                sensor_noise: NoiseSpec::default(),
                sample_every: 6,
                max_trace_rows: None,
                faults: FaultPlan::default(),
                seed: 42,
                threads: EngineThreads::ONE,
            },
        }
    }
}

impl SimConfigBuilder {
    /// Sets the number of server/battery nodes.
    pub fn nodes(&mut self, nodes: usize) -> &mut Self {
        self.config.nodes = nodes;
        self
    }

    /// Sets the simulation timestep.
    pub fn dt(&mut self, dt: SimDuration) -> &mut Self {
        self.config.dt = dt;
        self
    }

    /// Sets the policy control interval.
    pub fn control_interval(&mut self, interval: SimDuration) -> &mut Self {
        self.config.control_interval = interval;
        self
    }

    /// Sets the daily operating window.
    pub fn operating_window(&mut self, start: TimeOfDay, end: TimeOfDay) -> &mut Self {
        self.config.day_start = start;
        self.config.day_end = end;
        self
    }

    /// Sets the per-day weather plan.
    pub fn weather_plan(&mut self, plan: Vec<Weather>) -> &mut Self {
        self.config.weather_plan = plan;
        self
    }

    /// Sets the solar array size (sunny-day yield).
    pub fn solar_sunny_budget(&mut self, budget: WattHours) -> &mut Self {
        self.config.solar_sunny_budget = budget;
        self
    }

    /// Sets the battery unit specification.
    pub fn battery_spec(&mut self, spec: BatterySpec) -> &mut Self {
        self.config.battery_spec = spec;
        self
    }

    /// Selects the battery chemistry declaratively: replaces the battery
    /// spec with the chemistry's prototype node battery
    /// ([`ChemistrySpec::node_battery`]). Call [`Self::battery_spec`]
    /// afterwards instead to fully customize the unit.
    pub fn chemistry(&mut self, chemistry: ChemistrySpec) -> &mut Self {
        self.config.battery_spec = chemistry.node_battery();
        self
    }

    /// Sets the battery attachment architecture (per-server or shared
    /// per-rack pools).
    pub fn topology(&mut self, topology: BatteryTopology) -> &mut Self {
        self.config.topology = topology;
        self
    }

    /// Sets manufacturing variation.
    pub fn variation(&mut self, variation: VariationParams) -> &mut Self {
        self.config.variation = variation;
        self
    }

    /// Sets the server power model.
    pub fn server_power(&mut self, model: ServerPowerModel) -> &mut Self {
        self.config.server_power = model;
        self
    }

    /// Sets server schedulable capacity.
    pub fn server_capacity(&mut self, capacity: ServerCapacity) -> &mut Self {
        self.config.server_capacity = capacity;
        self
    }

    /// Sets the workload mix (service instances, batch arrivals/day).
    pub fn workload_mix(&mut self, services: usize, batch_jobs_per_day: usize) -> &mut Self {
        self.config.services = services;
        self.config.batch_jobs_per_day = batch_jobs_per_day;
        self
    }

    /// Sets the ambient temperature.
    pub fn ambient(&mut self, t: Celsius) -> &mut Self {
        self.config.ambient = t;
        self
    }

    /// Sets the battery sensor noise (use [`NoiseSpec::IDEAL`] for exact
    /// telemetry).
    pub fn sensor_noise(&mut self, noise: NoiseSpec) -> &mut Self {
        self.config.sensor_noise = noise;
        self
    }

    /// Sets the trace sampling stride.
    pub fn sample_every(&mut self, steps: usize) -> &mut Self {
        self.config.sample_every = steps;
        self
    }

    /// Caps the stored trace rows (downsampling in place when hit).
    pub fn max_trace_rows(&mut self, rows: usize) -> &mut Self {
        self.config.max_trace_rows = Some(rows);
        self
    }

    /// Scales the scenario to an `n`-host fleet in one call: `n` nodes,
    /// PV sized proportionally to the prototype array (8 kWh per 6
    /// servers), one service VM per host plus nine batch jobs per host
    /// per day, and trace recording throttled (sparse sampling, hard row
    /// cap) so memory stays flat at thousands of hosts.
    ///
    /// Everything else — battery spec, weather, dt, seed — is left to
    /// the other builder methods, so `fleet` composes with them; call it
    /// last if an earlier method also sets one of these fields.
    pub fn fleet(&mut self, n: usize) -> &mut Self {
        self.config.nodes = n;
        self.config.solar_sunny_budget = WattHours::from_kwh(8.0 * n as f64 / 6.0);
        self.config.services = n;
        self.config.batch_jobs_per_day = 9 * n;
        self.config.sample_every = 120;
        self.config.max_trace_rows = Some(512);
        self
    }

    /// Sets the fault-injection plan (validated against the topology in
    /// [`SimConfigBuilder::build`]).
    pub fn faults(&mut self, plan: FaultPlan) -> &mut Self {
        self.config.faults = plan;
        self
    }

    /// Sets the master RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.config.seed = seed;
        self
    }

    /// Sets the engine worker-thread count (clamped to ≥ 1). Sharded
    /// stepping is bit-identical at any value — this only trades
    /// wall-clock for cores, and never changes run identity (snapshots
    /// round-trip across thread counts).
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.config.threads = EngineThreads::new(threads);
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if there are no nodes, no
    /// weather days, a zero timestep, a control interval smaller than the
    /// timestep, a zero sampling stride, or an inverted operating window.
    pub fn build(&self) -> Result<SimConfig, SimError> {
        let c = &self.config;
        if c.nodes == 0 {
            return Err(SimError::InvalidConfig {
                field: "nodes",
                reason: "need at least one server/battery node".to_owned(),
            });
        }
        if c.weather_plan.is_empty() {
            return Err(SimError::InvalidConfig {
                field: "weather_plan",
                reason: "need at least one day of weather".to_owned(),
            });
        }
        if c.dt.is_zero() || c.dt.as_secs() > 3600 {
            return Err(SimError::InvalidConfig {
                field: "dt",
                reason: format!("timestep must be in (0, 1 h], got {}", c.dt),
            });
        }
        if c.control_interval < c.dt {
            return Err(SimError::InvalidConfig {
                field: "control_interval",
                reason: "control interval must be at least one timestep".to_owned(),
            });
        }
        if c.sample_every == 0 {
            return Err(SimError::InvalidConfig {
                field: "sample_every",
                reason: "sampling stride must be positive".to_owned(),
            });
        }
        if c.max_trace_rows.is_some_and(|rows| rows < 2) {
            return Err(SimError::InvalidConfig {
                field: "max_trace_rows",
                reason: "trace-row cap must keep at least two rows".to_owned(),
            });
        }
        if let BatteryTopology::SharedPool { pools } = c.topology {
            if pools == 0 || !c.nodes.is_multiple_of(pools) {
                return Err(SimError::InvalidConfig {
                    field: "topology",
                    reason: format!("{pools} pools must be nonzero and divide {} nodes", c.nodes),
                });
            }
        }
        if c.day_end <= c.day_start {
            return Err(SimError::InvalidConfig {
                field: "day_end",
                reason: format!("{} must be after {}", c.day_end, c.day_start),
            });
        }
        c.faults
            .validate(c.nodes, c.topology.banks(c.nodes))
            .map_err(|e| SimError::invalid_config("faults", e))?;
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_prototype() {
        let c = SimConfig::builder().build().unwrap();
        assert_eq!(c.nodes, 6);
        assert_eq!(c.day_start, TimeOfDay::from_hm(8, 30));
        assert_eq!(c.day_end, TimeOfDay::from_hm(18, 30));
        assert_eq!(c.solar_sunny_budget, WattHours::from_kwh(8.0));
    }

    #[test]
    fn rejects_zero_nodes_and_empty_plan() {
        assert!(SimConfig::builder().nodes(0).build().is_err());
        assert!(SimConfig::builder().weather_plan(vec![]).build().is_err());
    }

    #[test]
    fn rejects_bad_timing() {
        assert!(SimConfig::builder().dt(SimDuration::ZERO).build().is_err());
        assert!(SimConfig::builder()
            .dt(SimDuration::from_secs(120))
            .control_interval(SimDuration::from_secs(60))
            .build()
            .is_err());
        assert!(SimConfig::builder()
            .operating_window(TimeOfDay::from_hm(18, 0), TimeOfDay::from_hm(8, 0))
            .build()
            .is_err());
        assert!(SimConfig::builder().sample_every(0).build().is_err());
        assert!(SimConfig::builder().max_trace_rows(1).build().is_err());
        assert!(SimConfig::builder().max_trace_rows(2).build().is_ok());
    }

    #[test]
    fn rejects_fault_plan_outside_topology() {
        use baat_faults::{FaultKind, FaultSpec};
        use baat_units::SimInstant;
        let mut plan = FaultPlan::new();
        plan.push(FaultSpec {
            kind: FaultKind::SensorDropout { bank: 6 },
            start: SimInstant::START,
            duration: SimDuration::from_minutes(5),
        });
        // Six per-server banks: bank 6 is out of range.
        let err = SimConfig::builder()
            .faults(plan.clone())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("faults"));
        // But two shared pools make it out of range too; bank 1 is fine.
        let mut ok = FaultPlan::new();
        ok.push(FaultSpec {
            kind: FaultKind::SensorDropout { bank: 1 },
            start: SimInstant::START,
            duration: SimDuration::from_minutes(5),
        });
        assert!(SimConfig::builder().faults(ok).build().is_ok());
    }

    #[test]
    fn thread_count_is_invisible_to_config_identity() {
        let mut b1 = SimConfig::builder();
        b1.threads(1);
        let mut b8 = SimConfig::builder();
        b8.threads(8);
        let c1 = b1.build().unwrap();
        let c8 = b8.build().unwrap();
        // Equality and the Debug rendering (the snapshot hash input)
        // ignore the knob, but the knob itself is preserved.
        assert_eq!(c1, c8);
        assert_eq!(format!("{c1:?}"), format!("{c8:?}"));
        assert_eq!(c1.threads.get(), 1);
        assert_eq!(c8.threads.get(), 8);
        assert_eq!(EngineThreads::new(0).get(), 1);
    }

    #[test]
    fn prototype_day_is_one_day() {
        let c = SimConfig::prototype_day(Weather::Rainy, 1);
        assert_eq!(c.days(), 1);
        assert_eq!(c.weather_plan[0], Weather::Rainy);
    }
}
