//! End-of-run simulation reports.

use baat_battery::AgingBreakdown;
use baat_metrics::AgingMetrics;
use baat_units::{SimDuration, WattHours};

use crate::events::EventLog;
use crate::recorder::Recorder;

/// Per-node outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Node index.
    pub node: usize,
    /// Final accumulated aging damage (1.0 = end-of-life).
    pub damage: f64,
    /// Per-mechanism damage breakdown.
    pub damage_breakdown: AgingBreakdown,
    /// Final effective capacity as a fraction of nominal.
    pub capacity_fraction: f64,
    /// Aging metrics over the whole run.
    pub lifetime_metrics: AgingMetrics,
    /// Time-weighted SoC histogram over the 7 Fig-19 bins.
    pub soc_histogram: [SimDuration; 7],
    /// Time spent below 40 % SoC (Fig 18's low-SoC duration).
    pub deep_discharge_time: SimDuration,
    /// Total observed time.
    pub observed: SimDuration,
    /// Battery cutoff events.
    pub cutoff_events: u64,
    /// Server downtime during operating hours.
    pub downtime: SimDuration,
    /// Full recharges reached.
    pub full_charge_events: u64,
    /// Round-trip energy efficiency over the run, if chargeable.
    pub round_trip_efficiency: Option<f64>,
    /// Useful work done by this node's server (core-hours).
    pub work_done: f64,
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Name of the policy that ran.
    pub policy: &'static str,
    /// Days simulated.
    pub days: usize,
    /// Per-node outcomes.
    pub nodes: Vec<NodeReport>,
    /// Total useful work (core-hours) — the Fig 20 throughput metric.
    pub total_work: f64,
    /// Batch jobs completed.
    pub completed_jobs: u64,
    /// VM migrations started.
    pub migrations: u64,
    /// Demand energy that could not be served.
    pub unserved_energy: WattHours,
    /// Solar energy curtailed (battery full, load met).
    pub curtailed_energy: WattHours,
    /// Utility energy drawn for overnight battery recharge.
    pub grid_charge_energy: WattHours,
    /// Downsampled time series.
    pub recorder: Recorder,
    /// Discrete event log.
    pub events: EventLog,
}

impl SimReport {
    /// The paper's "worst battery node": highest accumulated damage, or
    /// `None` for a nodeless report.
    pub fn worst_node(&self) -> Option<&NodeReport> {
        self.nodes
            .iter()
            .max_by(|a, b| a.damage.total_cmp(&b.damage))
    }

    /// Mean damage across nodes.
    pub fn mean_damage(&self) -> f64 {
        self.nodes.iter().map(|n| n.damage).sum::<f64>() / self.nodes.len() as f64
    }

    /// Worst-node low-SoC duration (the Fig 18 availability proxy).
    pub fn worst_low_soc_duration(&self) -> SimDuration {
        self.nodes
            .iter()
            .map(|n| n.deep_discharge_time)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Aggregate SoC histogram across all nodes (Fig 19).
    pub fn aggregate_soc_histogram(&self) -> [SimDuration; 7] {
        let mut agg = [SimDuration::ZERO; 7];
        for n in &self.nodes {
            for (a, b) in agg.iter_mut().zip(n.soc_histogram.iter()) {
                *a += *b;
            }
        }
        agg
    }

    /// Total Ah discharged across all nodes over the run.
    pub fn total_ah_discharged(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.lifetime_metrics.nat)
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_battery::UsageAccumulator;
    use baat_metrics::BatteryRatings;
    use baat_units::AmpHours;

    fn node(i: usize, damage: f64, deep_secs: u64) -> NodeReport {
        NodeReport {
            node: i,
            damage,
            damage_breakdown: AgingBreakdown::default(),
            capacity_fraction: 1.0 - 0.2 * damage,
            lifetime_metrics: AgingMetrics::from_accumulator(
                &UsageAccumulator::default(),
                &BatteryRatings {
                    capacity: AmpHours::new(35.0),
                    lifetime_throughput: AmpHours::new(17_500.0),
                },
            ),
            soc_histogram: [SimDuration::from_secs(10); 7],
            deep_discharge_time: SimDuration::from_secs(deep_secs),
            observed: SimDuration::from_hours(10),
            cutoff_events: 0,
            downtime: SimDuration::ZERO,
            full_charge_events: 1,
            round_trip_efficiency: Some(0.8),
            work_done: 5.0,
        }
    }

    fn report() -> SimReport {
        SimReport {
            policy: "test",
            days: 1,
            nodes: vec![node(0, 0.1, 100), node(1, 0.5, 900), node(2, 0.3, 300)],
            total_work: 15.0,
            completed_jobs: 4,
            migrations: 2,
            unserved_energy: WattHours::ZERO,
            curtailed_energy: WattHours::ZERO,
            grid_charge_energy: WattHours::ZERO,
            recorder: Recorder::new(),
            events: EventLog::new(),
        }
    }

    #[test]
    fn worst_node_is_highest_damage() {
        assert_eq!(report().worst_node().expect("has nodes").node, 1);
    }

    #[test]
    fn mean_damage_is_average() {
        assert!((report().mean_damage() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn worst_low_soc_duration_is_max() {
        assert_eq!(
            report().worst_low_soc_duration(),
            SimDuration::from_secs(900)
        );
    }

    #[test]
    fn aggregate_histogram_sums_nodes() {
        let agg = report().aggregate_soc_histogram();
        assert!(agg.iter().all(|d| *d == SimDuration::from_secs(30)));
    }
}
