//! Time-series trace recording.
//!
//! The prototype's display module visualizes "data captured by sensors,
//! system log trace, and various aging metrics … in real time" (§V.A).
//! The recorder is the simulation's equivalent: downsampled per-node
//! series plus global series, consumed by the figure harness.

use baat_units::{SimInstant, Watts};

/// One recorded sample row.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Sample time.
    pub at: SimInstant,
    /// Total solar power.
    pub solar: Watts,
    /// Per-node battery SoC (0–1).
    pub soc: Vec<f64>,
    /// Per-node server power.
    pub server_power: Vec<Watts>,
    /// Per-node battery current (positive = discharge), amperes.
    pub battery_current: Vec<f64>,
    /// Cumulative useful work (core-hours).
    pub work_cumulative: f64,
}

/// Downsampled time-series store.
///
/// The engine pre-sizes the row buffer from `Simulation::total_steps`
/// so long sweeps never re-grow (and re-copy) the `Vec` row by row. An
/// optional `max_rows` cap bounds memory on very long runs: when the
/// cap is reached the recorder halves its resolution in place (keeps
/// every other row and doubles the accepted-push stride), so the stored
/// series always spans the whole run at the finest resolution that
/// fits.
#[derive(Debug, Clone, PartialEq)]
pub struct Recorder {
    rows: Vec<TraceRow>,
    max_rows: Option<usize>,
    /// Only every `keep_every`-th push is stored (doubles on each
    /// downsampling pass).
    keep_every: u64,
    /// Total pushes offered so far (stored or not).
    pushes: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::with_limits(0, None)
    }

    /// Creates an empty recorder pre-sized for `rows_hint` rows.
    pub fn with_capacity(rows_hint: usize) -> Self {
        Self::with_limits(rows_hint, None)
    }

    /// Creates an empty recorder pre-sized for `rows_hint` rows and
    /// bounded to at most `max_rows` stored rows (downsampling in place
    /// when the cap is hit). `None` keeps every offered row.
    pub fn with_limits(rows_hint: usize, max_rows: Option<usize>) -> Self {
        let capacity = match max_rows {
            Some(max) => rows_hint.min(max),
            None => rows_hint,
        };
        Self {
            rows: Vec::with_capacity(capacity),
            max_rows,
            keep_every: 1,
            pushes: 0,
        }
    }

    /// The configured row cap, if any.
    pub fn max_rows(&self) -> Option<usize> {
        self.max_rows
    }

    /// Current accepted-push stride (1 until the cap is first hit).
    pub fn stride(&self) -> u64 {
        self.keep_every
    }

    /// Total rows offered so far, stored or not (checkpoint view).
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Rebuilds a recorder at a saved position: the retained rows, the
    /// configured cap, and the stride/push counters, exactly as captured
    /// from [`Recorder::rows`], [`Recorder::max_rows`],
    /// [`Recorder::stride`] and [`Recorder::pushes`]. Future pushes
    /// continue the same downsampling schedule bit-identically.
    pub fn from_parts(
        rows: Vec<TraceRow>,
        max_rows: Option<usize>,
        keep_every: u64,
        pushes: u64,
    ) -> Self {
        Self {
            rows,
            max_rows,
            keep_every: keep_every.max(1),
            pushes,
        }
    }

    /// Counts the next offered row and decides whether it is stored,
    /// running the cap-halving pass if due — the shared admission
    /// sequence behind [`Recorder::push`] and [`Recorder::push_with`].
    fn admit_next(&mut self) -> bool {
        let index = self.pushes;
        self.pushes += 1;
        if !index.is_multiple_of(self.keep_every) {
            return false;
        }
        if let Some(max) = self.max_rows {
            if self.rows.len() >= max.max(2) {
                // Stored rows are exactly the pushes ≡ 0 (mod stride);
                // keeping the even positions leaves the pushes ≡ 0
                // (mod 2·stride) — the same series at half resolution.
                let mut i = 0usize;
                self.rows.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
                self.keep_every *= 2;
                if !index.is_multiple_of(self.keep_every) {
                    return false;
                }
            }
        }
        true
    }

    /// Offers a sample row. Without a cap every row is stored; with one,
    /// rows beyond the cap trigger an in-place halving of the stored
    /// series and a doubling of the stride.
    pub fn push(&mut self, row: TraceRow) {
        if self.admit_next() {
            self.rows.push(row);
        }
    }

    /// Offers a sample row built on demand: the stride/cap admission
    /// decision runs *first*, so rows the stride would drop cost nothing
    /// to produce. On capped long runs most offered rows are dropped
    /// (the stride doubles each time the cap is hit), which makes the
    /// builder skip the dominant cost of the recorder stage on large
    /// fleets. The stored series is identical to feeding every prebuilt
    /// row through [`Recorder::push`].
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; the offer is still counted (the
    /// admission decision already ran).
    pub fn push_with<E>(&mut self, build: impl FnOnce() -> Result<TraceRow, E>) -> Result<(), E> {
        if self.admit_next() {
            self.rows.push(build()?);
        }
        Ok(())
    }

    /// All rows in time order.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Number of rows recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The SoC series of one node.
    pub fn soc_series(&self, node: usize) -> impl Iterator<Item = (SimInstant, f64)> + '_ {
        self.rows.iter().map(move |r| (r.at, r.soc[node]))
    }

    /// The solar series.
    pub fn solar_series(&self) -> impl Iterator<Item = (SimInstant, Watts)> + '_ {
        self.rows.iter().map(|r| (r.at, r.solar))
    }

    /// Final cumulative work, or zero if nothing was recorded.
    pub fn final_work(&self) -> f64 {
        self.rows.last().map_or(0.0, |r| r.work_cumulative)
    }

    /// Serializes one row as a single JSON object line (no trailing
    /// newline) — the same encoding [`Recorder::to_jsonl`] uses, shared
    /// with the flight recorder's telemetry ring.
    pub fn row_json(r: &TraceRow) -> String {
        use baat_obs::json::{f64_into, JsonLine};
        let mut line = JsonLine::new();
        line.u64_field("at_s", r.at.as_secs())
            .f64_field("solar_w", r.solar.as_f64());
        let mut soc = String::from("[");
        for (i, v) in r.soc.iter().enumerate() {
            if i > 0 {
                soc.push(',');
            }
            f64_into(&mut soc, *v);
        }
        soc.push(']');
        let mut power = String::from("[");
        for (i, p) in r.server_power.iter().enumerate() {
            if i > 0 {
                power.push(',');
            }
            f64_into(&mut power, p.as_f64());
        }
        power.push(']');
        let mut current = String::from("[");
        for (i, a) in r.battery_current.iter().enumerate() {
            if i > 0 {
                current.push(',');
            }
            f64_into(&mut current, *a);
        }
        current.push(']');
        line.raw_field("soc", &soc)
            .raw_field("server_w", &power)
            .raw_field("battery_a", &current)
            .f64_field("work_cumulative", r.work_cumulative);
        line.finish()
    }

    /// Renders the trace as JSONL (one object per sample row; per-node
    /// series as JSON arrays), for structured consumers.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&Self::row_json(r));
            out.push('\n');
        }
        out
    }

    /// Renders the trace as CSV (one row per sample; per-node SoC, server
    /// power and battery current columns), for plotting outside Rust.
    pub fn to_csv(&self) -> String {
        let nodes = self.rows.first().map_or(0, |r| r.soc.len());
        let mut out = String::from("time_s,solar_w");
        for i in 0..nodes {
            out.push_str(&format!(",soc_{i},server_w_{i},battery_a_{i}"));
        }
        out.push_str(",work_cumulative\n");
        for r in &self.rows {
            out.push_str(&format!("{},{:.1}", r.at.as_secs(), r.solar.as_f64()));
            for i in 0..nodes {
                out.push_str(&format!(
                    ",{:.4},{:.1},{:.2}",
                    r.soc[i],
                    r.server_power[i].as_f64(),
                    r.battery_current[i]
                ));
            }
            out.push_str(&format!(",{:.3}\n", r.work_cumulative));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(at: u64, soc: f64, work: f64) -> TraceRow {
        TraceRow {
            at: SimInstant::from_secs(at),
            solar: Watts::new(100.0),
            soc: vec![soc, soc / 2.0],
            server_power: vec![Watts::new(80.0), Watts::new(90.0)],
            battery_current: vec![1.0, -2.0],
            work_cumulative: work,
        }
    }

    #[test]
    fn series_extraction() {
        let mut r = Recorder::new();
        r.push(row(0, 1.0, 0.0));
        r.push(row(60, 0.8, 5.0));
        let soc: Vec<f64> = r.soc_series(1).map(|(_, v)| v).collect();
        assert_eq!(soc, vec![0.5, 0.4]);
        assert_eq!(r.final_work(), 5.0);
        assert_eq!(r.solar_series().count(), 2);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut r = Recorder::new();
        r.push(row(0, 1.0, 0.0));
        r.push(row(60, 0.8, 5.0));
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time_s,solar_w,soc_0"));
        assert!(lines[2].starts_with("60,"));
    }

    #[test]
    fn empty_recorder() {
        let r = Recorder::new();
        assert!(r.is_empty());
        assert_eq!(r.final_work(), 0.0);
    }

    #[test]
    fn capacity_hint_presizes_without_changing_behavior() {
        let mut hinted = Recorder::with_capacity(64);
        let mut plain = Recorder::new();
        for i in 0..10 {
            hinted.push(row(i * 60, 1.0, i as f64));
            plain.push(row(i * 60, 1.0, i as f64));
        }
        assert_eq!(hinted, plain);
        assert_eq!(hinted.len(), 10);
    }

    #[test]
    fn max_rows_cap_halves_resolution_in_place() {
        let mut r = Recorder::with_limits(4, Some(4));
        for i in 0..16u64 {
            r.push(row(i * 60, 1.0, i as f64));
        }
        // Cap 4 over 16 pushes settles at stride 4: pushes 0,4,8,12.
        assert_eq!(r.stride(), 4);
        let times: Vec<u64> = r.rows().iter().map(|x| x.at.as_secs()).collect();
        assert_eq!(times, vec![0, 240, 480, 720]);
        assert!(r.len() <= 4);
        // The full span survives.
        assert_eq!(r.final_work(), 12.0);
    }

    #[test]
    fn capped_series_is_a_subset_of_the_uncapped_series() {
        let mut capped = Recorder::with_limits(8, Some(8));
        let mut full = Recorder::new();
        for i in 0..100u64 {
            let x = row(i * 30, 1.0 - i as f64 / 100.0, i as f64);
            capped.push(x.clone());
            full.push(x);
        }
        assert!(capped.len() <= 8);
        for kept in capped.rows() {
            assert!(full.rows().contains(kept));
        }
    }

    #[test]
    fn push_with_skips_building_dropped_rows() {
        let mut lazy = Recorder::with_limits(4, Some(4));
        let mut eager = Recorder::with_limits(4, Some(4));
        let mut built = 0usize;
        for i in 0..64u64 {
            let r = row(i * 60, 1.0, i as f64);
            eager.push(r.clone());
            lazy.push_with::<()>(|| {
                built += 1;
                Ok(r)
            })
            .unwrap();
        }
        assert_eq!(lazy, eager, "lazy and eager series must be identical");
        // Only the admitted rows (stored now, possibly displaced by a
        // later halving) were ever built — far fewer than the 64 offers.
        assert!(built < 16, "64 offers must build fewer than 16 rows");
    }

    #[test]
    fn no_cap_keeps_every_row() {
        let mut r = Recorder::with_capacity(2);
        for i in 0..50u64 {
            r.push(row(i, 1.0, 0.0));
        }
        assert_eq!(r.len(), 50);
        assert_eq!(r.stride(), 1);
    }
}
