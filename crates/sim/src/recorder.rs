//! Time-series trace recording.
//!
//! The prototype's display module visualizes "data captured by sensors,
//! system log trace, and various aging metrics … in real time" (§V.A).
//! The recorder is the simulation's equivalent: downsampled per-node
//! series plus global series, consumed by the figure harness.

use baat_units::{SimInstant, Watts};

/// One recorded sample row.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Sample time.
    pub at: SimInstant,
    /// Total solar power.
    pub solar: Watts,
    /// Per-node battery SoC (0–1).
    pub soc: Vec<f64>,
    /// Per-node server power.
    pub server_power: Vec<Watts>,
    /// Per-node battery current (positive = discharge), amperes.
    pub battery_current: Vec<f64>,
    /// Cumulative useful work (core-hours).
    pub work_cumulative: f64,
}

/// Downsampled time-series store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorder {
    rows: Vec<TraceRow>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample row.
    pub fn push(&mut self, row: TraceRow) {
        self.rows.push(row);
    }

    /// All rows in time order.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Number of rows recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The SoC series of one node.
    pub fn soc_series(&self, node: usize) -> impl Iterator<Item = (SimInstant, f64)> + '_ {
        self.rows.iter().map(move |r| (r.at, r.soc[node]))
    }

    /// The solar series.
    pub fn solar_series(&self) -> impl Iterator<Item = (SimInstant, Watts)> + '_ {
        self.rows.iter().map(|r| (r.at, r.solar))
    }

    /// Final cumulative work, or zero if nothing was recorded.
    pub fn final_work(&self) -> f64 {
        self.rows.last().map_or(0.0, |r| r.work_cumulative)
    }

    /// Renders the trace as JSONL (one object per sample row; per-node
    /// series as JSON arrays), for structured consumers.
    pub fn to_jsonl(&self) -> String {
        use baat_obs::json::{f64_into, JsonLine};
        let mut out = String::new();
        for r in &self.rows {
            let mut line = JsonLine::new();
            line.u64_field("at_s", r.at.as_secs())
                .f64_field("solar_w", r.solar.as_f64());
            let mut soc = String::from("[");
            for (i, v) in r.soc.iter().enumerate() {
                if i > 0 {
                    soc.push(',');
                }
                f64_into(&mut soc, *v);
            }
            soc.push(']');
            let mut power = String::from("[");
            for (i, p) in r.server_power.iter().enumerate() {
                if i > 0 {
                    power.push(',');
                }
                f64_into(&mut power, p.as_f64());
            }
            power.push(']');
            let mut current = String::from("[");
            for (i, a) in r.battery_current.iter().enumerate() {
                if i > 0 {
                    current.push(',');
                }
                f64_into(&mut current, *a);
            }
            current.push(']');
            line.raw_field("soc", &soc)
                .raw_field("server_w", &power)
                .raw_field("battery_a", &current)
                .f64_field("work_cumulative", r.work_cumulative);
            out.push_str(&line.finish());
            out.push('\n');
        }
        out
    }

    /// Renders the trace as CSV (one row per sample; per-node SoC, server
    /// power and battery current columns), for plotting outside Rust.
    pub fn to_csv(&self) -> String {
        let nodes = self.rows.first().map_or(0, |r| r.soc.len());
        let mut out = String::from("time_s,solar_w");
        for i in 0..nodes {
            out.push_str(&format!(",soc_{i},server_w_{i},battery_a_{i}"));
        }
        out.push_str(",work_cumulative\n");
        for r in &self.rows {
            out.push_str(&format!("{},{:.1}", r.at.as_secs(), r.solar.as_f64()));
            for i in 0..nodes {
                out.push_str(&format!(
                    ",{:.4},{:.1},{:.2}",
                    r.soc[i],
                    r.server_power[i].as_f64(),
                    r.battery_current[i]
                ));
            }
            out.push_str(&format!(",{:.3}\n", r.work_cumulative));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(at: u64, soc: f64, work: f64) -> TraceRow {
        TraceRow {
            at: SimInstant::from_secs(at),
            solar: Watts::new(100.0),
            soc: vec![soc, soc / 2.0],
            server_power: vec![Watts::new(80.0), Watts::new(90.0)],
            battery_current: vec![1.0, -2.0],
            work_cumulative: work,
        }
    }

    #[test]
    fn series_extraction() {
        let mut r = Recorder::new();
        r.push(row(0, 1.0, 0.0));
        r.push(row(60, 0.8, 5.0));
        let soc: Vec<f64> = r.soc_series(1).map(|(_, v)| v).collect();
        assert_eq!(soc, vec![0.5, 0.4]);
        assert_eq!(r.final_work(), 5.0);
        assert_eq!(r.solar_series().count(), 2);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut r = Recorder::new();
        r.push(row(0, 1.0, 0.0));
        r.push(row(60, 0.8, 5.0));
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time_s,solar_w,soc_0"));
        assert!(lines[2].starts_with("60,"));
    }

    #[test]
    fn empty_recorder() {
        let r = Recorder::new();
        assert!(r.is_empty());
        assert_eq!(r.final_work(), 0.0);
    }
}
