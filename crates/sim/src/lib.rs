//! Discrete-time green-datacenter simulation engine for the BAAT
//! reproduction.
//!
//! The engine substitutes for the paper's physical prototype (Fig 11): a
//! PV array, six servers with per-server batteries, chargers, sensors,
//! power switchers, a workload stream, and a pluggable battery-management
//! [`Policy`] invoked every control interval — exactly the control
//! surface the BAAT controller has on real hardware (observe power
//! tables; actuate DVFS, VM migration, discharge limits).
//!
//! * [`SimConfig`] — validated configuration (prototype defaults);
//! * [`Simulation`] / [`run_simulation`] — the engine;
//! * [`Policy`] / [`Action`] — the controller interface the Table-4
//!   schemes implement (in `baat-core`);
//! * [`SystemView`] — the per-interval observation handed to policies;
//! * [`SimReport`] — per-node aging, metrics, SoC histograms, throughput,
//!   availability inputs, traces and events.
//!
//! # Examples
//!
//! ```
//! use baat_sim::{run_simulation, RoundRobinPolicy, SimConfig};
//! use baat_solar::Weather;
//!
//! let config = SimConfig::prototype_day(Weather::Cloudy, 1);
//! let report = run_simulation(config, &mut RoundRobinPolicy::new())?;
//! assert!(report.total_work > 0.0);
//! # Ok::<(), baat_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod error;
mod events;
mod fallback;
mod fleet;
mod policy;
mod recorder;
mod report;
mod snapshot;
mod view;

/// The fault-injection vocabulary, re-exported so consumers can build
/// [`SimConfig`] fault plans without depending on `baat-faults` directly.
pub use baat_faults::{
    FaultError, FaultKind, FaultMix, FaultPlan, FaultSpec, DEFAULT_STALENESS_LIMIT,
};
pub use config::{
    li_ion_node_battery, prototype_node_battery, BatteryTopology, ChemistrySpec, EngineThreads,
    SimConfig, SimConfigBuilder,
};
pub use engine::{availability, run_simulation, run_simulation_observed, Simulation};
pub use error::SimError;
pub use events::{Event, EventLog, TimedEvent};
pub use fallback::{FallbackInput, FallbackScheme, FALLBACK_DVFS, FALLBACK_SOC_FLOOR};
pub use fleet::{DirtyReason, FleetView, PlacementSpec};
pub use policy::{
    Action, ActionOutcome, ActionResult, ControlCtx, Policy, RejectReason, RoundRobinPolicy,
    ScratchPlacement,
};
pub use recorder::{Recorder, TraceRow};
pub use report::{NodeReport, SimReport};
pub use snapshot::{
    config_hash, fnv1a, PolicyState, SimSnapshot, SimState, SnapshotError, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use view::{NodeView, SystemView, VmView};
