//! Versioned checkpoint/restore for a running [`Simulation`].
//!
//! A [`SimSnapshot`] carries everything the engine needs to resume a run
//! bit-identically: the dynamic half of every substrate (battery units,
//! cluster, sensors, workload generator, cloud process, fault injector),
//! every RNG stream position, the event log and trace recorder, and the
//! engine's own step bookkeeping. The static half — specs, variation
//! scales, derived tables — is deliberately absent: it is reproduced
//! exactly by rebuilding the simulation from the same [`SimConfig`], so
//! a snapshot is *config + dynamic state*, never a full object graph.
//!
//! The byte format is self-describing and dependency-free:
//!
//! ```text
//! magic    8 bytes  b"BAATSNAP"
//! version  u32 LE   SNAPSHOT_VERSION
//! chem     u8       index into Chemistry::ALL
//! config   u64 LE   FNV-1a hash of the canonical config rendering
//! len      u64 LE   body length in bytes
//! body     len      field-ordered little-endian state encoding
//! check    u64 LE   FNV-1a hash of the body
//! ```
//!
//! Integers are little-endian; `f64`s travel as raw IEEE-754 bits (so
//! round-tripping is bit-exact, NaN payloads included); enums are
//! single-byte tags. Loading rejects wrong magic, unknown versions,
//! chemistry or config mismatches, truncation and corruption with typed
//! [`SnapshotError`]s — it never panics on malformed input.
//!
//! [`Simulation`]: crate::Simulation

use std::collections::VecDeque;

use baat_battery::{
    AgingBreakdown, BatteryUnitState, Chemistry, SensorSample, TelemetryState, UsageAccumulator,
};
use baat_faults::{FaultKind, InjectorState};
use baat_power::{ChargeStage, ServerPowerRecord};
use baat_server::{ClusterState, DvfsLevel, HostState, InFlightState, ServerId};
use baat_solar::Weather;
use baat_units::{
    AmpHours, Amperes, Celsius, SimDuration, SimInstant, Soc, TimeOfDay, Volts, WattHours, Watts,
};
use baat_workload::{Arrival, VmId, VmSnapshot, VmState, WorkloadKind};

use crate::config::SimConfig;
use crate::events::Event;
use crate::events::TimedEvent;
use crate::policy::{Action, ActionOutcome, ActionResult, Policy, RejectReason};
use crate::recorder::TraceRow;

/// File magic identifying a BAAT snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"BAATSNAP";

/// Current snapshot format version. Bumped on any encoding change;
/// loaders reject other versions rather than misread them.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be encoded, decoded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// The version this build understands.
        expected: u32,
    },
    /// The snapshot's battery chemistry differs from the config's.
    ChemistryMismatch {
        /// Chemistry recorded in the snapshot.
        snapshot: Chemistry,
        /// Chemistry the restoring config uses.
        config: Chemistry,
    },
    /// The snapshot was taken under a different configuration.
    ConfigMismatch {
        /// Config hash recorded in the snapshot.
        snapshot: u64,
        /// Hash of the restoring config.
        config: u64,
    },
    /// The input ended before the named field could be read.
    Truncated {
        /// The field being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A decoded value was structurally invalid (bad enum tag, checksum
    /// failure, impossible length).
    Corrupt {
        /// What was being decoded.
        context: &'static str,
    },
    /// The decoded state does not fit the restoring simulation (e.g. a
    /// per-bank vector of the wrong length) — a config-hash near-miss
    /// that slipped past the header checks.
    StateMismatch {
        /// The mismatched section.
        context: &'static str,
    },
    /// Reading or writing the snapshot file failed.
    Io(String),
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a BAAT snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, expected } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {expected})"
                )
            }
            SnapshotError::ChemistryMismatch { snapshot, config } => write!(
                f,
                "snapshot chemistry {} does not match config chemistry {}",
                snapshot.name(),
                config.name()
            ),
            SnapshotError::ConfigMismatch { snapshot, config } => write!(
                f,
                "snapshot config hash {snapshot:#018x} does not match restoring config \
                 {config:#018x}; resume with the exact configuration the checkpoint was taken \
                 under"
            ),
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::Corrupt { context } => write!(f, "snapshot corrupt: invalid {context}"),
            SnapshotError::StateMismatch { context } => {
                write!(f, "snapshot state does not fit the simulation: {context}")
            }
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A policy's serialized decision state, carried alongside the engine
/// state so a resumed run replays the same future decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyState {
    /// [`Policy::name`] of the policy that produced the state.
    pub name: String,
    /// Opaque policy-private words (see [`Policy::save_state`]).
    pub data: Vec<u64>,
}

/// The dynamic state of a simulation at one step boundary.
///
/// Everything here is overwritten onto a freshly constructed
/// `Simulation` during restore; anything *not* here is either static
/// (rebuilt from config), an exact replay cache (safe to cold-start) or
/// observability-only (rebuilt empty).
#[derive(Debug, Clone, PartialEq)]
pub struct SimState {
    /// Steps completed so far.
    pub step_index: u64,
    /// Simulation clock.
    pub now: SimInstant,
    /// Weather class of the current day.
    pub weather_today: Weather,
    /// The day `start_day` last ran for (None before the first step).
    pub started_day: Option<u64>,
    /// Whether the operating window was open on the last step.
    pub in_window: bool,
    /// Per-bank SoC discharge floors.
    pub soc_floors: Vec<f64>,
    /// Per-bank consecutive-unserved-step streaks.
    pub unserved_streak: Vec<u32>,
    /// Per-node instant the node went offline (None while online).
    pub offline_since: Vec<Option<SimInstant>>,
    /// Per-node accumulated downtime.
    pub downtime: Vec<SimDuration>,
    /// Total energy demanded but not served.
    pub unserved_energy: WattHours,
    /// Total solar energy curtailed.
    pub curtailed_energy: WattHours,
    /// Total grid energy used for charging.
    pub grid_charge_energy: WattHours,
    /// Remaining arrivals of the current day, soonest first.
    pub arrivals_today: Vec<Arrival>,
    /// Jobs awaiting placement, in queue order.
    pub pending: Vec<VmSnapshot>,
    /// Cloud-process RNG stream position.
    pub clouds_rng: [u64; 4],
    /// Cloud-process AR(1) state.
    pub clouds_ar: f64,
    /// Per-bank battery current from the last step (A, +discharge).
    pub last_currents: Vec<f64>,
    /// Per-bank battery terminal voltage from the last step.
    pub last_voltages: Vec<f64>,
    /// Total solar power from the last step.
    pub last_solar: Watts,
    /// Outcomes of the previous control interval's actions.
    pub last_outcomes: Vec<ActionOutcome>,
    /// Per-bank cumulative charger mode switches.
    pub mode_switches: Vec<u64>,
    /// Per-bank last-observed charger stage.
    pub stage_last: Vec<Option<ChargeStage>>,
    /// Per-node degraded (stale-telemetry) flags.
    pub degraded: Vec<bool>,
    /// Actions the fallback scheme saw rejected last interval.
    pub fallback_rejected: Vec<Action>,
    /// Round-robin placement cursor.
    pub rr_cursor: u64,
    /// Workload-generator RNG stream position.
    pub generator_rng: [u64; 4],
    /// Next VM id the generator will assign.
    pub generator_next_id: u64,
    /// Per-bank sensor noise RNG stream positions.
    pub sensor_rngs: Vec<[u64; 4]>,
    /// Fault-injector runtime state (active flags, held samples, RNG).
    pub injector: InjectorState,
    /// The full event log, oldest first.
    pub events: Vec<TimedEvent>,
    /// Recorder accepted-push stride.
    pub recorder_keep_every: u64,
    /// Recorder total pushes offered.
    pub recorder_pushes: u64,
    /// Recorder retained rows, oldest first.
    pub recorder_rows: Vec<TraceRow>,
    /// Cluster runtime state (hosts, VMs, in-flight migrations).
    pub cluster: ClusterState,
    /// Per-node power-table rows: `(battery rows, server rows)`.
    pub power_table: Vec<(Vec<SensorSample>, Vec<ServerPowerRecord>)>,
    /// Per-bank battery unit state (SoC, thermal, aging, telemetry).
    pub batteries: Vec<BatteryUnitState>,
    /// Policy decision state, when captured with a policy in hand.
    pub policy: Option<PolicyState>,
}

/// A versioned, self-describing checkpoint of a running simulation.
///
/// Produced by `Simulation::snapshot`, consumed by
/// `Simulation::restore`. The header triple (version, chemistry, config
/// hash) lets a loader reject a snapshot it cannot faithfully resume
/// *before* touching the body.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`] when produced by this build).
    pub version: u32,
    /// Battery chemistry the run used.
    pub chemistry: Chemistry,
    /// FNV-1a hash of the configuration the run was built from.
    pub config_hash: u64,
    /// The dynamic state.
    pub state: SimState,
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the workspace's dependency-free hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Canonical hash of a [`SimConfig`], used to pin a snapshot to the
/// configuration it was captured under.
///
/// The hash covers every config field (via the canonical `Debug`
/// rendering, which is exhaustive for this plain-data struct), so *any*
/// config drift — different seed, fault plan, battery spec, topology —
/// changes the hash and restore refuses with
/// [`SnapshotError::ConfigMismatch`]. It is a same-build guard, not a
/// portable identity: the `version` header field owns cross-build
/// compatibility.
pub fn config_hash(config: &SimConfig) -> u64 {
    fnv1a(format!("{config:?}").as_bytes())
}

// ---------------------------------------------------------------------
// Byte-level encoder/decoder.

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
    fn rng(&mut self, s: &[u64; 4]) {
        for &w in s {
            self.u64(w);
        }
    }
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecResult<T> = Result<T, SnapshotError>;

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> DecResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated { context })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, context: &'static str) -> DecResult<u8> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> DecResult<u32> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, context: &'static str) -> DecResult<u64> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn usize(&mut self, context: &'static str) -> DecResult<usize> {
        usize::try_from(self.u64(context)?).map_err(|_| SnapshotError::Corrupt { context })
    }

    /// A length prefix for a sequence of elements each at least one byte
    /// wide — bounded by the remaining input, so a corrupt length fails
    /// fast instead of attempting a huge allocation.
    fn len(&mut self, context: &'static str) -> DecResult<usize> {
        let n = self.usize(context)?;
        if n > self.buf.len() - self.pos {
            return Err(SnapshotError::Corrupt { context });
        }
        Ok(n)
    }

    fn f64(&mut self, context: &'static str) -> DecResult<f64> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    fn bool(&mut self, context: &'static str) -> DecResult<bool> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt { context }),
        }
    }

    fn opt_u64(&mut self, context: &'static str) -> DecResult<Option<u64>> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(context)?)),
            _ => Err(SnapshotError::Corrupt { context }),
        }
    }

    fn rng(&mut self, context: &'static str) -> DecResult<[u64; 4]> {
        Ok([
            self.u64(context)?,
            self.u64(context)?,
            self.u64(context)?,
            self.u64(context)?,
        ])
    }
}

// ---------------------------------------------------------------------
// Enum tag tables. Tags are part of the format: append-only, never
// reorder without bumping SNAPSHOT_VERSION.

fn weather_tag(w: Weather) -> u8 {
    Weather::ALL
        .iter()
        .position(|&x| x == w)
        .expect("known weather") as u8
}

fn weather_from(tag: u8) -> DecResult<Weather> {
    Weather::ALL
        .get(tag as usize)
        .copied()
        .ok_or(SnapshotError::Corrupt {
            context: "weather tag",
        })
}

fn chemistry_tag(c: Chemistry) -> u8 {
    Chemistry::ALL
        .iter()
        .position(|&x| x == c)
        .expect("known chemistry") as u8
}

fn chemistry_from(tag: u8) -> DecResult<Chemistry> {
    Chemistry::ALL
        .get(tag as usize)
        .copied()
        .ok_or(SnapshotError::Corrupt {
            context: "chemistry tag",
        })
}

fn kind_tag(k: WorkloadKind) -> u8 {
    WorkloadKind::ALL
        .iter()
        .position(|&x| x == k)
        .expect("known workload") as u8
}

fn kind_from(tag: u8) -> DecResult<WorkloadKind> {
    WorkloadKind::ALL
        .get(tag as usize)
        .copied()
        .ok_or(SnapshotError::Corrupt {
            context: "workload kind tag",
        })
}

fn dvfs_tag(l: DvfsLevel) -> u8 {
    DvfsLevel::ALL
        .iter()
        .position(|&x| x == l)
        .expect("known dvfs level") as u8
}

fn dvfs_from(tag: u8) -> DecResult<DvfsLevel> {
    DvfsLevel::ALL
        .get(tag as usize)
        .copied()
        .ok_or(SnapshotError::Corrupt {
            context: "dvfs tag",
        })
}

fn vm_state_tag(s: VmState) -> u8 {
    match s {
        VmState::Running => 0,
        VmState::Paused => 1,
        VmState::Migrating => 2,
        VmState::Completed => 3,
    }
}

fn vm_state_from(tag: u8) -> DecResult<VmState> {
    Ok(match tag {
        0 => VmState::Running,
        1 => VmState::Paused,
        2 => VmState::Migrating,
        3 => VmState::Completed,
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "vm state tag",
            })
        }
    })
}

fn stage_tag(s: ChargeStage) -> u8 {
    match s {
        ChargeStage::Bulk => 0,
        ChargeStage::Absorption => 1,
        ChargeStage::Float => 2,
    }
}

fn stage_from(tag: u8) -> DecResult<ChargeStage> {
    Ok(match tag {
        0 => ChargeStage::Bulk,
        1 => ChargeStage::Absorption,
        2 => ChargeStage::Float,
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "charge stage tag",
            })
        }
    })
}

fn reject_tag(r: RejectReason) -> u8 {
    match r {
        RejectReason::UnknownNode => 0,
        RejectReason::UnknownVm => 1,
        RejectReason::AlreadyMigrating => 2,
        RejectReason::TargetIsSource => 3,
        RejectReason::TargetFull => 4,
        RejectReason::FaultInjected => 5,
    }
}

fn reject_from(tag: u8) -> DecResult<RejectReason> {
    Ok(match tag {
        0 => RejectReason::UnknownNode,
        1 => RejectReason::UnknownVm,
        2 => RejectReason::AlreadyMigrating,
        3 => RejectReason::TargetIsSource,
        4 => RejectReason::TargetFull,
        5 => RejectReason::FaultInjected,
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "reject reason tag",
            })
        }
    })
}

// ---------------------------------------------------------------------
// Composite encoders/decoders, one pair per carried type.

fn enc_action(e: &mut Enc, a: &Action) {
    match a {
        Action::SetDvfs { node, level } => {
            e.u8(0);
            e.usize(*node);
            e.u8(dvfs_tag(*level));
        }
        Action::Migrate { vm, target } => {
            e.u8(1);
            e.u64(vm.0);
            e.usize(*target);
        }
        Action::SetSocFloor { node, floor } => {
            e.u8(2);
            e.usize(*node);
            e.f64(floor.value());
        }
    }
}

fn dec_action(d: &mut Dec<'_>) -> DecResult<Action> {
    Ok(match d.u8("action tag")? {
        0 => Action::SetDvfs {
            node: d.usize("action node")?,
            level: dvfs_from(d.u8("action level")?)?,
        },
        1 => Action::Migrate {
            vm: VmId(d.u64("action vm")?),
            target: d.usize("action target")?,
        },
        2 => Action::SetSocFloor {
            node: d.usize("action node")?,
            floor: Soc::saturating(d.f64("action floor")?),
        },
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "action tag",
            })
        }
    })
}

fn enc_outcome(e: &mut Enc, o: &ActionOutcome) {
    enc_action(e, &o.action);
    match o.result {
        ActionResult::Applied => e.u8(0),
        ActionResult::Rejected(r) => {
            e.u8(1);
            e.u8(reject_tag(r));
        }
    }
}

fn dec_outcome(d: &mut Dec<'_>) -> DecResult<ActionOutcome> {
    let action = dec_action(d)?;
    let result = match d.u8("outcome tag")? {
        0 => ActionResult::Applied,
        1 => ActionResult::Rejected(reject_from(d.u8("outcome reason")?)?),
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "outcome tag",
            })
        }
    };
    Ok(ActionOutcome { action, result })
}

fn enc_fault(e: &mut Enc, f: &FaultKind) {
    match f {
        FaultKind::SensorDropout { bank } => {
            e.u8(0);
            e.usize(*bank);
        }
        FaultKind::SensorStuckAt { bank } => {
            e.u8(1);
            e.usize(*bank);
        }
        FaultKind::SensorNoise { bank, sigma } => {
            e.u8(2);
            e.usize(*bank);
            e.f64(*sigma);
        }
        FaultKind::SensorDrift {
            bank,
            volts_per_hour,
        } => {
            e.u8(3);
            e.usize(*bank);
            e.f64(*volts_per_hour);
        }
        FaultKind::PvOutage => e.u8(4),
        FaultKind::InverterDerate { fraction } => {
            e.u8(5);
            e.f64(*fraction);
        }
        FaultKind::ChargerFailure { bank } => {
            e.u8(6);
            e.usize(*bank);
        }
        FaultKind::ChargerModeStuck { bank } => {
            e.u8(7);
            e.usize(*bank);
        }
        FaultKind::BatteryOpenCircuit { bank } => {
            e.u8(8);
            e.usize(*bank);
        }
        FaultKind::ThermalSensorLoss { bank } => {
            e.u8(9);
            e.usize(*bank);
        }
        FaultKind::HostFailure { node } => {
            e.u8(10);
            e.usize(*node);
        }
        FaultKind::MigrationsBlocked => e.u8(11),
    }
}

fn dec_fault(d: &mut Dec<'_>) -> DecResult<FaultKind> {
    Ok(match d.u8("fault tag")? {
        0 => FaultKind::SensorDropout {
            bank: d.usize("fault bank")?,
        },
        1 => FaultKind::SensorStuckAt {
            bank: d.usize("fault bank")?,
        },
        2 => FaultKind::SensorNoise {
            bank: d.usize("fault bank")?,
            sigma: d.f64("fault sigma")?,
        },
        3 => FaultKind::SensorDrift {
            bank: d.usize("fault bank")?,
            volts_per_hour: d.f64("fault drift rate")?,
        },
        4 => FaultKind::PvOutage,
        5 => FaultKind::InverterDerate {
            fraction: d.f64("fault fraction")?,
        },
        6 => FaultKind::ChargerFailure {
            bank: d.usize("fault bank")?,
        },
        7 => FaultKind::ChargerModeStuck {
            bank: d.usize("fault bank")?,
        },
        8 => FaultKind::BatteryOpenCircuit {
            bank: d.usize("fault bank")?,
        },
        9 => FaultKind::ThermalSensorLoss {
            bank: d.usize("fault bank")?,
        },
        10 => FaultKind::HostFailure {
            node: d.usize("fault node")?,
        },
        11 => FaultKind::MigrationsBlocked,
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "fault tag",
            })
        }
    })
}

fn enc_event(e: &mut Enc, ev: &Event) {
    match ev {
        Event::ServerShutdown { node } => {
            e.u8(0);
            e.usize(*node);
        }
        Event::ServerRestart { node } => {
            e.u8(1);
            e.usize(*node);
        }
        Event::DvfsChanged { node, level } => {
            e.u8(2);
            e.usize(*node);
            e.u8(dvfs_tag(*level));
        }
        Event::MigrationStarted { vm, from, to } => {
            e.u8(3);
            e.u64(vm.0);
            e.usize(*from);
            e.usize(*to);
        }
        Event::Action { outcome } => {
            e.u8(4);
            enc_outcome(e, outcome);
        }
        Event::BatteryCutoff { node } => {
            e.u8(5);
            e.usize(*node);
        }
        Event::SocFloorChanged { node, floor } => {
            e.u8(6);
            e.usize(*node);
            e.f64(floor.value());
        }
        Event::PlacementFailed { node } => {
            e.u8(7);
            e.usize(*node);
        }
        Event::FaultInjected { fault } => {
            e.u8(8);
            enc_fault(e, fault);
        }
        Event::FaultCleared { fault } => {
            e.u8(9);
            enc_fault(e, fault);
        }
        Event::DegradedMode { node, active } => {
            e.u8(10);
            e.usize(*node);
            e.bool(*active);
        }
    }
}

fn dec_event(d: &mut Dec<'_>) -> DecResult<Event> {
    Ok(match d.u8("event tag")? {
        0 => Event::ServerShutdown {
            node: d.usize("event node")?,
        },
        1 => Event::ServerRestart {
            node: d.usize("event node")?,
        },
        2 => Event::DvfsChanged {
            node: d.usize("event node")?,
            level: dvfs_from(d.u8("event level")?)?,
        },
        3 => Event::MigrationStarted {
            vm: VmId(d.u64("event vm")?),
            from: d.usize("event from")?,
            to: d.usize("event to")?,
        },
        4 => Event::Action {
            outcome: dec_outcome(d)?,
        },
        5 => Event::BatteryCutoff {
            node: d.usize("event node")?,
        },
        6 => Event::SocFloorChanged {
            node: d.usize("event node")?,
            floor: Soc::saturating(d.f64("event floor")?),
        },
        7 => Event::PlacementFailed {
            node: d.usize("event node")?,
        },
        8 => Event::FaultInjected {
            fault: dec_fault(d)?,
        },
        9 => Event::FaultCleared {
            fault: dec_fault(d)?,
        },
        10 => Event::DegradedMode {
            node: d.usize("event node")?,
            active: d.bool("event active")?,
        },
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "event tag",
            })
        }
    })
}

fn enc_vm(e: &mut Enc, v: &VmSnapshot) {
    e.u64(v.id.0);
    e.u8(kind_tag(v.kind));
    e.u8(vm_state_tag(v.state));
    e.f64(v.progress);
    e.f64(v.work_done);
    e.u32(v.migrations);
}

fn dec_vm(d: &mut Dec<'_>) -> DecResult<VmSnapshot> {
    Ok(VmSnapshot {
        id: VmId(d.u64("vm id")?),
        kind: kind_from(d.u8("vm kind")?)?,
        state: vm_state_from(d.u8("vm state")?)?,
        progress: d.f64("vm progress")?,
        work_done: d.f64("vm work")?,
        migrations: d.u32("vm migrations")?,
    })
}

fn enc_sample(e: &mut Enc, s: &SensorSample) {
    e.u64(s.at.as_secs());
    e.f64(s.voltage.as_f64());
    e.f64(s.current.as_f64());
    e.f64(s.temperature.as_f64());
    e.f64(s.soc.value());
}

fn dec_sample(d: &mut Dec<'_>) -> DecResult<SensorSample> {
    Ok(SensorSample {
        at: SimInstant::from_secs(d.u64("sample at")?),
        voltage: Volts::new(d.f64("sample voltage")?),
        current: Amperes::new(d.f64("sample current")?),
        temperature: Celsius::new(d.f64("sample temperature")?),
        soc: Soc::saturating(d.f64("sample soc")?),
    })
}

fn enc_accumulator(e: &mut Enc, u: &UsageAccumulator) {
    e.f64(u.ah_discharged.as_f64());
    e.f64(u.ah_charged.as_f64());
    for r in &u.ah_discharged_by_range {
        e.f64(r.as_f64());
    }
    e.u64(u.observed.as_secs());
    e.u64(u.deep_discharge_time.as_secs());
    for b in &u.soc_time_histogram {
        e.u64(b.as_secs());
    }
    e.f64(u.peak_discharge.as_f64());
    e.f64(u.discharge_amp_seconds);
    e.u64(u.discharge_time.as_secs());
    e.f64(u.energy_out.as_f64());
    e.f64(u.energy_in.as_f64());
    e.u64(u.full_charge_events);
}

fn dec_accumulator(d: &mut Dec<'_>) -> DecResult<UsageAccumulator> {
    let mut u = UsageAccumulator {
        ah_discharged: AmpHours::new(d.f64("usage ah_discharged")?),
        ah_charged: AmpHours::new(d.f64("usage ah_charged")?),
        ..UsageAccumulator::default()
    };
    for r in &mut u.ah_discharged_by_range {
        *r = AmpHours::new(d.f64("usage range")?);
    }
    u.observed = SimDuration::from_secs(d.u64("usage observed")?);
    u.deep_discharge_time = SimDuration::from_secs(d.u64("usage deep time")?);
    for b in &mut u.soc_time_histogram {
        *b = SimDuration::from_secs(d.u64("usage histogram")?);
    }
    u.peak_discharge = Amperes::new(d.f64("usage peak")?);
    u.discharge_amp_seconds = d.f64("usage amp seconds")?;
    u.discharge_time = SimDuration::from_secs(d.u64("usage discharge time")?);
    u.energy_out = WattHours::new(d.f64("usage energy out")?);
    u.energy_in = WattHours::new(d.f64("usage energy in")?);
    u.full_charge_events = d.u64("usage full charges")?;
    Ok(u)
}

fn enc_breakdown(e: &mut Enc, b: &AgingBreakdown) {
    e.usize(b.len());
    for (_, value) in b.iter() {
        e.f64(value);
    }
}

/// Aging labels are `&'static str`s owned by the chemistry, so the
/// format stores values only, in chemistry breakdown order, and decoding
/// re-attaches the labels from the header's chemistry tag.
fn dec_breakdown(d: &mut Dec<'_>, chemistry: Chemistry) -> DecResult<AgingBreakdown> {
    let n = d.len("breakdown len")?;
    if n == 0 {
        return Ok(AgingBreakdown::default());
    }
    let labels = chemistry.aging_labels();
    if n != labels.len() {
        return Err(SnapshotError::Corrupt {
            context: "breakdown mechanism count",
        });
    }
    let mut pairs = Vec::with_capacity(n);
    for &label in labels {
        pairs.push((label, d.f64("breakdown value")?));
    }
    Ok(AgingBreakdown::from_pairs(&pairs))
}

fn enc_battery(e: &mut Enc, b: &BatteryUnitState) {
    e.f64(b.soc.value());
    e.f64(b.hours_since_full);
    e.u64(b.cutoff_events);
    e.f64(b.temperature.as_f64());
    enc_breakdown(e, &b.aging);
    e.usize(b.telemetry.max_samples);
    e.usize(b.telemetry.samples.len());
    for s in &b.telemetry.samples {
        enc_sample(e, s);
    }
    enc_accumulator(e, &b.telemetry.lifetime);
    enc_accumulator(e, &b.telemetry.window);
}

fn dec_battery(d: &mut Dec<'_>, chemistry: Chemistry) -> DecResult<BatteryUnitState> {
    let soc = Soc::saturating(d.f64("battery soc")?);
    let hours_since_full = d.f64("battery hours since full")?;
    let cutoff_events = d.u64("battery cutoffs")?;
    let temperature = Celsius::new(d.f64("battery temperature")?);
    let aging = dec_breakdown(d, chemistry)?;
    let max_samples = d.usize("telemetry capacity")?;
    let n = d.len("telemetry samples len")?;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        samples.push(dec_sample(d)?);
    }
    let lifetime = dec_accumulator(d)?;
    let window = dec_accumulator(d)?;
    Ok(BatteryUnitState {
        soc,
        hours_since_full,
        cutoff_events,
        temperature,
        aging,
        telemetry: TelemetryState {
            max_samples,
            samples,
            lifetime,
            window,
        },
    })
}

fn enc_host(e: &mut Enc, h: &HostState) {
    e.u8(dvfs_tag(h.dvfs));
    e.bool(h.online);
    e.u64(h.boot_remaining.as_secs());
    e.f64(h.work_done);
    e.u64(h.completed_jobs);
    e.usize(h.vms.len());
    for v in &h.vms {
        enc_vm(e, v);
    }
}

fn dec_host(d: &mut Dec<'_>) -> DecResult<HostState> {
    let dvfs = dvfs_from(d.u8("host dvfs")?)?;
    let online = d.bool("host online")?;
    let boot_remaining = SimDuration::from_secs(d.u64("host boot")?);
    let work_done = d.f64("host work")?;
    let completed_jobs = d.u64("host jobs")?;
    let n = d.len("host vm count")?;
    let mut vms = Vec::with_capacity(n);
    for _ in 0..n {
        vms.push(dec_vm(d)?);
    }
    Ok(HostState {
        dvfs,
        online,
        boot_remaining,
        work_done,
        completed_jobs,
        vms,
    })
}

fn enc_cluster(e: &mut Enc, c: &ClusterState) {
    e.usize(c.hosts.len());
    for h in &c.hosts {
        enc_host(e, h);
    }
    e.usize(c.in_flight.len());
    for m in &c.in_flight {
        enc_vm(e, &m.vm);
        e.usize(m.to.0);
        e.u64(m.completes_at.as_secs());
    }
    e.u64(c.migrations_started);
}

fn dec_cluster(d: &mut Dec<'_>) -> DecResult<ClusterState> {
    let n = d.len("cluster host count")?;
    let mut hosts = Vec::with_capacity(n);
    for _ in 0..n {
        hosts.push(dec_host(d)?);
    }
    let m = d.len("cluster in-flight count")?;
    let mut in_flight = Vec::with_capacity(m);
    for _ in 0..m {
        in_flight.push(InFlightState {
            vm: dec_vm(d)?,
            to: ServerId(d.usize("migration target")?),
            completes_at: SimInstant::from_secs(d.u64("migration completes")?),
        });
    }
    Ok(ClusterState {
        hosts,
        in_flight,
        migrations_started: d.u64("cluster migrations")?,
    })
}

fn enc_trace_row(e: &mut Enc, r: &TraceRow) {
    e.u64(r.at.as_secs());
    e.f64(r.solar.as_f64());
    e.usize(r.soc.len());
    for &s in &r.soc {
        e.f64(s);
    }
    e.usize(r.server_power.len());
    for &p in &r.server_power {
        e.f64(p.as_f64());
    }
    e.usize(r.battery_current.len());
    for &c in &r.battery_current {
        e.f64(c);
    }
    e.f64(r.work_cumulative);
}

fn dec_trace_row(d: &mut Dec<'_>) -> DecResult<TraceRow> {
    let at = SimInstant::from_secs(d.u64("row at")?);
    let solar = Watts::new(d.f64("row solar")?);
    let n = d.len("row soc len")?;
    let mut soc = Vec::with_capacity(n);
    for _ in 0..n {
        soc.push(d.f64("row soc")?);
    }
    let n = d.len("row power len")?;
    let mut server_power = Vec::with_capacity(n);
    for _ in 0..n {
        server_power.push(Watts::new(d.f64("row power")?));
    }
    let n = d.len("row current len")?;
    let mut battery_current = Vec::with_capacity(n);
    for _ in 0..n {
        battery_current.push(d.f64("row current")?);
    }
    Ok(TraceRow {
        at,
        solar,
        soc,
        server_power,
        battery_current,
        work_cumulative: d.f64("row work")?,
    })
}

fn enc_injector(e: &mut Enc, i: &InjectorState) {
    e.usize(i.active.len());
    for &a in &i.active {
        e.bool(a);
    }
    e.usize(i.held.len());
    for h in &i.held {
        match h {
            None => e.u8(0),
            Some(s) => {
                e.u8(1);
                enc_sample(e, s);
            }
        }
    }
    e.usize(i.held_temp.len());
    for t in &i.held_temp {
        match t {
            None => e.u8(0),
            Some(c) => {
                e.u8(1);
                e.f64(c.as_f64());
            }
        }
    }
    e.rng(&i.rng_state);
}

fn dec_injector(d: &mut Dec<'_>) -> DecResult<InjectorState> {
    let n = d.len("injector active len")?;
    let mut active = Vec::with_capacity(n);
    for _ in 0..n {
        active.push(d.bool("injector active")?);
    }
    let n = d.len("injector held len")?;
    let mut held = Vec::with_capacity(n);
    for _ in 0..n {
        held.push(match d.u8("injector held tag")? {
            0 => None,
            1 => Some(dec_sample(d)?),
            _ => {
                return Err(SnapshotError::Corrupt {
                    context: "injector held tag",
                })
            }
        });
    }
    let n = d.len("injector held temp len")?;
    let mut held_temp = Vec::with_capacity(n);
    for _ in 0..n {
        held_temp.push(match d.u8("injector temp tag")? {
            0 => None,
            1 => Some(Celsius::new(d.f64("injector temp")?)),
            _ => {
                return Err(SnapshotError::Corrupt {
                    context: "injector temp tag",
                })
            }
        });
    }
    Ok(InjectorState {
        active,
        held,
        held_temp,
        rng_state: d.rng("injector rng")?,
    })
}

fn encode_state(s: &SimState) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(s.step_index);
    e.u64(s.now.as_secs());
    e.u8(weather_tag(s.weather_today));
    e.opt_u64(s.started_day);
    e.bool(s.in_window);
    e.usize(s.soc_floors.len());
    for &f in &s.soc_floors {
        e.f64(f);
    }
    e.usize(s.unserved_streak.len());
    for &v in &s.unserved_streak {
        e.u32(v);
    }
    e.usize(s.offline_since.len());
    for o in &s.offline_since {
        e.opt_u64(o.map(SimInstant::as_secs));
    }
    e.usize(s.downtime.len());
    for &t in &s.downtime {
        e.u64(t.as_secs());
    }
    e.f64(s.unserved_energy.as_f64());
    e.f64(s.curtailed_energy.as_f64());
    e.f64(s.grid_charge_energy.as_f64());
    e.usize(s.arrivals_today.len());
    for a in &s.arrivals_today {
        e.u32(a.at.as_secs());
        e.u8(kind_tag(a.kind));
    }
    e.usize(s.pending.len());
    for v in &s.pending {
        enc_vm(&mut e, v);
    }
    e.rng(&s.clouds_rng);
    e.f64(s.clouds_ar);
    e.usize(s.last_currents.len());
    for &c in &s.last_currents {
        e.f64(c);
    }
    e.usize(s.last_voltages.len());
    for &v in &s.last_voltages {
        e.f64(v);
    }
    e.f64(s.last_solar.as_f64());
    e.usize(s.last_outcomes.len());
    for o in &s.last_outcomes {
        enc_outcome(&mut e, o);
    }
    e.usize(s.mode_switches.len());
    for &m in &s.mode_switches {
        e.u64(m);
    }
    e.usize(s.stage_last.len());
    for st in &s.stage_last {
        match st {
            None => e.u8(255),
            Some(stage) => e.u8(stage_tag(*stage)),
        }
    }
    e.usize(s.degraded.len());
    for &f in &s.degraded {
        e.bool(f);
    }
    e.usize(s.fallback_rejected.len());
    for a in &s.fallback_rejected {
        enc_action(&mut e, a);
    }
    e.u64(s.rr_cursor);
    e.rng(&s.generator_rng);
    e.u64(s.generator_next_id);
    e.usize(s.sensor_rngs.len());
    for r in &s.sensor_rngs {
        e.rng(r);
    }
    enc_injector(&mut e, &s.injector);
    e.usize(s.events.len());
    for ev in &s.events {
        e.u64(ev.at.as_secs());
        enc_event(&mut e, &ev.event);
    }
    e.u64(s.recorder_keep_every);
    e.u64(s.recorder_pushes);
    e.usize(s.recorder_rows.len());
    for r in &s.recorder_rows {
        enc_trace_row(&mut e, r);
    }
    enc_cluster(&mut e, &s.cluster);
    e.usize(s.power_table.len());
    for (battery, server) in &s.power_table {
        e.usize(battery.len());
        for row in battery {
            enc_sample(&mut e, row);
        }
        e.usize(server.len());
        for row in server {
            e.u64(row.at.as_secs());
            e.f64(row.power.as_f64());
        }
    }
    e.usize(s.batteries.len());
    for b in &s.batteries {
        enc_battery(&mut e, b);
    }
    match &s.policy {
        None => e.u8(0),
        Some(p) => {
            e.u8(1);
            e.str(&p.name);
            e.usize(p.data.len());
            for &w in &p.data {
                e.u64(w);
            }
        }
    }
    e.buf
}

fn decode_state(bytes: &[u8], chemistry: Chemistry) -> Result<SimState, SnapshotError> {
    let d = &mut Dec::new(bytes);
    let step_index = d.u64("step index")?;
    let now = SimInstant::from_secs(d.u64("now")?);
    let weather_today = weather_from(d.u8("weather")?)?;
    let started_day = d.opt_u64("started day")?;
    let in_window = d.bool("in window")?;
    let n = d.len("soc floors len")?;
    let mut soc_floors = Vec::with_capacity(n);
    for _ in 0..n {
        soc_floors.push(d.f64("soc floor")?);
    }
    let n = d.len("unserved streak len")?;
    let mut unserved_streak = Vec::with_capacity(n);
    for _ in 0..n {
        unserved_streak.push(d.u32("unserved streak")?);
    }
    let n = d.len("offline len")?;
    let mut offline_since = Vec::with_capacity(n);
    for _ in 0..n {
        offline_since.push(d.opt_u64("offline since")?.map(SimInstant::from_secs));
    }
    let n = d.len("downtime len")?;
    let mut downtime = Vec::with_capacity(n);
    for _ in 0..n {
        downtime.push(SimDuration::from_secs(d.u64("downtime")?));
    }
    let unserved_energy = WattHours::new(d.f64("unserved energy")?);
    let curtailed_energy = WattHours::new(d.f64("curtailed energy")?);
    let grid_charge_energy = WattHours::new(d.f64("grid energy")?);
    let n = d.len("arrivals len")?;
    let mut arrivals_today = Vec::with_capacity(n);
    for _ in 0..n {
        arrivals_today.push(Arrival {
            at: TimeOfDay::from_secs(d.u32("arrival at")?),
            kind: kind_from(d.u8("arrival kind")?)?,
        });
    }
    let n = d.len("pending len")?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        pending.push(dec_vm(d)?);
    }
    let clouds_rng = d.rng("clouds rng")?;
    let clouds_ar = d.f64("clouds ar")?;
    let n = d.len("currents len")?;
    let mut last_currents = Vec::with_capacity(n);
    for _ in 0..n {
        last_currents.push(d.f64("current")?);
    }
    let n = d.len("voltages len")?;
    let mut last_voltages = Vec::with_capacity(n);
    for _ in 0..n {
        last_voltages.push(d.f64("voltage")?);
    }
    let last_solar = Watts::new(d.f64("last solar")?);
    let n = d.len("outcomes len")?;
    let mut last_outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        last_outcomes.push(dec_outcome(d)?);
    }
    let n = d.len("mode switches len")?;
    let mut mode_switches = Vec::with_capacity(n);
    for _ in 0..n {
        mode_switches.push(d.u64("mode switch")?);
    }
    let n = d.len("stage last len")?;
    let mut stage_last = Vec::with_capacity(n);
    for _ in 0..n {
        stage_last.push(match d.u8("stage tag")? {
            255 => None,
            tag => Some(stage_from(tag)?),
        });
    }
    let n = d.len("degraded len")?;
    let mut degraded = Vec::with_capacity(n);
    for _ in 0..n {
        degraded.push(d.bool("degraded")?);
    }
    let n = d.len("fallback len")?;
    let mut fallback_rejected = Vec::with_capacity(n);
    for _ in 0..n {
        fallback_rejected.push(dec_action(d)?);
    }
    let rr_cursor = d.u64("rr cursor")?;
    let generator_rng = d.rng("generator rng")?;
    let generator_next_id = d.u64("generator next id")?;
    let n = d.len("sensor rng len")?;
    let mut sensor_rngs = Vec::with_capacity(n);
    for _ in 0..n {
        sensor_rngs.push(d.rng("sensor rng")?);
    }
    let injector = dec_injector(d)?;
    let n = d.len("events len")?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let at = SimInstant::from_secs(d.u64("event at")?);
        events.push(TimedEvent {
            at,
            event: dec_event(d)?,
        });
    }
    let recorder_keep_every = d.u64("recorder stride")?;
    let recorder_pushes = d.u64("recorder pushes")?;
    let n = d.len("recorder rows len")?;
    let mut recorder_rows = Vec::with_capacity(n);
    for _ in 0..n {
        recorder_rows.push(dec_trace_row(d)?);
    }
    let cluster = dec_cluster(d)?;
    let n = d.len("power table len")?;
    let mut power_table = Vec::with_capacity(n);
    for _ in 0..n {
        let m = d.len("power table battery len")?;
        let mut battery = Vec::with_capacity(m);
        for _ in 0..m {
            battery.push(dec_sample(d)?);
        }
        let m = d.len("power table server len")?;
        let mut server = Vec::with_capacity(m);
        for _ in 0..m {
            server.push(ServerPowerRecord {
                at: SimInstant::from_secs(d.u64("server row at")?),
                power: Watts::new(d.f64("server row power")?),
            });
        }
        power_table.push((battery, server));
    }
    let n = d.len("batteries len")?;
    let mut batteries = Vec::with_capacity(n);
    for _ in 0..n {
        batteries.push(dec_battery(d, chemistry)?);
    }
    let policy = match d.u8("policy tag")? {
        0 => None,
        1 => {
            let len = d.len("policy name len")?;
            let name = String::from_utf8(d.take(len, "policy name")?.to_vec()).map_err(|_| {
                SnapshotError::Corrupt {
                    context: "policy name",
                }
            })?;
            let n = d.len("policy data len")?;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(d.u64("policy word")?);
            }
            Some(PolicyState { name, data })
        }
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "policy tag",
            })
        }
    };
    if d.pos != bytes.len() {
        return Err(SnapshotError::Corrupt {
            context: "trailing bytes",
        });
    }
    Ok(SimState {
        step_index,
        now,
        weather_today,
        started_day,
        in_window,
        soc_floors,
        unserved_streak,
        offline_since,
        downtime,
        unserved_energy,
        curtailed_energy,
        grid_charge_energy,
        arrivals_today,
        pending,
        clouds_rng,
        clouds_ar,
        last_currents,
        last_voltages,
        last_solar,
        last_outcomes,
        mode_switches,
        stage_last,
        degraded,
        fallback_rejected,
        rr_cursor,
        generator_rng,
        generator_next_id,
        sensor_rngs,
        injector,
        events,
        recorder_keep_every,
        recorder_pushes,
        recorder_rows,
        cluster,
        power_table,
        batteries,
        policy,
    })
}

impl SimSnapshot {
    /// Serializes the snapshot to the versioned byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = encode_state(&self.state);
        let mut out = Vec::with_capacity(body.len() + 37);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.push(chemistry_tag(self.chemistry));
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        let check = fnv1a(&body);
        out.extend_from_slice(&body);
        out.extend_from_slice(&check.to_le_bytes());
        out
    }

    /// Parses a snapshot from bytes, validating magic, version, body
    /// length and checksum.
    ///
    /// # Errors
    ///
    /// Returns the matching [`SnapshotError`] on malformed input; never
    /// panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let d = &mut Dec::new(bytes);
        let magic = d.take(8, "magic")?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = d.u32("version")?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let chemistry = chemistry_from(d.u8("chemistry")?)?;
        let config_hash = d.u64("config hash")?;
        let body_len = d.usize("body length")?;
        let body = d.take(body_len, "body")?;
        let check = d.u64("checksum")?;
        if fnv1a(body) != check {
            return Err(SnapshotError::Corrupt {
                context: "checksum",
            });
        }
        let state = decode_state(body, chemistry)?;
        Ok(Self {
            version,
            chemistry,
            config_hash,
            state,
        })
    }

    /// A position-independent hash of the dynamic state — two
    /// simulations at the same step of the same run have equal state
    /// hashes, whether paused there or restored from a checkpoint and
    /// re-stepped.
    pub fn state_hash(&self) -> u64 {
        fnv1a(&encode_state(&self.state))
    }

    /// Writes the snapshot to a file.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] on filesystem failure.
    pub fn write_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), SnapshotError> {
        std::fs::write(path.as_ref(), self.to_bytes())
            .map_err(|e| SnapshotError::Io(format!("write {}: {e}", path.as_ref().display())))
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] on filesystem failure and decoding
    /// errors on malformed contents.
    pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| SnapshotError::Io(format!("read {}: {e}", path.as_ref().display())))?;
        Self::from_bytes(&bytes)
    }

    /// Loads the carried policy state into `policy`, if the snapshot
    /// holds state recorded by a policy of the same name. Returns `true`
    /// when state was applied.
    pub fn apply_policy_state<P: Policy + ?Sized>(&self, policy: &mut P) -> bool {
        match &self.state.policy {
            Some(p) if p.name == policy.name() => {
                policy.load_state(&p.data);
                true
            }
            _ => false,
        }
    }

    /// Convenience view of the pending queue as a `VecDeque`, matching
    /// the engine's in-memory representation.
    pub fn pending_queue(&self) -> VecDeque<VmSnapshot> {
        self.state.pending.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn bad_magic_is_typed() {
        assert_eq!(
            SimSnapshot::from_bytes(b"NOTASNAP-----------------"),
            Err(SnapshotError::BadMagic)
        );
        assert_eq!(
            SimSnapshot::from_bytes(b""),
            Err(SnapshotError::Truncated { context: "magic" })
        );
    }

    #[test]
    fn unknown_version_is_typed() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            SimSnapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion {
                found: 99,
                expected: SNAPSHOT_VERSION
            })
        );
    }

    #[test]
    fn decoder_rejects_absurd_length_prefixes() {
        let mut e = Enc::default();
        e.u64(u64::MAX);
        let mut d = Dec::new(&e.buf);
        assert!(matches!(d.len("test"), Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn enum_tags_round_trip() {
        for w in Weather::ALL {
            assert_eq!(weather_from(weather_tag(w)).unwrap(), w);
        }
        for c in Chemistry::ALL {
            assert_eq!(chemistry_from(chemistry_tag(c)).unwrap(), c);
        }
        for k in WorkloadKind::ALL {
            assert_eq!(kind_from(kind_tag(k)).unwrap(), k);
        }
        for l in DvfsLevel::ALL {
            assert_eq!(dvfs_from(dvfs_tag(l)).unwrap(), l);
        }
        assert!(weather_from(200).is_err());
        assert!(vm_state_from(9).is_err());
        assert!(stage_from(9).is_err());
        assert!(reject_from(9).is_err());
    }

    #[test]
    fn fault_kinds_round_trip() {
        let kinds = [
            FaultKind::SensorDropout { bank: 1 },
            FaultKind::SensorStuckAt { bank: 2 },
            FaultKind::SensorNoise {
                bank: 0,
                sigma: 0.4,
            },
            FaultKind::SensorDrift {
                bank: 3,
                volts_per_hour: -0.01,
            },
            FaultKind::PvOutage,
            FaultKind::InverterDerate { fraction: 0.5 },
            FaultKind::ChargerFailure { bank: 1 },
            FaultKind::ChargerModeStuck { bank: 0 },
            FaultKind::BatteryOpenCircuit { bank: 2 },
            FaultKind::ThermalSensorLoss { bank: 1 },
            FaultKind::HostFailure { node: 4 },
            FaultKind::MigrationsBlocked,
        ];
        for kind in kinds {
            let mut e = Enc::default();
            enc_fault(&mut e, &kind);
            let mut d = Dec::new(&e.buf);
            assert_eq!(dec_fault(&mut d).unwrap(), kind);
        }
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE] {
            let mut e = Enc::default();
            e.f64(v);
            let mut d = Dec::new(&e.buf);
            assert_eq!(d.f64("v").unwrap().to_bits(), v.to_bits());
        }
    }
}
