//! The policy interface: how a battery-management scheme plugs into the
//! engine.
//!
//! The four Table-4 schemes (e-Buff, BAAT-s, BAAT-h, BAAT) are
//! implementations of [`Policy`] living in `baat-core`. The engine calls
//! [`Policy::control`] every control interval and applies the returned
//! [`Action`]s, and consults [`Policy::placement_order`] whenever a new
//! workload arrives.
//!
//! Actuation is typed end to end: every requested [`Action`] produces an
//! [`ActionOutcome`] — applied, or rejected with a [`RejectReason`] —
//! which is appended to the event log and handed back to the policy on
//! the *next* control interval through [`ControlCtx`]. This mirrors the
//! prototype, where commands can fail at the Xen layer and the
//! controller observes the failure a beat later.

use baat_server::{DvfsLevel, MigrationBlock, ServerError};
use baat_units::{SimInstant, Soc};
use baat_workload::{VmId, WorkloadKind};

use crate::fleet::PlacementSpec;
use crate::view::SystemView;

/// An actuation a policy can request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Set a server's DVFS level (power capping, Fig 9).
    SetDvfs {
        /// Target node.
        node: usize,
        /// Level to apply.
        level: DvfsLevel,
    },
    /// Live-migrate a VM to another node (aging hiding / slowdown).
    Migrate {
        /// The VM to move.
        vm: VmId,
        /// Destination node.
        target: usize,
    },
    /// Set the battery discharge floor: the engine will not discharge the
    /// node's battery below this SoC (planned aging sets it to
    /// `1 − DoD_goal`; e-Buff leaves it at zero).
    SetSocFloor {
        /// Target node.
        node: usize,
        /// Minimum SoC to preserve.
        floor: Soc,
    },
}

/// Why the engine could not apply a requested [`Action`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The named node does not exist.
    UnknownNode,
    /// No host in the cluster runs the named VM.
    UnknownVm,
    /// The VM is already in flight.
    AlreadyMigrating,
    /// The migration target is the VM's current host.
    TargetIsSource,
    /// The migration target lacks free resources (net of reservations).
    TargetFull,
    /// An injected fault blocks the actuation path (e.g. the migration
    /// control plane is down).
    FaultInjected,
}

impl RejectReason {
    /// Maps a cluster error from an attempted migration onto the typed
    /// policy-facing reason.
    pub fn from_server_error(err: &ServerError) -> Self {
        match err {
            ServerError::UnknownServer { .. } => RejectReason::UnknownNode,
            ServerError::UnknownVm { .. } => RejectReason::UnknownVm,
            ServerError::MigrationRejected {
                block: MigrationBlock::AlreadyInFlight,
                ..
            } => RejectReason::AlreadyMigrating,
            ServerError::MigrationRejected {
                block: MigrationBlock::TargetIsSource,
                ..
            } => RejectReason::TargetIsSource,
            ServerError::InsufficientResources { .. } => RejectReason::TargetFull,
            ServerError::InvalidConfig { .. } => RejectReason::UnknownNode,
        }
    }

    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::UnknownNode => "unknown_node",
            RejectReason::UnknownVm => "unknown_vm",
            RejectReason::AlreadyMigrating => "already_migrating",
            RejectReason::TargetIsSource => "target_is_source",
            RejectReason::TargetFull => "target_full",
            RejectReason::FaultInjected => "fault_injected",
        }
    }
}

/// What happened when the engine processed one [`Action`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActionResult {
    /// The action took effect (possibly as a no-op, e.g. re-setting the
    /// current DVFS level).
    Applied,
    /// The action was infeasible and dropped.
    Rejected(RejectReason),
}

/// One action paired with its result — the typed replacement for the
/// engine's old silent-drop actuation path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionOutcome {
    /// The requested action.
    pub action: Action,
    /// Whether it was applied.
    pub result: ActionResult,
}

impl ActionOutcome {
    /// `true` if the action was rejected.
    pub fn is_rejected(&self) -> bool {
        matches!(self.result, ActionResult::Rejected(_))
    }

    /// The rejection reason, if any.
    pub fn reject_reason(&self) -> Option<RejectReason> {
        match self.result {
            ActionResult::Applied => None,
            ActionResult::Rejected(reason) => Some(reason),
        }
    }
}

/// Per-interval control context handed to [`Policy::control`] alongside
/// the [`SystemView`].
///
/// `last_outcomes` carries the outcomes of the actions the policy
/// requested on the *previous* control interval (empty on the first),
/// letting schemes back off from failed migrations instead of re-issuing
/// them blindly.
#[derive(Debug, Clone, Copy)]
pub struct ControlCtx<'a> {
    /// Engine step index at this control tick.
    pub step_index: u64,
    /// Simulation time now.
    pub now: SimInstant,
    /// Outcomes of the previous interval's requested actions.
    pub last_outcomes: &'a [ActionOutcome],
}

impl ControlCtx<'static> {
    /// Context for the first control tick (or for driving a policy
    /// outside the engine, e.g. in tests): step 0, time zero, no prior
    /// outcomes.
    pub const fn bootstrap() -> Self {
        ControlCtx {
            step_index: 0,
            now: SimInstant::START,
            last_outcomes: &[],
        }
    }
}

impl<'a> ControlCtx<'a> {
    /// Iterates the VMs whose migration was rejected last interval.
    pub fn rejected_migrations(&self) -> impl Iterator<Item = VmId> + 'a {
        self.last_outcomes.iter().filter_map(|o| match o {
            ActionOutcome {
                action: Action::Migrate { vm, .. },
                result: ActionResult::Rejected(_),
            } => Some(*vm),
            _ => None,
        })
    }
}

/// A battery-aging management policy (paper Table 4).
pub trait Policy {
    /// Short name for reports ("e-Buff", "BAAT", …).
    fn name(&self) -> &'static str;

    /// Invoked every control interval with the current system view and
    /// the control context; returns actuations to apply. Infeasible
    /// actions are rejected (not fatal) and surface in the next
    /// interval's [`ControlCtx::last_outcomes`], mirroring the prototype
    /// where commands can fail at the Xen layer.
    fn control(&mut self, view: &SystemView, ctx: &ControlCtx<'_>) -> Vec<Action>;

    /// Ranks nodes for placing a newly arrived workload, best first. The
    /// engine admits the VM to the first node in the order with free
    /// resources; an empty order means "reject the workload".
    fn placement_order(&mut self, kind: WorkloadKind, view: &SystemView) -> Vec<usize>;

    /// Declares how this policy's placement order is produced. The
    /// default, [`PlacementSpec::Custom`], keeps the legacy path (the
    /// engine builds a [`SystemView`] and calls
    /// [`Policy::placement_order`]). Policies whose order matches a
    /// declarative spec should return it: the engine then ranks from its
    /// incremental [`crate::FleetView`] — bit-identical, without view
    /// rebuilds or from-scratch sorts. A non-`Custom` spec must describe
    /// *exactly* what `placement_order` computes; equality is pinned by
    /// the incremental-vs-scratch test suites.
    fn placement_spec(&self) -> PlacementSpec {
        PlacementSpec::Custom
    }

    /// Serializes the policy's mutable decision state (cooldowns,
    /// hysteresis counters, …) for a checkpoint. Stateless policies keep
    /// the default empty vector. The encoding is policy-private: the only
    /// contract is that [`Policy::load_state`] on a freshly constructed
    /// policy of the same type restores bit-identical future decisions.
    fn save_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state captured by [`Policy::save_state`] onto a freshly
    /// constructed policy. The default ignores the data (stateless
    /// policies). Implementations must tolerate an empty slice (fresh
    /// start) and data from older encodings they no longer understand —
    /// degrade to fresh state rather than panic.
    fn load_state(&mut self, _state: &[u64]) {}
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn control(&mut self, view: &SystemView, ctx: &ControlCtx<'_>) -> Vec<Action> {
        (**self).control(view, ctx)
    }

    fn placement_order(&mut self, kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        (**self).placement_order(kind, view)
    }

    fn placement_spec(&self) -> PlacementSpec {
        (**self).placement_spec()
    }

    fn save_state(&self) -> Vec<u64> {
        (**self).save_state()
    }

    fn load_state(&mut self, state: &[u64]) {
        (**self).load_state(state)
    }
}

/// Forces the legacy recompute-from-scratch placement path for any
/// policy by masking its [`Policy::placement_spec`] back to
/// [`PlacementSpec::Custom`]. The reference wrapper the incremental
/// fleet ranker is proven bit-identical against: running `P` and
/// `ScratchPlacement(P)` over the same config must produce identical
/// reports.
#[derive(Debug, Clone, Default)]
pub struct ScratchPlacement<P>(pub P);

impl<P: Policy> Policy for ScratchPlacement<P> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn control(&mut self, view: &SystemView, ctx: &ControlCtx<'_>) -> Vec<Action> {
        self.0.control(view, ctx)
    }

    fn placement_order(&mut self, kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        self.0.placement_order(kind, view)
    }
    // placement_spec deliberately keeps the Custom default.

    fn save_state(&self) -> Vec<u64> {
        self.0.save_state()
    }

    fn load_state(&mut self, state: &[u64]) {
        self.0.load_state(state)
    }
}

/// Baseline placement with no battery awareness: round-robin placement,
/// no control actions. Useful for engine tests and as the naive
/// comparison point.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinPolicy {
    next: usize,
}

impl RoundRobinPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn control(&mut self, _view: &SystemView, _ctx: &ControlCtx<'_>) -> Vec<Action> {
        Vec::new()
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        let n = view.nodes.len();
        if n == 0 {
            return Vec::new();
        }
        let start = self.next % n;
        self.next = (self.next + 1) % n;
        (0..n).map(|i| (start + i) % n).collect()
    }

    fn placement_spec(&self) -> PlacementSpec {
        PlacementSpec::RoundRobin
    }

    fn save_state(&self) -> Vec<u64> {
        vec![self.next as u64]
    }

    fn load_state(&mut self, state: &[u64]) {
        if let Some(&next) = state.first() {
            self.next = next as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_solar::Weather;
    use baat_units::{SimInstant, TimeOfDay, Watts};

    fn empty_view(nodes: usize) -> SystemView {
        SystemView {
            now: SimInstant::START,
            tod: TimeOfDay::NOON,
            weather: Weather::Sunny,
            solar: Watts::ZERO,
            nodes: (0..nodes)
                .map(|i| crate::view::NodeView {
                    node: i,
                    soc: Soc::FULL,
                    window_metrics: baat_metrics::AgingMetrics::from_accumulator(
                        &baat_battery::UsageAccumulator::default(),
                        &baat_metrics::BatteryRatings {
                            capacity: baat_units::AmpHours::new(35.0),
                            lifetime_throughput: baat_units::AmpHours::new(17_500.0),
                        },
                    ),
                    lifetime_metrics: baat_metrics::AgingMetrics::from_accumulator(
                        &baat_battery::UsageAccumulator::default(),
                        &baat_metrics::BatteryRatings {
                            capacity: baat_units::AmpHours::new(35.0),
                            lifetime_throughput: baat_units::AmpHours::new(17_500.0),
                        },
                    ),
                    damage: 0.0,
                    capacity_fraction: 1.0,
                    server_power: Watts::ZERO,
                    utilization: baat_units::Fraction::ZERO,
                    dvfs: DvfsLevel::P0,
                    online: true,
                    degraded: false,
                    free_resources: (8, 16),
                    vms: Vec::new(),
                    battery_available: Watts::ZERO,
                    battery_capacity_wh: 840.0,
                    battery_capacity_ah: 70.0,
                    battery_lifetime_throughput_ah: 35_000.0,
                    soc_floor: Soc::EMPTY,
                    cutoff_events: 0,
                    hours_since_full: 0.0,
                })
                .collect(),
        }
    }

    #[test]
    fn round_robin_cycles_through_nodes() {
        let mut p = RoundRobinPolicy::new();
        let view = empty_view(3);
        let first = p.placement_order(WorkloadKind::KMeans, &view);
        let second = p.placement_order(WorkloadKind::KMeans, &view);
        assert_eq!(first, vec![0, 1, 2]);
        assert_eq!(second, vec![1, 2, 0]);
    }

    #[test]
    fn round_robin_issues_no_actions() {
        let mut p = RoundRobinPolicy::new();
        assert!(p
            .control(&empty_view(2), &ControlCtx::bootstrap())
            .is_empty());
    }

    #[test]
    fn empty_cluster_gives_empty_order() {
        let mut p = RoundRobinPolicy::new();
        assert!(p
            .placement_order(WorkloadKind::KMeans, &empty_view(0))
            .is_empty());
    }

    #[test]
    fn ctx_surfaces_rejected_migrations() {
        let outcomes = [
            ActionOutcome {
                action: Action::Migrate {
                    vm: VmId(3),
                    target: 1,
                },
                result: ActionResult::Rejected(RejectReason::TargetFull),
            },
            ActionOutcome {
                action: Action::Migrate {
                    vm: VmId(4),
                    target: 2,
                },
                result: ActionResult::Applied,
            },
            ActionOutcome {
                action: Action::SetDvfs {
                    node: 99,
                    level: DvfsLevel::P1,
                },
                result: ActionResult::Rejected(RejectReason::UnknownNode),
            },
        ];
        let ctx = ControlCtx {
            step_index: 10,
            now: SimInstant::from_secs(600),
            last_outcomes: &outcomes,
        };
        let rejected: Vec<VmId> = ctx.rejected_migrations().collect();
        assert_eq!(rejected, vec![VmId(3)]);
        assert!(outcomes[0].is_rejected());
        assert_eq!(outcomes[0].reject_reason(), Some(RejectReason::TargetFull));
        assert_eq!(outcomes[1].reject_reason(), None);
    }

    #[test]
    fn server_errors_map_to_typed_reasons() {
        use baat_server::{MigrationBlock, ServerError};
        let cases = [
            (
                ServerError::UnknownServer { index: 9, len: 6 },
                RejectReason::UnknownNode,
            ),
            (
                ServerError::UnknownVm { vm: VmId(1) },
                RejectReason::UnknownVm,
            ),
            (
                ServerError::MigrationRejected {
                    vm: VmId(1),
                    block: MigrationBlock::AlreadyInFlight,
                },
                RejectReason::AlreadyMigrating,
            ),
            (
                ServerError::MigrationRejected {
                    vm: VmId(1),
                    block: MigrationBlock::TargetIsSource,
                },
                RejectReason::TargetIsSource,
            ),
            (
                ServerError::InsufficientResources {
                    vm: VmId(1),
                    requested: (4, 8),
                    free: (0, 0),
                },
                RejectReason::TargetFull,
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(RejectReason::from_server_error(&err), expected);
        }
    }
}
