//! The policy interface: how a battery-management scheme plugs into the
//! engine.
//!
//! The four Table-4 schemes (e-Buff, BAAT-s, BAAT-h, BAAT) are
//! implementations of [`Policy`] living in `baat-core`. The engine calls
//! [`Policy::control`] every control interval and applies the returned
//! [`Action`]s, and consults [`Policy::placement_order`] whenever a new
//! workload arrives.

use baat_server::DvfsLevel;
use baat_units::Soc;
use baat_workload::{VmId, WorkloadKind};

use crate::view::SystemView;

/// An actuation a policy can request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Set a server's DVFS level (power capping, Fig 9).
    SetDvfs {
        /// Target node.
        node: usize,
        /// Level to apply.
        level: DvfsLevel,
    },
    /// Live-migrate a VM to another node (aging hiding / slowdown).
    Migrate {
        /// The VM to move.
        vm: VmId,
        /// Destination node.
        target: usize,
    },
    /// Set the battery discharge floor: the engine will not discharge the
    /// node's battery below this SoC (planned aging sets it to
    /// `1 − DoD_goal`; e-Buff leaves it at zero).
    SetSocFloor {
        /// Target node.
        node: usize,
        /// Minimum SoC to preserve.
        floor: Soc,
    },
}

/// A battery-aging management policy (paper Table 4).
pub trait Policy {
    /// Short name for reports ("e-Buff", "BAAT", …).
    fn name(&self) -> &'static str;

    /// Invoked every control interval with the current system view;
    /// returns actuations to apply. Infeasible actions (e.g. a migration
    /// to a full host) are dropped and logged, mirroring the prototype
    /// where commands can fail at the Xen layer.
    fn control(&mut self, view: &SystemView) -> Vec<Action>;

    /// Ranks nodes for placing a newly arrived workload, best first. The
    /// engine admits the VM to the first node in the order with free
    /// resources; an empty order means "reject the workload".
    fn placement_order(&mut self, kind: WorkloadKind, view: &SystemView) -> Vec<usize>;
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn control(&mut self, view: &SystemView) -> Vec<Action> {
        (**self).control(view)
    }

    fn placement_order(&mut self, kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        (**self).placement_order(kind, view)
    }
}

/// Baseline placement with no battery awareness: round-robin placement,
/// no control actions. Useful for engine tests and as the naive
/// comparison point.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinPolicy {
    next: usize,
}

impl RoundRobinPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn control(&mut self, _view: &SystemView) -> Vec<Action> {
        Vec::new()
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        let n = view.nodes.len();
        if n == 0 {
            return Vec::new();
        }
        let start = self.next % n;
        self.next = (self.next + 1) % n;
        (0..n).map(|i| (start + i) % n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_solar::Weather;
    use baat_units::{SimInstant, TimeOfDay, Watts};

    fn empty_view(nodes: usize) -> SystemView {
        SystemView {
            now: SimInstant::START,
            tod: TimeOfDay::NOON,
            weather: Weather::Sunny,
            solar: Watts::ZERO,
            nodes: (0..nodes)
                .map(|i| crate::view::NodeView {
                    node: i,
                    soc: Soc::FULL,
                    window_metrics: baat_metrics::AgingMetrics::from_accumulator(
                        &baat_battery::UsageAccumulator::default(),
                        &baat_metrics::BatteryRatings {
                            capacity: baat_units::AmpHours::new(35.0),
                            lifetime_throughput: baat_units::AmpHours::new(17_500.0),
                        },
                    ),
                    lifetime_metrics: baat_metrics::AgingMetrics::from_accumulator(
                        &baat_battery::UsageAccumulator::default(),
                        &baat_metrics::BatteryRatings {
                            capacity: baat_units::AmpHours::new(35.0),
                            lifetime_throughput: baat_units::AmpHours::new(17_500.0),
                        },
                    ),
                    damage: 0.0,
                    capacity_fraction: 1.0,
                    server_power: Watts::ZERO,
                    utilization: baat_units::Fraction::ZERO,
                    dvfs: DvfsLevel::P0,
                    online: true,
                    free_resources: (8, 16),
                    vms: Vec::new(),
                    battery_available: Watts::ZERO,
                    battery_capacity_wh: 840.0,
                    battery_capacity_ah: 70.0,
                    battery_lifetime_throughput_ah: 35_000.0,
                    soc_floor: Soc::EMPTY,
                    cutoff_events: 0,
                    hours_since_full: 0.0,
                })
                .collect(),
        }
    }

    #[test]
    fn round_robin_cycles_through_nodes() {
        let mut p = RoundRobinPolicy::new();
        let view = empty_view(3);
        let first = p.placement_order(WorkloadKind::KMeans, &view);
        let second = p.placement_order(WorkloadKind::KMeans, &view);
        assert_eq!(first, vec![0, 1, 2]);
        assert_eq!(second, vec![1, 2, 0]);
    }

    #[test]
    fn round_robin_issues_no_actions() {
        let mut p = RoundRobinPolicy::new();
        assert!(p.control(&empty_view(2)).is_empty());
    }

    #[test]
    fn empty_cluster_gives_empty_order() {
        let mut p = RoundRobinPolicy::new();
        assert!(p
            .placement_order(WorkloadKind::KMeans, &empty_view(0))
            .is_empty());
    }
}
