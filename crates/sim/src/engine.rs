//! The discrete-time green-datacenter simulation engine.
//!
//! Wires the substrates together the way the prototype's hardware is
//! wired (paper Fig 11): a PV array feeds a per-node power switcher;
//! each server has its own battery, charger and sensor; the BAAT
//! controller (a [`Policy`]) observes the power tables every control
//! interval and actuates DVFS, VM migration and discharge floors.
//!
//! Every policy [`Action`] is processed through the typed actuation
//! path: the engine produces an [`ActionOutcome`] (applied, or rejected
//! with a [`crate::RejectReason`]), appends it to the event log, and
//! hands the previous interval's outcomes back to the policy through
//! [`ControlCtx`]. Invariant violations (bad config, substrate
//! failures) surface as [`SimError`] instead of panicking.
//!
//! When built with [`Simulation::with_obs`], the engine also records
//! per-stage wall-clock timings and domain counters (actions applied and
//! rejected, shutdowns, restarts, migrations, energy totals) into the
//! [`Obs`] registry. Observation is free when disabled and never feeds
//! back into simulated state, so seeded runs are bit-identical with it
//! on or off.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use baat_battery::{
    AgingBreakdown, AgingObs, AnyBattery, BatteryModel, BatteryOp, BatteryPack, SensorSample,
};
use baat_exec::ExecPool;
use baat_faults::{FaultInjector, FaultKind, FaultPlan};
use baat_metrics::{class_index, AgingMetrics, BatteryRatings};
use baat_obs::{
    Counter, FlightRecorder, Gauge, HealthConfig, HealthMonitor, Histogram, NodeHealthSample, Obs,
    SpanId, Stage, StageClock, Tracer,
};
use baat_power::{
    BatterySensor, Charger, PowerSwitcher, PowerTable, Routing, ServerPowerRecord, StageTracker,
};
use baat_server::{Cluster, ServerId};
use baat_solar::{ClearSky, CloudProcess, PvArray, Weather};
use baat_units::{Fraction, SimDuration, SimInstant, Soc, TimeOfDay, Volts, WattHours, Watts};
use baat_workload::{Arrival, Vm, WorkloadGenerator, WorkloadKind};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::events::{Event, EventLog, TimedEvent};
use crate::fallback::{FallbackInput, FallbackScheme};
use crate::fleet::{demand_class, DirtyReason, FleetView, PlacementSpec, NAT_MODE};
use crate::policy::{Action, ActionOutcome, ActionResult, ControlCtx, Policy, RejectReason};
use crate::recorder::{Recorder, TraceRow};
use crate::report::{NodeReport, SimReport};
use crate::snapshot::{
    config_hash, PolicyState, SimSnapshot, SimState, SnapshotError, SNAPSHOT_VERSION,
};
use crate::view::{NodeView, SystemView, VmView};

/// Per-step stage timings are sampled: one step in this many is timed.
/// The per-step stages (solar, charger, switcher, battery, placement of
/// arrivals) run tens of thousands of times per simulated day at
/// microsecond granularity, so sampling keeps profiler overhead in the
/// noise while the recorded means stay representative. Control-interval
/// and recorder stages are rare and always timed; counters are exact
/// regardless.
const PROFILE_SAMPLE_STEPS: u64 = 8;

/// Consecutive unserved-demand steps before a node checkpoints and shuts
/// down.
const SHUTDOWN_STREAK: u32 = 3;
/// Minimum offline dwell before a restart attempt.
const RESTART_DWELL: SimDuration = SimDuration::from_minutes(5);
/// SoC margin above the floor required to restart a node on battery: the
/// battery must have recovered meaningfully, or the node flaps.
const RESTART_SOC_MARGIN: f64 = 0.45;

/// Lines the flight recorder's ring retains (recent telemetry rows,
/// events and health transitions preceding a post-mortem trigger).
const FLIGHT_RING_CAP: usize = 256;

/// Minimum fleet size before a configured pool shards the system-view
/// build; below this the per-batch dispatch overhead outweighs the
/// per-node scoring work.
const PAR_VIEW_MIN_NODES: usize = 128;

/// Minimum dirty-node count before a configured pool shards the fleet
/// refresh's bank scoring.
const PAR_REFRESH_MIN_NODES: usize = 64;

/// Splits `0..total` into at most `parts` contiguous, balanced ranges
/// (sizes differ by at most one; empty input yields no ranges). Shard
/// results are merged back in range order, which is why determinism
/// never depends on which worker ran which range.
fn shard_ranges(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, total.max(1));
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Engine-level metric handles, all inert when observation is disabled.
#[derive(Debug, Clone)]
struct EngineCounters {
    actions_applied: Counter,
    actions_rejected: Counter,
    shutdowns: Counter,
    restarts: Counter,
    migrations_started: Counter,
    placements_failed: Counter,
    battery_cutoffs: Counter,
    control_intervals: Counter,
    actions_per_interval: Histogram,
    unserved_wh: baat_obs::Gauge,
    curtailed_wh: baat_obs::Gauge,
    grid_charge_wh: baat_obs::Gauge,
}

impl EngineCounters {
    fn new(obs: &Obs) -> Self {
        Self {
            actions_applied: obs.counter("sim.actions.applied"),
            actions_rejected: obs.counter("sim.actions.rejected"),
            shutdowns: obs.counter("sim.server.shutdowns"),
            restarts: obs.counter("sim.server.restarts"),
            migrations_started: obs.counter("sim.migrations.started"),
            placements_failed: obs.counter("sim.placement.failures"),
            battery_cutoffs: obs.counter("sim.battery.cutoffs"),
            control_intervals: obs.counter("sim.control.intervals"),
            actions_per_interval: obs.histogram("sim.control.actions_per_interval"),
            unserved_wh: obs.gauge("sim.energy.unserved_wh"),
            curtailed_wh: obs.gauge("sim.energy.curtailed_wh"),
            grid_charge_wh: obs.gauge("sim.energy.grid_charge_wh"),
        }
    }
}

/// Fault-subsystem metric handles. Registered only when the configured
/// fault plan schedules something, so fault-free runs leave the metrics
/// registry (and its JSONL export) exactly as before.
#[derive(Debug, Clone)]
struct FaultCounters {
    injected: Counter,
    cleared: Counter,
    active: Gauge,
    degraded_nodes: Gauge,
    degraded_intervals: Counter,
    fallback_actions: Counter,
}

impl FaultCounters {
    fn new(obs: &Obs) -> Self {
        Self {
            injected: obs.counter("faults.injected"),
            cleared: obs.counter("faults.cleared"),
            active: obs.gauge("faults.active"),
            degraded_nodes: obs.gauge("sim.degraded.nodes"),
            degraded_intervals: obs.counter("sim.degraded.intervals"),
            fallback_actions: obs.counter("sim.fallback.actions"),
        }
    }

    const fn inert() -> Self {
        Self {
            injected: Counter::disabled(),
            cleared: Counter::disabled(),
            active: Gauge::disabled(),
            degraded_nodes: Gauge::disabled(),
            degraded_intervals: Counter::disabled(),
            fallback_actions: Counter::disabled(),
        }
    }
}

/// Parallel-execution metric handles: the `exec.*` family. Registered
/// only when the engine has *both* a worker pool and an enabled obs
/// context, so sequential runs and disabled-obs runs leave the metric
/// registry (and its exports) untouched — at `threads=1` the OpenMetrics
/// golden stays byte-identical. All handles are interior-mutable, so
/// hot-path updates are relaxed atomic ops with zero allocation; the
/// per-shard/per-thread vectors are sized once at construction.
///
/// The registry encodes indices into metric names (it has no label
/// support): `exec.worker.3.busy_ns` rather than
/// `exec_worker_busy_ns{worker="3"}`.
#[derive(Debug, Clone)]
struct ExecObs {
    /// Pool-level gauges, refreshed at the trace cadence from
    /// [`ExecPool::stats`].
    pool_threads: Gauge,
    pool_batches: Gauge,
    pool_wall_ns: Gauge,
    pool_merge_wait_ns: Gauge,
    /// Per-thread gauges (index 0 = the stepping thread itself).
    worker_busy_ns: Vec<Gauge>,
    worker_idle_ns: Vec<Gauge>,
    worker_tasks: Vec<Gauge>,
    /// Cumulative caller merge wait attributed per sharded stage: how
    /// long the step loop idled behind the slowest worker after its own
    /// task share drained. Exact (never sampled).
    merge_wait_battery_step: Counter,
    merge_wait_fleet_refresh: Counter,
    merge_wait_view: Counter,
    /// Cumulative per-shard busy ns for the routing pass, recorded on
    /// profile-sampled steps only (same cadence as the stage profiler).
    shard_step_ns: Vec<Counter>,
    /// Load imbalance of the latest sampled routing pass — slowest
    /// shard over mean shard, ×1000 (1000 = perfectly balanced) — and
    /// its distribution across sampled steps.
    shard_imbalance_x1000: Gauge,
    shard_imbalance_hist: Histogram,
}

impl ExecObs {
    /// Registers the `exec.*` family and switches the pool's metering
    /// on. `shards` is the maximum routing shard count
    /// (`min(banks, threads)`).
    fn new(obs: &Obs, pool: &ExecPool, shards: usize) -> Self {
        pool.set_metering(true);
        let threads = pool.threads();
        let this = Self {
            pool_threads: obs.gauge("exec.pool.threads"),
            pool_batches: obs.gauge("exec.pool.batches"),
            pool_wall_ns: obs.gauge("exec.pool.wall_ns"),
            pool_merge_wait_ns: obs.gauge("exec.pool.merge_wait_ns"),
            worker_busy_ns: (0..threads)
                .map(|i| obs.gauge(&format!("exec.worker.{i}.busy_ns")))
                .collect(),
            worker_idle_ns: (0..threads)
                .map(|i| obs.gauge(&format!("exec.worker.{i}.idle_ns")))
                .collect(),
            worker_tasks: (0..threads)
                .map(|i| obs.gauge(&format!("exec.worker.{i}.tasks")))
                .collect(),
            merge_wait_battery_step: obs.counter("exec.merge_wait.battery_step_ns"),
            merge_wait_fleet_refresh: obs.counter("exec.merge_wait.fleet_refresh_ns"),
            merge_wait_view: obs.counter("exec.merge_wait.view_ns"),
            shard_step_ns: (0..shards)
                .map(|s| obs.counter(&format!("exec.shard.{s}.step_ns")))
                .collect(),
            shard_imbalance_x1000: obs.gauge("exec.shard.imbalance_x1000"),
            shard_imbalance_hist: obs.histogram("exec.shard.imbalance_x1000.hist"),
        };
        this.pool_threads.set(threads as f64);
        this
    }

    /// Records one sampled routing pass's per-shard busy times and the
    /// pass's load-imbalance ratio. `shard_ns[s]` is shard `s`'s busy
    /// nanoseconds; a zero-sum pass (clock inert, or work too fast to
    /// resolve) is skipped so the imbalance series only holds measured
    /// passes.
    fn record_shards(&self, shard_ns: &[u64]) {
        let sum: u64 = shard_ns.iter().sum();
        if sum == 0 {
            return;
        }
        let mut max = 0u64;
        for (s, &ns) in shard_ns.iter().enumerate() {
            if let Some(counter) = self.shard_step_ns.get(s) {
                counter.add(ns);
            }
            max = max.max(ns);
        }
        let imbalance_x1000 = (max as f64 * shard_ns.len() as f64 / sum as f64) * 1000.0;
        self.shard_imbalance_x1000.set(imbalance_x1000.round());
        self.shard_imbalance_hist.observe(imbalance_x1000 as u64);
    }

    /// Refreshes the pool-level and per-thread gauges from a stats
    /// snapshot. Called at the trace cadence (the same cadence as the
    /// engine's energy gauges), so a live scrape sees values at most one
    /// sample interval old. Idle time is derived: metered batch wall
    /// time minus the thread's own busy time.
    fn refresh(&self, pool: &ExecPool) {
        let stats = pool.stats();
        self.pool_batches.set(stats.batches as f64);
        self.pool_wall_ns.set(stats.wall_ns as f64);
        self.pool_merge_wait_ns.set(stats.caller_wait_ns as f64);
        for (i, t) in stats.threads_stats.iter().enumerate() {
            if let Some(g) = self.worker_busy_ns.get(i) {
                g.set(t.busy_ns as f64);
            }
            if let Some(g) = self.worker_idle_ns.get(i) {
                g.set(stats.wall_ns.saturating_sub(t.busy_ns) as f64);
            }
            if let Some(g) = self.worker_tasks.get(i) {
                g.set(t.tasks as f64);
            }
        }
    }
}

/// Reusable hot-loop buffers for [`Simulation::route_power`].
///
/// The step loop runs tens of thousands of times per simulated day; these
/// buffers are cleared and refilled in place so the steady-state loop
/// performs no heap allocation. They carry no state across steps — every
/// pass starts with `clear()` — so they are deliberately excluded from
/// snapshot comparisons and reset to empty on clone.
#[derive(Debug, Default)]
struct StepScratch {
    /// Night-path charge decisions, one per bank.
    ops: Vec<BatteryOp>,
    /// Per-node server demand snapshot.
    demands: Vec<Watts>,
    /// Per-bank pre-step SoC and effective charger acceptance.
    socs_acceptances: Vec<(Soc, Watts)>,
    /// Per-bank aggregate member demand (summed once, reused).
    bank_demands: Vec<Watts>,
    /// Per-shard busy ns of the latest sharded routing pass (exec
    /// observability; all zeros on unsampled steps).
    shard_ns: Vec<u64>,
    /// Per-bank switcher decisions.
    routings: Vec<Routing>,
}

impl Clone for StepScratch {
    fn clone(&self) -> Self {
        // Scratch holds no cross-step state; a forked simulation starts
        // with fresh (empty) buffers.
        Self::default()
    }
}

/// One green-datacenter simulation instance.
#[derive(Clone)]
pub struct Simulation {
    config: SimConfig,
    /// Number of physical battery banks (= nodes for per-server
    /// integration; fewer for shared pools).
    banks: usize,
    /// Node → bank mapping.
    bank_of: Vec<usize>,
    /// Bank → member nodes.
    members: Vec<Vec<usize>>,
    cluster: Cluster,
    batteries: BatteryPack,
    sensors: Vec<BatterySensor>,
    chargers: Vec<Charger>,
    switcher: PowerSwitcher,
    array: PvArray,
    power_table: PowerTable,
    generator: WorkloadGenerator,
    events: EventLog,
    recorder: Recorder,
    now: SimInstant,
    step_index: u64,
    soc_floors: Vec<Soc>,
    unserved_streak: Vec<u32>,
    offline_since: Vec<Option<SimInstant>>,
    downtime: Vec<SimDuration>,
    unserved_energy: WattHours,
    curtailed_energy: WattHours,
    grid_charge_energy: WattHours,
    arrivals_today: VecDeque<Arrival>,
    /// Jobs that could not be placed yet; retried every control interval
    /// (the prototype's job queue).
    pending: VecDeque<Vm>,
    clouds: CloudProcess,
    weather_today: Weather,
    started_day: Option<u64>,
    in_window: bool,
    last_currents: Vec<f64>,
    last_voltages: Vec<f64>,
    last_solar: Watts,
    /// Outcomes of the previous control interval's actions, fed back to
    /// the policy through [`ControlCtx`].
    last_outcomes: Vec<ActionOutcome>,
    obs: Obs,
    counters: EngineCounters,
    aging_obs: AgingObs,
    /// Per-bank charger mode-switch trackers.
    stage_trackers: Vec<StageTracker>,
    /// Applies the configured fault plan at the engine's seams.
    injector: FaultInjector,
    /// Per-node degraded flags (telemetry stale past the bound).
    degraded: Vec<bool>,
    /// Conservative actions for degraded nodes.
    fallback: FallbackScheme,
    fault_counters: FaultCounters,
    /// Span emitter sharing the obs store; inert when obs is disabled,
    /// and unaffected by the `step()` obs swap.
    tracer: Tracer,
    /// Per-node rule-based aging-health monitor, evaluated at the
    /// control cadence. Inert when obs is disabled.
    health: HealthMonitor,
    /// Bounded ring of recent JSONL lines, dumped on degraded-mode
    /// entry and server shutdown. Inert when obs is disabled.
    flight: FlightRecorder,
    /// Cumulative charger mode switches per bank (engine-counted so the
    /// health monitor's thrash check never reads metric atomics).
    mode_switches: Vec<u64>,
    /// Open trace span per active fault (empty when tracing is off).
    active_fault_spans: Vec<(FaultKind, SpanId)>,
    /// Open degraded-mode span per node (`NONE` while healthy).
    degraded_spans: Vec<SpanId>,
    /// Degraded-entry snapshot per node — entry instant and aging
    /// breakdown — for the exit span's per-mechanism aging delta.
    degraded_enter: Vec<Option<(SimInstant, AgingBreakdown)>>,
    /// Steps per control interval (≥ 1), hoisted out of the step loop.
    control_steps: u64,
    /// Per-bank PV share (`members[b].len() / nodes`), hoisted out of the
    /// routing loop — precomputed with the identical expression, so routed
    /// solar power is bit-identical to the inline division.
    solar_shares: Vec<f64>,
    /// Reusable hot-loop buffers (no simulated state).
    scratch: StepScratch,
    /// Incremental placement state: struct-of-arrays score caches,
    /// dirty-node invalidation, and ranked orders for declarative
    /// [`PlacementSpec`]s. Never influences simulated state directly —
    /// ranks are bit-identical to the legacy recompute path.
    fleet: FleetView,
    /// Scoped worker pool for intra-step sharding; `None` when the
    /// configured [`crate::EngineThreads`] count is 1 (the reference
    /// sequential path). Results are bit-identical at every thread
    /// count, so the pool is engine plumbing, not simulated state: it is
    /// excluded from snapshots, and a resumed run may pick a different
    /// count freely.
    pool: Option<Arc<ExecPool>>,
    /// `exec.*` metric handles; `Some` only when both a pool and an
    /// enabled obs context exist. Like the pool itself, pure plumbing:
    /// never snapshotted, never feeds back into simulated state.
    exec_obs: Option<ExecObs>,
}

impl Simulation {
    /// Builds a simulation from a configuration, with observation
    /// disabled.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any substrate rejects its derived
    /// parameters.
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        Self::with_obs(config, Obs::disabled())
    }

    /// Builds a simulation recording metrics and stage timings into
    /// `obs`.
    ///
    /// Observation never influences the run: a seeded simulation
    /// produces a bit-identical [`SimReport`] whether `obs` is enabled
    /// or not.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any substrate rejects its derived
    /// parameters.
    pub fn with_obs(config: SimConfig, obs: Obs) -> Result<Self, SimError> {
        let mut cluster = Cluster::homogeneous(
            config.nodes,
            config.server_power,
            config.server_capacity,
            config.migration,
        )?;
        // Simulated time starts at midnight; servers power on at the
        // operating-window edge.
        cluster.power_off_all();
        let banks = config.topology.banks(config.nodes);
        let per_bank = config.topology.nodes_per_bank(config.nodes);
        let bank_of: Vec<usize> = (0..config.nodes)
            .map(|i| config.topology.bank_of(i, config.nodes))
            .collect();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); banks];
        for (node, &bank) in bank_of.iter().enumerate() {
            members[bank].push(node);
        }
        // A shared pool aggregates the per-node bank: k× capacity and
        // current limits, 1/k internal resistance.
        let bank_spec = if per_bank == 1 {
            config.battery_spec.clone()
        } else {
            let s = &config.battery_spec;
            let k = per_bank as f64;
            let mut b = baat_battery::BatterySpec::builder();
            b.chemistry(s.chemistry())
                .nominal_voltage(s.nominal_voltage())
                .capacity(s.capacity() * k)
                .internal_resistance(s.internal_resistance() / k)
                .cutoff_voltage(s.cutoff_voltage())
                .max_charge_current(s.max_charge_current() * k)
                .max_discharge_current(s.max_discharge_current() * k)
                .lifetime_throughput(s.lifetime_throughput() * k)
                .manufacturer(s.manufacturer())
                .coulombic_efficiency(s.coulombic_efficiency())
                .self_discharge_per_day(s.self_discharge_per_day())
                .ambient(s.ambient());
            b.build()?
        };
        let batteries =
            BatteryPack::manufacture(bank_spec, banks, config.variation, config.seed ^ 0xBA77)?;
        let array = PvArray::sized_for_daily_energy(
            config.solar_sunny_budget,
            Weather::Sunny,
            ClearSky::temperate(),
        )?;
        let sensors = (0..banks)
            .map(|i| BatterySensor::new(config.sensor_noise, config.seed ^ (0x5E45 + i as u64)))
            .collect();
        let charger = Charger::new(
            Charger::prototype().max_power() * per_bank as f64,
            Charger::prototype().efficiency(),
        )?;
        let chargers = vec![charger; banks];
        let weather_today = config.weather_plan[0];
        let clouds = CloudProcess::new(weather_today, config.seed);
        let nodes = config.nodes;
        let counters = EngineCounters::new(&obs);
        let aging_obs = AgingObs::new(&obs, config.battery_spec.chemistry());
        let stage_trackers = (0..banks)
            .map(|_| StageTracker::new(obs.counter("power.charger.mode_switches")))
            .collect();
        let injector = FaultInjector::new(&config.faults, banks, config.seed);
        let fault_counters = if config.faults.is_empty() {
            FaultCounters::inert()
        } else {
            FaultCounters::new(&obs)
        };
        let control_steps = (config.control_interval.as_secs() / config.dt.as_secs()).max(1);
        let solar_shares = members
            .iter()
            .map(|m| m.len() as f64 / nodes as f64)
            .collect();
        let tracer = obs.tracer();
        let health = HealthMonitor::new(HealthConfig::default(), &obs);
        let flight = FlightRecorder::new(FLIGHT_RING_CAP, obs.is_enabled());
        let total_steps = config.days() as u64 * 86_400 / config.dt.as_secs();
        let rows_hint = (total_steps / config.sample_every as u64).saturating_add(1) as usize;
        let fleet = FleetView::new(nodes, banks, bank_of.clone());
        let pool = match config.threads.get() {
            0 | 1 => None,
            t => Some(Arc::new(ExecPool::new(t))),
        };
        let exec_obs = match &pool {
            Some(pool) if obs.is_enabled() => {
                Some(ExecObs::new(&obs, pool, banks.min(pool.threads())))
            }
            _ => None,
        };
        Ok(Self {
            banks,
            bank_of,
            members,
            cluster,
            batteries,
            sensors,
            chargers,
            switcher: PowerSwitcher::prototype(),
            array,
            power_table: PowerTable::new(nodes),
            generator: WorkloadGenerator::new(config.seed ^ 0x10AD),
            events: EventLog::new(),
            recorder: Recorder::with_limits(rows_hint, config.max_trace_rows),
            now: SimInstant::START,
            step_index: 0,
            soc_floors: vec![Soc::EMPTY; banks],
            unserved_streak: vec![0; banks],
            offline_since: vec![None; nodes],
            downtime: vec![SimDuration::ZERO; nodes],
            unserved_energy: WattHours::ZERO,
            curtailed_energy: WattHours::ZERO,
            grid_charge_energy: WattHours::ZERO,
            arrivals_today: VecDeque::new(),
            pending: VecDeque::new(),
            clouds,
            weather_today,
            started_day: None,
            in_window: false,
            last_currents: vec![0.0; banks],
            last_voltages: vec![config.battery_spec.nominal_voltage().as_f64(); banks],
            last_solar: Watts::ZERO,
            last_outcomes: Vec::new(),
            obs,
            counters,
            aging_obs,
            stage_trackers,
            injector,
            degraded: vec![false; nodes],
            fallback: FallbackScheme::new(),
            fault_counters,
            tracer,
            health,
            flight,
            mode_switches: vec![0; banks],
            active_fault_spans: Vec::new(),
            degraded_spans: vec![SpanId::NONE; nodes],
            degraded_enter: vec![None; nodes],
            control_steps,
            solar_shares,
            scratch: StepScratch::default(),
            fleet,
            pool,
            exec_obs,
            config,
        })
    }

    /// Pre-ages every battery to the given damage (the paper's "old"
    /// battery stage).
    pub fn pre_age_batteries(&mut self, damage: f64) {
        for b in self.batteries.iter_mut() {
            b.pre_age(damage);
        }
        self.fleet.mark_all(DirtyReason::Battery);
    }

    /// Pre-ages a single battery bank — fault injection for the paper's
    /// single-point-of-failure scenario, where one "prone-to-wear-out"
    /// unit threatens the node's availability (§IV.B.1).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Battery`] if `bank` is out of range.
    pub fn pre_age_bank(&mut self, bank: usize, damage: f64) -> Result<(), SimError> {
        self.batteries.unit_mut(bank)?.pre_age(damage);
        for &m in &self.members[bank] {
            self.fleet.mark(m, DirtyReason::Battery);
        }
        Ok(())
    }

    /// Immutable access to the battery pack.
    pub fn batteries(&self) -> &BatteryPack {
        &self.batteries
    }

    /// Immutable access to the cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The controller-facing power table.
    pub fn power_table(&self) -> &PowerTable {
        &self.power_table
    }

    /// Current simulation time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// The observability context the engine records into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The aging-health monitor — the live per-node check state that
    /// `console watch` renders between step batches.
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// The incremental placement state: per-node score arrays and the
    /// dirty-reason masks recording which mutation seams have fired.
    /// Read-only observability for tests and diagnostics.
    pub fn fleet(&self) -> &FleetView {
        &self.fleet
    }

    /// The placement order the incremental fleet ranker produces for
    /// `spec` right now, after refreshing any dirty nodes. Sequential
    /// specs return their static order; `RoundRobin` peeks the cursor
    /// without advancing it; `Custom` falls back to ascending indices
    /// (the caller owns its own `placement_order`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the engine's node/bank bookkeeping is
    /// inconsistent with the substrates.
    pub fn placement_rank(
        &mut self,
        spec: PlacementSpec,
        kind: WorkloadKind,
    ) -> Result<Vec<usize>, SimError> {
        let n = self.config.nodes;
        self.refresh_fleet()?;
        let mode = match spec {
            PlacementSpec::Custom | PlacementSpec::FirstFit => return Ok((0..n).collect()),
            PlacementSpec::RoundRobin => {
                let start = self.fleet.rr_peek();
                return Ok((0..n).map(|i| (start + i) % n).collect());
            }
            PlacementSpec::WeightedAging { server_power } => {
                class_index(demand_class(kind, &server_power))
            }
            PlacementSpec::LifetimeNat => NAT_MODE,
        };
        self.fleet.ensure_mode(mode);
        Ok((0..n).map(|r| self.fleet.ranked_node(mode, r)).collect())
    }

    /// Runs the configured weather plan to completion under `policy` and
    /// returns the report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a step hits a broken engine invariant
    /// (e.g. a substrate rejects an index the engine derived itself).
    pub fn run<P: Policy>(self, policy: &mut P) -> Result<SimReport, SimError> {
        self.run_remaining(policy)
    }

    /// Total number of steps the configured run spans.
    pub fn total_steps(&self) -> u64 {
        self.config.days() as u64 * 86_400 / self.config.dt.as_secs()
    }

    /// Advances the simulation by up to `steps` timesteps, stopping
    /// early at the end of the configured run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as [`step`].
    ///
    /// [`step`]: Simulation::step
    pub fn run_steps<P: Policy>(&mut self, policy: &mut P, steps: u64) -> Result<(), SimError> {
        let remaining = self.total_steps().saturating_sub(self.step_index);
        for _ in 0..steps.min(remaining) {
            self.step(policy)?;
        }
        Ok(())
    }

    /// Runs whatever steps remain of the configured span and returns the
    /// report — the tail half of a snapshot-forked run (advance a shared
    /// prefix with [`run_steps`], clone, then finish each variant here).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as [`run`].
    ///
    /// [`run_steps`]: Simulation::run_steps
    /// [`run`]: Simulation::run
    pub fn run_remaining<P: Policy>(mut self, policy: &mut P) -> Result<SimReport, SimError> {
        let remaining = self.total_steps().saturating_sub(self.step_index);
        for _ in 0..remaining {
            self.step(policy)?;
        }
        self.into_report(policy.name())
    }

    /// Number of leading steps guaranteed independent of the policy: the
    /// steps strictly before the operating window first opens. Arrivals,
    /// placement and control are all gated on the window, so every
    /// policy produces bit-identical engine state across this prefix —
    /// it can be simulated once and forked per variant.
    pub fn policy_free_prefix_steps(&self) -> u64 {
        let day_start = u64::from(self.config.day_start.as_secs());
        day_start
            .div_ceil(self.config.dt.as_secs())
            .min(self.total_steps())
    }

    /// Replaces the fault plan mid-run, rebuilding the injector — the
    /// fork half of a snapshot-forked fault sweep: advance a clean
    /// prefix once, clone, and install each variant's plan.
    ///
    /// A freshly built injector is bit-identical to one that tracked the
    /// same plan from the start, *provided no fault window has opened
    /// yet*: activation is a pure function of simulated time, and the
    /// noise RNG only advances while a noise fault is active. Plans
    /// scheduling anything before the current instant are therefore
    /// rejected — forking past a fault's onset would skip its
    /// transition.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the plan references an
    /// unknown node or bank, or schedules a fault before [`now`].
    ///
    /// [`now`]: Simulation::now
    pub fn install_fault_plan(&mut self, plan: FaultPlan) -> Result<(), SimError> {
        plan.validate(self.config.nodes, self.banks)
            .map_err(|e| SimError::invalid_config("faults", e))?;
        if let Some(spec) = plan.faults().iter().find(|s| s.start < self.now) {
            return Err(SimError::invalid_config(
                "faults",
                format!(
                    "fault starting at {}s predates the fork point ({}s); \
                     fork before the earliest fault onset",
                    spec.start.as_secs(),
                    self.now.as_secs()
                ),
            ));
        }
        self.injector = FaultInjector::new(&plan, self.banks, self.config.seed);
        self.fault_counters = if plan.is_empty() {
            FaultCounters::inert()
        } else {
            FaultCounters::new(&self.obs)
        };
        self.config.faults = plan;
        Ok(())
    }

    /// Steps completed since the start of the run.
    pub fn step_index(&self) -> u64 {
        self.step_index
    }

    /// The configuration this simulation was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Captures a versioned checkpoint of the simulation's dynamic
    /// state, sufficient to [`restore`] a bit-identical continuation.
    ///
    /// Policy decision state is *not* included (the engine does not hold
    /// the policy); use [`snapshot_with_policy`] when a policy is in
    /// hand, or set `state.policy` on the returned snapshot.
    ///
    /// [`restore`]: Simulation::restore
    /// [`snapshot_with_policy`]: Simulation::snapshot_with_policy
    pub fn snapshot(&self) -> SimSnapshot {
        let nodes = self.config.nodes;
        let (clouds_rng, clouds_ar) = self.clouds.state();
        let (generator_rng, generator_next_id) = self.generator.state();
        let power_table = (0..nodes)
            .map(|n| {
                let log = self.power_table.node(n).expect("node in range");
                (
                    log.battery_rows().copied().collect(),
                    log.server_rows().copied().collect(),
                )
            })
            .collect();
        let state = SimState {
            step_index: self.step_index,
            now: self.now,
            weather_today: self.weather_today,
            started_day: self.started_day,
            in_window: self.in_window,
            soc_floors: self.soc_floors.iter().map(|s| s.value()).collect(),
            unserved_streak: self.unserved_streak.clone(),
            offline_since: self.offline_since.clone(),
            downtime: self.downtime.clone(),
            unserved_energy: self.unserved_energy,
            curtailed_energy: self.curtailed_energy,
            grid_charge_energy: self.grid_charge_energy,
            arrivals_today: self.arrivals_today.iter().copied().collect(),
            pending: self.pending.iter().map(Vm::capture).collect(),
            clouds_rng,
            clouds_ar,
            last_currents: self.last_currents.clone(),
            last_voltages: self.last_voltages.clone(),
            last_solar: self.last_solar,
            last_outcomes: self.last_outcomes.clone(),
            mode_switches: self.mode_switches.clone(),
            stage_last: self.stage_trackers.iter().map(StageTracker::last).collect(),
            degraded: self.degraded.clone(),
            fallback_rejected: self.fallback.rejected_last().to_vec(),
            rr_cursor: self.fleet.rr_cursor() as u64,
            generator_rng,
            generator_next_id,
            sensor_rngs: self.sensors.iter().map(BatterySensor::rng_state).collect(),
            injector: self.injector.capture_state(),
            events: self.events.iter().cloned().collect(),
            recorder_keep_every: self.recorder.stride(),
            recorder_pushes: self.recorder.pushes(),
            recorder_rows: self.recorder.rows().to_vec(),
            cluster: self.cluster.capture_state(),
            power_table,
            batteries: self.batteries.iter().map(|b| b.capture_state()).collect(),
            policy: None,
        };
        SimSnapshot {
            version: SNAPSHOT_VERSION,
            chemistry: self.config.battery_spec.chemistry(),
            config_hash: config_hash(&self.config),
            state,
        }
    }

    /// [`snapshot`] plus the policy's serialized decision state, so a
    /// resumed run replays the same future decisions.
    ///
    /// [`snapshot`]: Simulation::snapshot
    pub fn snapshot_with_policy<P: Policy + ?Sized>(&self, policy: &P) -> SimSnapshot {
        let mut snap = self.snapshot();
        snap.state.policy = Some(PolicyState {
            name: policy.name().to_string(),
            data: policy.save_state(),
        });
        snap
    }

    /// A position-independent hash of the dynamic state. Two simulations
    /// at the same step of the same seeded run hash equal — whether run
    /// straight through or restored from a checkpoint and re-stepped.
    pub fn state_hash(&self) -> u64 {
        self.snapshot().state_hash()
    }

    /// Rebuilds a simulation from `config` and overwrites its dynamic
    /// state from `snapshot`, with observation disabled.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] when the snapshot's version,
    /// chemistry or config hash do not match `config` — resuming under a
    /// drifted configuration would silently diverge, so it is refused —
    /// and [`SimError`] if the rebuilt substrates reject the state.
    pub fn restore(config: SimConfig, snapshot: &SimSnapshot) -> Result<Self, SimError> {
        Self::restore_with_obs(config, snapshot, Obs::disabled())
    }

    /// [`restore`] recording metrics into `obs`.
    ///
    /// Observability state (counters, spans, health monitor, flight
    /// recorder) is rebuilt empty: it never feeds back into simulated
    /// state, so the resumed run's *simulation* artifacts are
    /// bit-identical while obs artifacts cover only the resumed span.
    ///
    /// # Errors
    ///
    /// As [`restore`].
    ///
    /// [`restore`]: Simulation::restore
    pub fn restore_with_obs(
        config: SimConfig,
        snapshot: &SimSnapshot,
        obs: Obs,
    ) -> Result<Self, SimError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: snapshot.version,
                expected: SNAPSHOT_VERSION,
            }
            .into());
        }
        let chem = config.battery_spec.chemistry();
        if snapshot.chemistry != chem {
            return Err(SnapshotError::ChemistryMismatch {
                snapshot: snapshot.chemistry,
                config: chem,
            }
            .into());
        }
        let hash = config_hash(&config);
        if snapshot.config_hash != hash {
            return Err(SnapshotError::ConfigMismatch {
                snapshot: snapshot.config_hash,
                config: hash,
            }
            .into());
        }
        let mut sim = Self::with_obs(config, obs)?;
        sim.apply_state(&snapshot.state)?;
        Ok(sim)
    }

    /// Overwrites the dynamic state of a freshly built simulation.
    fn apply_state(&mut self, s: &SimState) -> Result<(), SimError> {
        let nodes = self.config.nodes;
        let banks = self.banks;
        let fits = s.soc_floors.len() == banks
            && s.unserved_streak.len() == banks
            && s.offline_since.len() == nodes
            && s.downtime.len() == nodes
            && s.last_currents.len() == banks
            && s.last_voltages.len() == banks
            && s.mode_switches.len() == banks
            && s.stage_last.len() == banks
            && s.degraded.len() == nodes
            && s.sensor_rngs.len() == banks
            && s.power_table.len() == nodes
            && s.batteries.len() == banks;
        if !fits {
            return Err(SnapshotError::StateMismatch {
                context: "per-node/per-bank vector lengths",
            }
            .into());
        }
        self.cluster.restore_state(&s.cluster)?;
        for (unit, st) in self.batteries.iter_mut().zip(&s.batteries) {
            unit.restore_state(st);
        }
        for (sensor, rng) in self.sensors.iter_mut().zip(&s.sensor_rngs) {
            *sensor = BatterySensor::restore(self.config.sensor_noise, *rng);
        }
        self.clouds = CloudProcess::restore(s.weather_today, s.clouds_rng, s.clouds_ar);
        self.generator = WorkloadGenerator::restore(s.generator_rng, s.generator_next_id);
        self.injector.restore_state(&s.injector);
        self.events = EventLog::new();
        for ev in &s.events {
            self.events.push(ev.at, ev.event);
        }
        self.recorder = Recorder::from_parts(
            s.recorder_rows.clone(),
            self.config.max_trace_rows,
            s.recorder_keep_every,
            s.recorder_pushes,
        );
        self.power_table = PowerTable::new(nodes);
        for (node, (battery, server)) in s.power_table.iter().enumerate() {
            for row in battery {
                self.power_table.record_battery(node, *row);
            }
            for row in server {
                self.power_table.record_server(node, *row);
            }
        }
        for (tracker, last) in self.stage_trackers.iter_mut().zip(&s.stage_last) {
            tracker.set_last(*last);
        }
        self.fallback = FallbackScheme::restore(s.fallback_rejected.clone());
        self.fleet.set_rr_cursor(s.rr_cursor as usize);
        self.now = s.now;
        self.step_index = s.step_index;
        self.weather_today = s.weather_today;
        self.started_day = s.started_day;
        self.in_window = s.in_window;
        self.soc_floors = s.soc_floors.iter().map(|&f| Soc::saturating(f)).collect();
        self.unserved_streak = s.unserved_streak.clone();
        self.offline_since = s.offline_since.clone();
        self.downtime = s.downtime.clone();
        self.unserved_energy = s.unserved_energy;
        self.curtailed_energy = s.curtailed_energy;
        self.grid_charge_energy = s.grid_charge_energy;
        self.arrivals_today = s.arrivals_today.iter().copied().collect();
        self.pending = s.pending.iter().cloned().map(Vm::restore).collect();
        self.last_currents = s.last_currents.clone();
        self.last_voltages = s.last_voltages.clone();
        self.last_solar = s.last_solar;
        self.last_outcomes = s.last_outcomes.clone();
        self.mode_switches = s.mode_switches.clone();
        self.degraded = s.degraded.clone();
        Ok(())
    }

    /// Runs the remaining steps, handing a policy-inclusive snapshot to
    /// `sink` every `every` steps (at interior step boundaries; the
    /// final boundary produces the returned report instead). `every` is
    /// clamped to at least 1.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] from stepping, or whatever `sink` returns.
    pub fn checkpoint_every<P, F>(
        mut self,
        policy: &mut P,
        every: u64,
        mut sink: F,
    ) -> Result<SimReport, SimError>
    where
        P: Policy,
        F: FnMut(&SimSnapshot) -> Result<(), SimError>,
    {
        let every = every.max(1);
        while self.step_index < self.total_steps() {
            let burst = every.min(self.total_steps() - self.step_index);
            self.run_steps(policy, burst)?;
            if self.step_index < self.total_steps() {
                sink(&self.snapshot_with_policy(policy))?;
            }
        }
        self.into_report(policy.name())
    }

    /// Advances the simulation one timestep.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a substrate rejects an engine-derived
    /// parameter — an invariant break, not a policy mistake (infeasible
    /// policy actions are rejected, logged and fed back, never fatal).
    pub fn step<P: Policy>(&mut self, policy: &mut P) -> Result<(), SimError> {
        // Lend the obs context to the step body instead of cloning it:
        // an `Obs` clone is an `Arc` refcount round-trip, which at tens
        // of thousands of steps per simulated day is measurable. The
        // swapped-in disabled context is a unit value; nothing inside
        // `step_inner` reads `self.obs` (the one user, `record_row`,
        // receives the lent handle explicitly).
        let obs = std::mem::replace(&mut self.obs, Obs::disabled());
        let result = self.step_inner(policy, &obs);
        self.obs = obs;
        result
    }

    fn step_inner<P: Policy>(&mut self, policy: &mut P, obs: &Obs) -> Result<(), SimError> {
        let dt = self.config.dt;
        let day = self.now.day();
        if self.started_day != Some(day) {
            self.start_day(day);
        }
        let tod = self.now.time_of_day();

        // Operating-window edges: power on at day start, checkpoint and
        // shut down at day end.
        let in_window = tod.is_between(self.config.day_start, self.config.day_end);
        if in_window && !self.in_window {
            self.cluster.power_on_all();
            for since in &mut self.offline_since {
                *since = None;
            }
            self.fleet.mark_all(DirtyReason::Power);
        } else if !in_window && self.in_window {
            self.cluster.power_off_all();
            self.fleet.mark_all(DirtyReason::Power);
        }
        self.in_window = in_window;

        // Fault-plan transitions and host enforcement. An empty plan
        // skips every fault hook, so fault-free runs stay bit-identical
        // to pre-fault builds.
        if !self.injector.is_idle() {
            self.process_faults()?;
        }

        // One boundary clock covers every per-step stage (placement,
        // solar, and route_power's charger/switcher/battery passes), and
        // only on sampled steps: per-step stage work is microseconds, so
        // timing one step in PROFILE_SAMPLE_STEPS gives representative
        // means while keeping profiler overhead well under the 1 µs/step
        // budget. Counters are never sampled — they stay exact.
        let mut clock = if self.step_index.is_multiple_of(PROFILE_SAMPLE_STEPS) {
            obs.stage_clock()
        } else {
            StageClock::inert()
        };

        // Workload arrivals. Policies with a declarative placement spec
        // place from the incremental fleet ranker (refreshed once per
        // batch — dirty nodes only); custom policies keep the legacy
        // path, where the system view is built lazily (most steps see no
        // arrival), shared across the batch, and placement refreshes
        // only the admitted node's entry per VM.
        if in_window {
            match policy.placement_spec() {
                PlacementSpec::Custom => {
                    let mut view: Option<SystemView> = None;
                    while let Some(arrival) = self.arrivals_today.front().copied() {
                        if arrival.at > tod {
                            break;
                        }
                        self.arrivals_today.pop_front();
                        let vm = self.generator.spawn(arrival.kind);
                        if view.is_none() {
                            view = Some(self.build_view()?);
                        }
                        let view = view.as_mut().expect("view built above");
                        if let Some(vm) = self.place_vm(vm, arrival.kind, policy, view, obs)? {
                            self.pending.push_back(vm);
                        }
                    }
                }
                spec => {
                    let mut refreshed = false;
                    while let Some(arrival) = self.arrivals_today.front().copied() {
                        if arrival.at > tod {
                            break;
                        }
                        self.arrivals_today.pop_front();
                        let vm = self.generator.spawn(arrival.kind);
                        if !refreshed {
                            let _t = obs.time(Stage::PlacementRank);
                            self.refresh_fleet()?;
                            refreshed = true;
                        }
                        if let Some(vm) = self.place_vm_fast(vm, arrival.kind, spec)? {
                            self.pending.push_back(vm);
                        }
                    }
                }
            }
            clock.lap(Stage::Placement);
        }

        // Solar generation for this step (also exposed to the policy).
        let solar_total = {
            let attenuation = self.clouds.step();
            // ×1.0 when no PV fault is active — an exact identity, so
            // the clean path is untouched.
            self.array.output(tod, attenuation) * self.injector.solar_scale()
        };
        clock.lap(Stage::Solar);
        self.last_solar = solar_total;

        // Policy control interval: hand the policy the view plus the
        // previous interval's action outcomes, apply what it returns,
        // remember the new outcomes for next time.
        if in_window && self.step_index.is_multiple_of(self.control_steps) {
            // Degradation is re-evaluated at the control cadence, right
            // before the policy observes the system, so the view's
            // `degraded` flags are current when decisions are made.
            if !self.injector.is_idle() {
                self.update_degradation();
            }
            let control_span =
                self.tracer
                    .start("policy.control", SpanId::NONE, self.now.as_secs());
            // View preparation (reap + build) is engine work, not the
            // policy's decision pass — it stays outside the
            // `policy_control` timer so the stage row reports pure
            // control decision time.
            for host in self.cluster.hosts_mut() {
                host.reap_completed();
            }
            let view = self.build_view()?;
            let actions = {
                let _t = obs.time(Stage::PolicyControl);
                let last = std::mem::take(&mut self.last_outcomes);
                let ctx = ControlCtx {
                    step_index: self.step_index,
                    now: self.now,
                    last_outcomes: &last,
                };
                policy.control(&view, &ctx)
            };
            self.counters.control_intervals.inc();
            self.counters
                .actions_per_interval
                .observe(actions.len() as u64);
            self.last_outcomes = self.apply_actions(actions);
            if !control_span.is_none() {
                self.tracer.attr_str(control_span, "policy", policy.name());
                self.tracer
                    .attr_u64(control_span, "actions", self.last_outcomes.len() as u64);
                let rejected = self
                    .last_outcomes
                    .iter()
                    .filter(|o| o.is_rejected())
                    .count();
                self.tracer
                    .attr_u64(control_span, "rejected", rejected as u64);
                self.tracer.end(control_span, self.now.as_secs());
            }
            if !self.injector.is_idle() {
                self.run_fallback()?;
            }
            if self.health.is_enabled() {
                self.observe_health()?;
            }
            self.retry_pending(policy, obs)?;
            // The control interval is timed by its own RAII guards; drop
            // it from the boundary clock so it is not charged to the
            // charger pass.
            clock.skip();
        }

        // Per-node power routing: sharded across the worker pool when one
        // is configured and there is more than one bank to shard (banks
        // are the independence boundary), the plain sequential pass
        // otherwise. Both paths produce bit-identical state; threads=1 is
        // the reference.
        match self.pool.clone() {
            Some(pool) if self.banks > 1 => {
                self.route_power_sharded(&pool, solar_total, tod, dt, &mut clock)?;
            }
            _ => self.route_power(solar_total, tod, dt, &mut clock)?,
        }

        // Node restart checks.
        if in_window {
            self.try_restarts(solar_total)?;
        }

        // Advance the cluster (migrations + VM execution).
        self.cluster.step(self.now, tod, dt);

        // Downtime accounting.
        if in_window {
            for i in 0..self.config.nodes {
                if !self.cluster.host(i)?.is_online() {
                    self.downtime[i] += dt;
                }
            }
        }

        // Trace recording.
        if self
            .step_index
            .is_multiple_of(self.config.sample_every as u64)
        {
            let _t = obs.time(Stage::Recorder);
            self.record_row(solar_total, tod, obs)?;
        }

        self.now += dt;
        self.step_index += 1;
        Ok(())
    }

    /// Appends `event` to the log and mirrors it into the flight ring,
    /// dumping the ring on post-mortem triggers (degraded-mode entry,
    /// server shutdown). An associated fn over disjoint fields so call
    /// sites may hold other `&self` borrows.
    fn log_event(events: &mut EventLog, flight: &mut FlightRecorder, at: SimInstant, event: Event) {
        if flight.is_enabled() {
            flight.push(TimedEvent { at, event }.to_json());
            match event {
                Event::DegradedMode { active: true, .. } => {
                    flight.dump("degraded_mode", at.as_secs());
                }
                Event::ServerShutdown { .. } => flight.dump("server_shutdown", at.as_secs()),
                _ => {}
            }
        }
        events.push(at, event);
    }

    fn start_day(&mut self, day: u64) {
        self.started_day = Some(day);
        // Jobs still queued from yesterday are reported once and carried
        // over.
        for _ in 0..self.pending.len() {
            self.counters.placements_failed.inc();
            Self::log_event(
                &mut self.events,
                &mut self.flight,
                self.now,
                Event::PlacementFailed {
                    node: self.config.nodes,
                },
            );
        }
        let plan_len = self.config.weather_plan.len() as u64;
        self.weather_today = self.config.weather_plan[(day % plan_len) as usize];
        self.clouds = CloudProcess::new(self.weather_today, self.config.seed ^ (day + 1));
        let services = if day == 0 { self.config.services } else { 0 };
        self.arrivals_today = self
            .generator
            .daily_plan(services, self.config.batch_jobs_per_day)
            .into();
        // Daily metric window reset (the controller's observation period).
        for b in self.batteries.iter_mut() {
            b.telemetry_mut().reset_window();
        }
    }

    /// Advances the fault plan to `now`: logs injection/clear events,
    /// keeps the active-fault gauge current, and enforces host-failure
    /// faults by powering the afflicted servers off.
    fn process_faults(&mut self) -> Result<(), SimError> {
        for t in self.injector.begin_step(self.now) {
            // Either edge of a fault window can change a node's score
            // inputs (headroom, telemetry, admission), so both dirty the
            // affected nodes.
            match t.kind {
                FaultKind::HostFailure { node } => {
                    if node < self.config.nodes {
                        self.fleet.mark(node, DirtyReason::Fault);
                    }
                }
                kind => match kind.target() {
                    Some(bank) if bank < self.members.len() => {
                        for &m in &self.members[bank] {
                            self.fleet.mark(m, DirtyReason::Fault);
                        }
                    }
                    Some(_) => {}
                    None => self.fleet.mark_all(DirtyReason::Fault),
                },
            }
            if t.entered {
                self.fault_counters.injected.inc();
                // Root span of the causal chain: degraded-mode and
                // fallback spans downstream parent onto it.
                let span = self.tracer.start("fault", SpanId::NONE, self.now.as_secs());
                if !span.is_none() {
                    self.tracer.attr_str(span, "kind", t.kind.name());
                    if let Some(target) = t.kind.target() {
                        self.tracer.attr_u64(span, "target", target as u64);
                    }
                    if let Some(param) = t.kind.param() {
                        self.tracer.attr_f64(span, "param", param);
                    }
                    self.active_fault_spans.push((t.kind, span));
                }
                Self::log_event(
                    &mut self.events,
                    &mut self.flight,
                    self.now,
                    Event::FaultInjected { fault: t.kind },
                );
            } else {
                self.fault_counters.cleared.inc();
                if let Some(pos) = self
                    .active_fault_spans
                    .iter()
                    .position(|&(kind, _)| kind == t.kind)
                {
                    let (_, span) = self.active_fault_spans.remove(pos);
                    self.tracer.end(span, self.now.as_secs());
                }
                Self::log_event(
                    &mut self.events,
                    &mut self.flight,
                    self.now,
                    Event::FaultCleared { fault: t.kind },
                );
            }
        }
        self.fault_counters
            .active
            .set(self.injector.active_count() as f64);
        // A host-failure fault pins the server down for its whole
        // window; try_restarts refuses to revive it while it holds.
        for i in 0..self.config.nodes {
            if self.injector.host_down(i) && self.cluster.host(i)?.is_online() {
                self.cluster.host_mut(i)?.power_off();
                self.offline_since[i] = Some(self.now);
                self.fleet.mark(i, DirtyReason::Power);
                self.counters.shutdowns.inc();
                Self::log_event(
                    &mut self.events,
                    &mut self.flight,
                    self.now,
                    Event::ServerShutdown { node: i },
                );
            }
        }
        Ok(())
    }

    /// Re-evaluates per-node telemetry staleness against the configured
    /// bound, logging [`Event::DegradedMode`] transitions and keeping
    /// the degradation gauges current. A node with no sample yet is
    /// fresh: degradation means *losing* telemetry, not awaiting it.
    fn update_degradation(&mut self) {
        let limit = self.config.faults.staleness_limit();
        for i in 0..self.config.nodes {
            let stale = match self.power_table.node(i).and_then(|n| n.latest_battery()) {
                Some(sample) => self.now.saturating_since(sample.at) > limit,
                None => false,
            };
            if stale != self.degraded[i] {
                self.degraded[i] = stale;
                self.fleet.mark(i, DirtyReason::Degraded);
                if stale {
                    self.open_degraded_span(i);
                } else {
                    self.close_degraded_span(i);
                }
                Self::log_event(
                    &mut self.events,
                    &mut self.flight,
                    self.now,
                    Event::DegradedMode {
                        node: i,
                        active: stale,
                    },
                );
            }
        }
        let count = self.degraded.iter().filter(|&&d| d).count();
        self.fault_counters.degraded_nodes.set(count as f64);
        self.fault_counters.degraded_intervals.add(count as u64);
    }

    /// Opens node `i`'s degraded-mode span, parented to the active fault
    /// most plausibly responsible for its stale telemetry, and snapshots
    /// the battery's aging breakdown for the exit delta.
    fn open_degraded_span(&mut self, i: usize) {
        let bank = self.bank_of[i];
        let span = self.tracer.start(
            "degraded",
            self.telemetry_fault_span(bank),
            self.now.as_secs(),
        );
        if span.is_none() {
            return;
        }
        self.tracer.attr_u64(span, "node", i as u64);
        self.degraded_spans[i] = span;
        self.degraded_enter[i] = self
            .batteries
            .unit(bank)
            .ok()
            .map(|b| (self.now, b.aging_breakdown()));
    }

    /// Closes node `i`'s degraded-mode span, first attaching an
    /// `aging.delta` child quantifying per-mechanism damage accrued
    /// while the node ran blind.
    fn close_degraded_span(&mut self, i: usize) {
        let span = std::mem::replace(&mut self.degraded_spans[i], SpanId::NONE);
        if span.is_none() {
            return;
        }
        let now_s = self.now.as_secs();
        if let Some((since, before)) = self.degraded_enter[i].take() {
            if let Ok(battery) = self.batteries.unit(self.bank_of[i]) {
                let diff = battery.aging_breakdown().delta(&before);
                let delta = self.tracer.start("aging.delta", span, now_s);
                self.tracer.attr_u64(delta, "node", i as u64);
                self.tracer
                    .attr_u64(delta, "degraded_s", now_s.saturating_sub(since.as_secs()));
                // One attribute per mechanism, in the chemistry's
                // breakdown order (the lead-acid order matches the
                // pre-trait attribute order byte-for-byte).
                for (label, value) in diff.iter() {
                    self.tracer.attr_f64(delta, label, value);
                }
                self.tracer.end(delta, now_s);
            }
        }
        self.tracer.end(span, now_s);
    }

    /// The open fault span most plausibly responsible for stale
    /// telemetry on `bank`: a sensor dropout or stuck-at fault on that
    /// bank if one is active, else any active fault targeting the bank.
    fn telemetry_fault_span(&self, bank: usize) -> SpanId {
        let mut fallback = SpanId::NONE;
        for &(kind, span) in &self.active_fault_spans {
            match kind {
                FaultKind::SensorDropout { bank: b } | FaultKind::SensorStuckAt { bank: b }
                    if b == bank =>
                {
                    return span;
                }
                _ => {
                    if kind.target() == Some(bank) && fallback.is_none() {
                        fallback = span;
                    }
                }
            }
        }
        fallback
    }

    /// Issues the conservative fallback actions for degraded nodes
    /// through the normal actuation path. The outcomes are logged and
    /// fed back to the scheme (so it never repeats a fresh rejection)
    /// but not to the policy: they are the engine's own corrections,
    /// not the policy's.
    fn run_fallback(&mut self) -> Result<(), SimError> {
        let inputs = (0..self.config.nodes)
            .map(|i| {
                Ok(FallbackInput {
                    node: i,
                    degraded: self.degraded[i],
                    soc_floor: self.soc_floors[self.bank_of[i]],
                    dvfs: self.cluster.host(i)?.dvfs(),
                })
            })
            .collect::<Result<Vec<_>, SimError>>()?;
        let actions = self.fallback.plan(&inputs);
        self.fault_counters
            .fallback_actions
            .add(actions.len() as u64);
        let outcomes = self.apply_actions(actions);
        if self.tracer.is_enabled() {
            self.trace_fallback_outcomes(&outcomes);
        }
        self.fallback.record_outcomes(&outcomes);
        Ok(())
    }

    /// Emits one `fallback.action` span per outcome, parented to the
    /// target node's open degraded-mode span — completing the causal
    /// chain from fault injection to conservative actuation.
    fn trace_fallback_outcomes(&mut self, outcomes: &[ActionOutcome]) {
        let now_s = self.now.as_secs();
        for outcome in outcomes {
            let node = match outcome.action {
                Action::SetDvfs { node, .. } | Action::SetSocFloor { node, .. } => Some(node),
                Action::Migrate { .. } => None,
            };
            let parent = node
                .and_then(|n| self.degraded_spans.get(n).copied())
                .unwrap_or(SpanId::NONE);
            let span = self.tracer.start("fallback.action", parent, now_s);
            if let Some(node) = node {
                self.tracer.attr_u64(span, "node", node as u64);
            }
            match outcome.action {
                Action::SetDvfs { level, .. } => {
                    self.tracer.attr_str(span, "action", "set_dvfs");
                    self.tracer.attr_str(span, "level", level.name());
                }
                Action::Migrate { .. } => {
                    self.tracer.attr_str(span, "action", "migrate");
                }
                Action::SetSocFloor { floor, .. } => {
                    self.tracer.attr_str(span, "action", "set_soc_floor");
                    self.tracer.attr_f64(span, "floor", floor.value());
                }
            }
            match outcome.result {
                ActionResult::Applied => self.tracer.attr_str(span, "outcome", "applied"),
                ActionResult::Rejected(reason) => {
                    self.tracer.attr_str(span, "outcome", "rejected");
                    self.tracer.attr_str(span, "reason", reason.name());
                }
            }
            self.tracer.end(span, now_s);
        }
    }

    /// Attempts to place a VM; returns it back if no node can take it.
    ///
    /// `view` is a current [`SystemView`] owned by the caller. Placement
    /// loops admit many VMs per step, and between two consecutive
    /// attempts the only simulated state that changes is the admitted
    /// host — so on success this refreshes just that node's entry, which
    /// is bit-identical to rebuilding the whole view from scratch (every
    /// other entry is derived from unchanged state, and view construction
    /// draws no randomness).
    fn place_vm<P: Policy>(
        &mut self,
        vm: Vm,
        kind: WorkloadKind,
        policy: &mut P,
        view: &mut SystemView,
        obs: &Obs,
    ) -> Result<Option<Vm>, SimError> {
        let order = {
            let _t = obs.time(Stage::PlacementRank);
            policy.placement_order(kind, view)
        };
        let request = kind.resource_request();
        for node in order {
            if node >= self.config.nodes {
                continue;
            }
            let host = self.cluster.host_mut(node)?;
            if host.is_online() && host.fits(request) {
                host.admit(vm)?;
                view.nodes[node] = self.node_view(node, view.tod)?;
                return Ok(None);
            }
        }
        Ok(Some(vm))
    }

    /// Places a VM through the incremental fleet ranker — no
    /// [`SystemView`] is built. The admission walk consults the live
    /// cluster (`is_online` + `fits`), so only the *ranking* is cached;
    /// any admission since the last refresh is still observed.
    fn place_vm_fast(
        &mut self,
        vm: Vm,
        kind: WorkloadKind,
        spec: PlacementSpec,
    ) -> Result<Option<Vm>, SimError> {
        let n = self.config.nodes;
        let (start, mode) = match spec {
            PlacementSpec::Custom => unreachable!("custom specs use place_vm"),
            PlacementSpec::FirstFit => (0, None),
            PlacementSpec::RoundRobin => (self.fleet.rr_next(), None),
            PlacementSpec::WeightedAging { server_power } => {
                // Untimed: after the caller's refresh this is a no-op
                // check; per-VM timer guards here would cost more clock
                // reads than the work they measure.
                let mode = class_index(demand_class(kind, &server_power));
                self.fleet.ensure_mode(mode);
                (0, Some(mode))
            }
            PlacementSpec::LifetimeNat => {
                self.fleet.ensure_mode(NAT_MODE);
                (0, Some(NAT_MODE))
            }
        };
        let request = kind.resource_request();
        for r in 0..n {
            let node = match mode {
                None => (start + r) % n,
                Some(m) => self.fleet.ranked_node(m, r),
            };
            let host = self.cluster.host_mut(node)?;
            if host.is_online() && host.fits(request) {
                host.admit(vm)?;
                return Ok(None);
            }
        }
        Ok(Some(vm))
    }

    /// Re-scores exactly the dirty nodes and folds their keys back into
    /// the ranked orders. Bank-level quantities (aging metrics, SoC,
    /// headroom) are computed once per dirty bank per pass, then
    /// scattered to member nodes.
    fn refresh_fleet(&mut self) -> Result<(), SimError> {
        if self.fleet.is_clean() {
            return Ok(());
        }
        let dirty = self.fleet.take_dirty();
        if let Some(pool) = self.pool.clone() {
            if dirty.len() >= PAR_REFRESH_MIN_NODES {
                return self.refresh_fleet_sharded(&pool, dirty);
            }
        }
        for &node in &dirty {
            let i = node as usize;
            let bank = self.bank_of[i];
            if self.fleet.bank_needs_refresh(bank) {
                let ratings = self.ratings(i)?;
                let headroom = self.floored_available(bank, self.config.dt)?;
                let battery = self.batteries.unit(bank)?;
                let metrics =
                    AgingMetrics::from_accumulator(battery.telemetry().lifetime(), &ratings);
                self.fleet.update_bank(
                    bank,
                    &metrics,
                    battery.soc().value(),
                    headroom.as_f64(),
                    battery.total_damage(),
                );
            }
            let online = self.cluster.host(i)?.is_online();
            let degraded = self.degraded[i];
            self.fleet.update_node(i, degraded, online);
        }
        self.fleet.commit_refresh(dirty);
        Ok(())
    }

    /// The sharded refresh pass: the bank-level scoring (ratings, floored
    /// availability, aging metrics — the expensive half) fans out over
    /// the pool; the scatter into [`FleetView`] stays sequential and
    /// identical to [`Simulation::refresh_fleet`].
    ///
    /// The dedup below reproduces [`FleetView::bank_needs_refresh`]'s
    /// first-seen-per-pass semantics exactly, so the precomputed scores
    /// arrive in the same order the scatter loop asks for them.
    fn refresh_fleet_sharded(&mut self, pool: &ExecPool, dirty: Vec<u32>) -> Result<(), SimError> {
        struct BankScore {
            bank: usize,
            metrics: AgingMetrics,
            soc: f64,
            headroom: f64,
            damage: f64,
        }
        let mut seen = vec![false; self.banks];
        let mut dirty_banks: Vec<usize> = Vec::new();
        for &node in &dirty {
            let bank = self.bank_of[node as usize];
            if !seen[bank] {
                seen[bank] = true;
                dirty_banks.push(bank);
            }
        }
        let ranges = shard_ranges(dirty_banks.len(), pool.threads());
        let dt = self.config.dt;
        let dirty_banks_ref = &dirty_banks;
        let chunks: Vec<Result<Vec<BankScore>, SimError>> = pool.run(ranges.len(), |s| {
            ranges[s]
                .clone()
                .map(|idx| {
                    let bank = dirty_banks_ref[idx];
                    let node = self.members[bank][0];
                    let ratings = self.ratings(node)?;
                    let headroom = self.floored_available(bank, dt)?;
                    let battery = self.batteries.unit(bank)?;
                    Ok(BankScore {
                        bank,
                        metrics: AgingMetrics::from_accumulator(
                            battery.telemetry().lifetime(),
                            &ratings,
                        ),
                        soc: battery.soc().value(),
                        headroom: headroom.as_f64(),
                        damage: battery.total_damage(),
                    })
                })
                .collect()
        });
        if let Some(exec) = &self.exec_obs {
            exec.merge_wait_fleet_refresh
                .add(pool.last_caller_wait_ns());
        }
        let mut scores = Vec::with_capacity(dirty_banks.len());
        for chunk in chunks {
            scores.extend(chunk?);
        }
        let mut next = scores.into_iter();
        for &node in &dirty {
            let i = node as usize;
            let bank = self.bank_of[i];
            if self.fleet.bank_needs_refresh(bank) {
                let score = next
                    .next()
                    .filter(|s| s.bank == bank)
                    .ok_or_else(|| SimError::invalid_config("threads", "shard score order"))?;
                self.fleet.update_bank(
                    bank,
                    &score.metrics,
                    score.soc,
                    score.headroom,
                    score.damage,
                );
            }
            let online = self.cluster.host(i)?.is_online();
            let degraded = self.degraded[i];
            self.fleet.update_node(i, degraded, online);
        }
        self.fleet.commit_refresh(dirty);
        Ok(())
    }

    /// Retries queued jobs in arrival order.
    fn retry_pending<P: Policy>(&mut self, policy: &mut P, obs: &Obs) -> Result<(), SimError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let spec = policy.placement_spec();
        if spec == PlacementSpec::Custom {
            let _t = obs.time(Stage::Placement);
            let mut view = self.build_view()?;
            let mut still_pending = VecDeque::with_capacity(self.pending.len());
            while let Some(vm) = self.pending.pop_front() {
                let kind = vm.kind();
                if let Some(vm) = self.place_vm(vm, kind, policy, &mut view, obs)? {
                    still_pending.push_back(vm);
                }
            }
            self.pending = still_pending;
            return Ok(());
        }
        {
            let _t = obs.time(Stage::PlacementRank);
            self.refresh_fleet()?;
        }
        let _t = obs.time(Stage::Placement);
        let mut still_pending = VecDeque::with_capacity(self.pending.len());
        while let Some(vm) = self.pending.pop_front() {
            let kind = vm.kind();
            if let Some(vm) = self.place_vm_fast(vm, kind, spec)? {
                still_pending.push_back(vm);
            }
        }
        self.pending = still_pending;
        Ok(())
    }

    /// Processes each requested action through the typed actuation path:
    /// applies it or rejects it with a reason, logs the outcome, and
    /// returns the outcomes for next interval's [`ControlCtx`].
    fn apply_actions(&mut self, actions: Vec<Action>) -> Vec<ActionOutcome> {
        let mut outcomes = Vec::with_capacity(actions.len());
        for action in actions {
            let result = match action {
                Action::SetDvfs { node, level } => match self.cluster.host_mut(node) {
                    Ok(host) => {
                        if host.dvfs() != level {
                            host.set_dvfs(level);
                            Self::log_event(
                                &mut self.events,
                                &mut self.flight,
                                self.now,
                                Event::DvfsChanged { node, level },
                            );
                        }
                        self.fleet.mark(node, DirtyReason::Action);
                        ActionResult::Applied
                    }
                    Err(_) => ActionResult::Rejected(RejectReason::UnknownNode),
                },
                Action::Migrate { .. } if self.injector.migrations_blocked() => {
                    ActionResult::Rejected(RejectReason::FaultInjected)
                }
                Action::Migrate { vm, target } => {
                    let from = self.cluster.locate(vm).map(|s| s.0);
                    match self.cluster.begin_migration(vm, ServerId(target), self.now) {
                        Ok(()) => {
                            self.counters.migrations_started.inc();
                            Self::log_event(
                                &mut self.events,
                                &mut self.flight,
                                self.now,
                                Event::MigrationStarted {
                                    vm,
                                    from: from.unwrap_or(usize::MAX),
                                    to: target,
                                },
                            );
                            if let Some(from) = from {
                                self.fleet.mark(from, DirtyReason::Action);
                            }
                            self.fleet.mark(target, DirtyReason::Action);
                            ActionResult::Applied
                        }
                        Err(e) => ActionResult::Rejected(RejectReason::from_server_error(&e)),
                    }
                }
                Action::SetSocFloor { node, floor } => {
                    if node < self.bank_of.len() {
                        let bank = self.bank_of[node];
                        if self.soc_floors[bank] != floor {
                            self.soc_floors[bank] = floor;
                            Self::log_event(
                                &mut self.events,
                                &mut self.flight,
                                self.now,
                                Event::SocFloorChanged { node, floor },
                            );
                        }
                        for &m in &self.members[bank] {
                            self.fleet.mark(m, DirtyReason::Action);
                        }
                        ActionResult::Applied
                    } else {
                        ActionResult::Rejected(RejectReason::UnknownNode)
                    }
                }
            };
            match result {
                ActionResult::Applied => self.counters.actions_applied.inc(),
                ActionResult::Rejected(_) => self.counters.actions_rejected.inc(),
            }
            let outcome = ActionOutcome { action, result };
            Self::log_event(
                &mut self.events,
                &mut self.flight,
                self.now,
                Event::Action { outcome },
            );
            outcomes.push(outcome);
        }
        outcomes
    }

    /// Battery terminal power available without crossing the bank's SoC
    /// floor within one step.
    fn floored_available(&self, bank: usize, dt: SimDuration) -> Result<Watts, SimError> {
        if self.injector.bank(bank).open_circuit {
            return Ok(Watts::ZERO);
        }
        let battery = self.batteries.unit(bank)?;
        let floor = self.soc_floors[bank];
        let headroom = battery.soc().value() - floor.value();
        if headroom <= 0.0 {
            return Ok(Watts::ZERO);
        }
        let energy_wh = headroom
            * battery.effective_capacity().as_f64()
            * battery.open_circuit_voltage().as_f64();
        let cap = Watts::new(energy_wh / dt.as_hours());
        Ok(battery.available_discharge_power().min(cap))
    }

    /// Observes bank `b`'s charge stage, counting mode switches (input
    /// to the health monitor's thrash check) and emitting a
    /// `charger.mode` span per transition.
    fn observe_charge_stage(&mut self, b: usize, soc: Soc) {
        let stage = self.chargers[b].stage(soc);
        let prev = self.stage_trackers[b].last();
        self.stage_trackers[b].observe(stage);
        if let Some(prev) = prev {
            if prev != stage {
                self.mode_switches[b] += 1;
                for &m in &self.members[b] {
                    self.fleet.mark(m, DirtyReason::ModeSwitch);
                }
                let span = self
                    .tracer
                    .start("charger.mode", SpanId::NONE, self.now.as_secs());
                if !span.is_none() {
                    self.tracer.attr_u64(span, "bank", b as u64);
                    self.tracer.attr_str(span, "from", prev.name());
                    self.tracer.attr_str(span, "to", stage.name());
                    self.tracer.end(span, self.now.as_secs());
                }
            }
        }
    }

    /// Feeds the health monitor one sample per node and evaluates the
    /// checks, mirroring fresh transitions into the flight ring. Called
    /// at the control cadence, only when the monitor is enabled.
    fn observe_health(&mut self) -> Result<(), SimError> {
        for i in 0..self.config.nodes {
            let bank = self.bank_of[i];
            let battery = self.batteries.unit(bank)?;
            self.health.push_sample(NodeHealthSample {
                node: i,
                soc: battery.soc().value(),
                soc_floor: self.soc_floors[bank].value(),
                damage: battery.total_damage(),
                degraded: self.degraded[i],
                charger_mode_switches: self.mode_switches[bank],
                online: self.cluster.host(i)?.is_online(),
            });
        }
        let before = self.health.events_len();
        self.health.evaluate(self.now.as_secs());
        if self.flight.is_enabled() {
            for idx in before..self.health.events_len() {
                let line = self.health.events()[idx].to_json();
                self.flight.push(line);
            }
        }
        Ok(())
    }

    fn route_power(
        &mut self,
        solar_total: Watts,
        tod: TimeOfDay,
        dt: SimDuration,
        clock: &mut StageClock<'_>,
    ) -> Result<(), SimError> {
        let n = self.config.nodes;
        // Outside the operating window the prototype's power switcher
        // recharges batteries from the utility line ("switch the utility
        // or renewable power to charge batteries", §V.A), so every day
        // starts from full charge and batteries never sulphate at low
        // SoC overnight.
        // Stage timers wrap whole per-stage passes (not per-bank work):
        // two clock reads per stage per step keeps profiler overhead
        // well under the 1 µs/step budget even on the fastest schemes.
        if !self.in_window {
            self.scratch.ops.clear();
            for b in 0..self.banks {
                let soc = self.batteries.unit(b)?.soc();
                self.observe_charge_stage(b, soc);
                let faults = self.injector.bank(b);
                let op = if faults.charger_failed || faults.open_circuit {
                    BatteryOp::Idle
                } else {
                    // A mode-stuck charger is latched in float trickle:
                    // its budget is the float-stage acceptance.
                    let budget = if faults.charger_stuck {
                        self.chargers[b].acceptance(Soc::FULL)
                    } else {
                        self.chargers[b].max_power()
                    };
                    let p = self.chargers[b].charge_power(soc, budget);
                    if p.as_f64() > 0.0 {
                        BatteryOp::Charge(p)
                    } else {
                        BatteryOp::Idle
                    }
                };
                self.scratch.ops.push(op);
            }
            clock.lap(Stage::Charger);
            for b in 0..self.banks {
                let op = self.scratch.ops[b];
                let result =
                    self.batteries
                        .unit_mut(b)?
                        .try_step(op, self.config.ambient, self.now, dt)?;
                self.grid_charge_energy += result.accepted * dt;
                self.last_currents[b] = result.current.as_f64();
                self.last_voltages[b] = result.terminal_voltage.as_f64();
                let battery = self.batteries.unit(b)?;
                let fresh = self.sensors[b].sample(
                    battery,
                    Volts::new(self.last_voltages[b]),
                    result.current,
                    self.now,
                );
                // The injector's clean path is the identity and draws no
                // randomness; under sensor faults the row is perturbed
                // or (dropout) withheld entirely.
                if let Some(sample) = self.injector.observe_sample(b, fresh, self.now) {
                    for &node in &self.members[b] {
                        self.power_table.record_battery(node, sample);
                    }
                }
            }
            // Every bank stepped: SoC, headroom, and aging metrics all
            // moved, so the whole fleet re-scores before the next
            // placement.
            self.fleet.mark_all(DirtyReason::Battery);
            clock.lap(Stage::BatteryStep);
            return Ok(());
        }
        self.scratch.demands.clear();
        for i in 0..n {
            let p = self.cluster.host(i)?.power(tod);
            self.scratch.demands.push(p);
        }

        // Every bank hangs off its share of the PV feed proportional to
        // the servers it backs (per-server integration: one node, one
        // bank; shared pools: a rack's worth). The bank's surplus charges
        // its own battery, so load placement really decides which battery
        // suffers — the usage imbalance BAAT-h and BAAT exist to hide.
        // Banks are independent within a step (demands are snapshotted
        // above; acceptance and availability read only that bank's
        // pre-step state), so the pipeline runs as stage-major passes.
        self.scratch.socs_acceptances.clear();
        for b in 0..self.banks {
            let soc = self.batteries.unit(b)?.soc();
            self.observe_charge_stage(b, soc);
            let faults = self.injector.bank(b);
            // The switcher sees the *effective* acceptance, so a
            // failed charger's surplus is curtailed, not lost to an
            // inconsistent charge pass below.
            let acceptance = if faults.charger_failed || faults.open_circuit {
                Watts::ZERO
            } else if faults.charger_stuck {
                self.chargers[b].acceptance(Soc::FULL)
            } else {
                self.chargers[b].acceptance(soc)
            };
            self.scratch.socs_acceptances.push((soc, acceptance));
        }
        clock.lap(Stage::Charger);
        self.scratch.routings.clear();
        self.scratch.bank_demands.clear();
        for b in 0..self.banks {
            let demand: Watts = self.members[b]
                .iter()
                .map(|&m| self.scratch.demands[m])
                .sum();
            let solar_i = solar_total * self.solar_shares[b];
            let available = self.floored_available(b, dt)?;
            let routing = self.switcher.route(
                demand,
                solar_i,
                available,
                self.scratch.socs_acceptances[b].1,
            );
            self.scratch.bank_demands.push(demand);
            self.scratch.routings.push(routing);
        }
        clock.lap(Stage::Switcher);

        for b in 0..self.banks {
            let member_nodes = &self.members[b];
            let demand = self.scratch.bank_demands[b];
            let soc = self.scratch.socs_acceptances[b].0;
            let routing = self.scratch.routings[b];

            // Apply the battery operation. An open-circuit string can
            // neither charge nor discharge (the switcher already saw
            // zero availability and zero acceptance).
            let op = if self.injector.bank(b).open_circuit {
                BatteryOp::Idle
            } else if routing.battery_to_load.as_f64() > 0.0 {
                BatteryOp::Discharge(routing.battery_to_load)
            } else {
                let p = self.chargers[b].charge_power(soc, routing.surplus_to_charger);
                if p.as_f64() > 0.0 {
                    BatteryOp::Charge(p)
                } else {
                    BatteryOp::Idle
                }
            };
            let result =
                self.batteries
                    .unit_mut(b)?
                    .try_step(op, self.config.ambient, self.now, dt)?;
            if result.cutoff {
                self.counters.battery_cutoffs.inc();
                Self::log_event(
                    &mut self.events,
                    &mut self.flight,
                    self.now,
                    Event::BatteryCutoff {
                        node: member_nodes[0],
                    },
                );
            }
            self.last_currents[b] = result.current.as_f64();
            self.last_voltages[b] = result.terminal_voltage.as_f64();

            // Accounting.
            self.unserved_energy += routing.unserved * dt;
            self.curtailed_energy += routing.curtailed * dt;

            // Sensor row into the power table (every member node sees its
            // bank's telemetry, like rack members sharing a UPS monitor).
            let battery = self.batteries.unit(b)?;
            let fresh = self.sensors[b].sample(
                battery,
                Volts::new(self.last_voltages[b]),
                result.current,
                self.now,
            );
            // Sensor faults intercept only the battery row; the server
            // power meter is a separate instrument and keeps flowing.
            let sample = self.injector.observe_sample(b, fresh, self.now);
            for &node in member_nodes {
                if let Some(sample) = sample {
                    self.power_table.record_battery(node, sample);
                }
                self.power_table.record_server(
                    node,
                    ServerPowerRecord {
                        at: self.now,
                        power: self.scratch.demands[node],
                    },
                );
            }

            // Emergency shedding on sustained unserved demand: shut down
            // the hungriest online member first (a shared pool browns out
            // one server at a time, not the whole rack at once).
            if demand.as_f64() > 0.0 {
                if routing.unserved.as_f64() > 0.05 * demand.as_f64() {
                    self.unserved_streak[b] += 1;
                    if self.unserved_streak[b] >= SHUTDOWN_STREAK {
                        let mut victim: Option<usize> = None;
                        for &m in member_nodes {
                            if !self.cluster.host(m)?.is_online() {
                                continue;
                            }
                            let better = match victim {
                                None => true,
                                Some(v) => {
                                    self.scratch.demands[m].as_f64()
                                        > self.scratch.demands[v].as_f64()
                                }
                            };
                            if better {
                                victim = Some(m);
                            }
                        }
                        if let Some(victim) = victim {
                            self.cluster.host_mut(victim)?.power_off();
                            self.offline_since[victim] = Some(self.now);
                            self.fleet.mark(victim, DirtyReason::Power);
                            self.counters.shutdowns.inc();
                            Self::log_event(
                                &mut self.events,
                                &mut self.flight,
                                self.now,
                                Event::ServerShutdown { node: victim },
                            );
                        }
                        self.unserved_streak[b] = 0;
                    }
                } else {
                    self.unserved_streak[b] = 0;
                }
            }
        }
        self.fleet.mark_all(DirtyReason::Battery);
        clock.lap(Stage::BatteryStep);
        Ok(())
    }

    /// The sharded counterpart of [`Simulation::route_power`]: same
    /// physics, same state transitions, bit-identical results.
    ///
    /// Banks are independent within a step (demands are snapshotted,
    /// acceptance and availability read only the bank's own pre-step
    /// state), so the hot per-bank work fans out over contiguous bank
    /// ranges — one shard per pool thread — in three phases:
    ///
    /// 1. **Sequential pre-pass**: charger stage observation. Its tracer
    ///    spans, mode-switch counters and fleet marks are order-sensitive
    ///    cross-bank seams, so it stays on one thread, bank order.
    /// 2. **Parallel fused pass**: per shard, the switcher routing,
    ///    battery integration, sensor sampling and shedding *decisions*
    ///    run over disjoint `&mut` range views of the per-bank state
    ///    (battery units, sensors, last currents/voltages, unserved
    ///    streaks). Day shards also fill their slice of the per-node
    ///    demand snapshot — members are contiguous node ranges, so the
    ///    snapshot shards with the banks.
    /// 3. **Sequential merge, shard-index (= bank) order**: energy folds
    ///    (float sums keep the sequential association order), event-log
    ///    appends, fault-injector sample observation (shared RNG — the
    ///    draw order matches the sequential pass exactly), power-table
    ///    rows, and shedding application (`power_off` + events).
    ///
    /// Shard stage timings are measured per worker and recorded as the
    /// shard-index-ordered sum via [`StageClock::add`] — CPU time across
    /// shards, not wall time.
    fn route_power_sharded(
        &mut self,
        pool: &ExecPool,
        solar_total: Watts,
        tod: TimeOfDay,
        dt: SimDuration,
        clock: &mut StageClock<'_>,
    ) -> Result<(), SimError> {
        let profile = clock.is_active();
        let ranges = shard_ranges(self.banks, pool.threads());
        let ambient = self.config.ambient;
        let now = self.now;
        if !self.in_window {
            // Night: grid-charge every bank (identical pre-pass to the
            // sequential path).
            self.scratch.ops.clear();
            for b in 0..self.banks {
                let soc = self.batteries.unit(b)?.soc();
                self.observe_charge_stage(b, soc);
                let faults = self.injector.bank(b);
                let op = if faults.charger_failed || faults.open_circuit {
                    BatteryOp::Idle
                } else {
                    let budget = if faults.charger_stuck {
                        self.chargers[b].acceptance(Soc::FULL)
                    } else {
                        self.chargers[b].max_power()
                    };
                    let p = self.chargers[b].charge_power(soc, budget);
                    if p.as_f64() > 0.0 {
                        BatteryOp::Charge(p)
                    } else {
                        BatteryOp::Idle
                    }
                };
                self.scratch.ops.push(op);
            }
            clock.lap(Stage::Charger);

            struct NightShard<'a> {
                units: &'a mut [AnyBattery],
                sensors: &'a mut [BatterySensor],
                currents: &'a mut [f64],
                voltages: &'a mut [f64],
            }
            let mut tasks: Vec<Mutex<Option<NightShard<'_>>>> = Vec::with_capacity(ranges.len());
            {
                let mut units = self.batteries.units_mut();
                let mut sensors = &mut self.sensors[..];
                let mut currents = &mut self.last_currents[..];
                let mut voltages = &mut self.last_voltages[..];
                for r in &ranges {
                    let len = r.len();
                    let (u, rest) = units.split_at_mut(len);
                    units = rest;
                    let (s, rest) = sensors.split_at_mut(len);
                    sensors = rest;
                    let (c, rest) = currents.split_at_mut(len);
                    currents = rest;
                    let (v, rest) = voltages.split_at_mut(len);
                    voltages = rest;
                    tasks.push(Mutex::new(Some(NightShard {
                        units: u,
                        sensors: s,
                        currents: c,
                        voltages: v,
                    })));
                }
            }
            let ops = &self.scratch.ops;
            type NightOut = (WattHours, SensorSample);
            let shard_out: Vec<(Result<Vec<NightOut>, SimError>, u64)> =
                pool.run(ranges.len(), |s| {
                    let started = profile.then(Instant::now);
                    let shard = tasks[s]
                        .lock()
                        .expect("night shard state")
                        .take()
                        .expect("each shard is taken exactly once");
                    let range = ranges[s].clone();
                    let mut out = Vec::with_capacity(range.len());
                    let result = (|| {
                        for (k, b) in range.enumerate() {
                            let result = shard.units[k].try_step(ops[b], ambient, now, dt)?;
                            shard.currents[k] = result.current.as_f64();
                            shard.voltages[k] = result.terminal_voltage.as_f64();
                            let fresh = shard.sensors[k].sample(
                                &shard.units[k],
                                Volts::new(shard.voltages[k]),
                                result.current,
                                now,
                            );
                            out.push((result.accepted * dt, fresh));
                        }
                        Ok(out)
                    })();
                    let ns = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    (result, ns)
                });
            drop(tasks);
            let mut battery_ns = 0u64;
            let mut b = 0usize;
            self.scratch.shard_ns.clear();
            for (result, ns) in shard_out {
                battery_ns += ns;
                self.scratch.shard_ns.push(ns);
                for (accepted_energy, fresh) in result? {
                    self.grid_charge_energy += accepted_energy;
                    if let Some(sample) = self.injector.observe_sample(b, fresh, self.now) {
                        for &node in &self.members[b] {
                            self.power_table.record_battery(node, sample);
                        }
                    }
                    b += 1;
                }
            }
            self.fleet.mark_all(DirtyReason::Battery);
            clock.skip();
            clock.add(Stage::BatteryStep, battery_ns);
            if let Some(exec) = &self.exec_obs {
                exec.record_shards(&self.scratch.shard_ns);
                exec.merge_wait_battery_step.add(pool.last_caller_wait_ns());
            }
            return Ok(());
        }

        // Day. The demand snapshot is filled inside the shards (each
        // bank's members form a contiguous node range), so size it first.
        let n = self.config.nodes;
        self.scratch.demands.clear();
        self.scratch.demands.resize(n, Watts::ZERO);

        // Charger pre-pass (identical to the sequential path).
        self.scratch.socs_acceptances.clear();
        for b in 0..self.banks {
            let soc = self.batteries.unit(b)?.soc();
            self.observe_charge_stage(b, soc);
            let faults = self.injector.bank(b);
            let acceptance = if faults.charger_failed || faults.open_circuit {
                Watts::ZERO
            } else if faults.charger_stuck {
                self.chargers[b].acceptance(Soc::FULL)
            } else {
                self.chargers[b].acceptance(soc)
            };
            self.scratch.socs_acceptances.push((soc, acceptance));
        }
        clock.lap(Stage::Charger);

        struct DayShard<'a> {
            /// First node of the shard's contiguous node range — maps a
            /// global node index into the `demands` chunk.
            node0: usize,
            units: &'a mut [AnyBattery],
            sensors: &'a mut [BatterySensor],
            currents: &'a mut [f64],
            voltages: &'a mut [f64],
            streaks: &'a mut [u32],
            demands: &'a mut [Watts],
        }
        /// Per-bank result carried from the parallel pass to the merge.
        struct BankOutcome {
            cutoff: bool,
            unserved: WattHours,
            curtailed: WattHours,
            fresh: SensorSample,
            victim: Option<usize>,
        }
        let mut tasks: Vec<Mutex<Option<DayShard<'_>>>> = Vec::with_capacity(ranges.len());
        {
            let mut units = self.batteries.units_mut();
            let mut sensors = &mut self.sensors[..];
            let mut currents = &mut self.last_currents[..];
            let mut voltages = &mut self.last_voltages[..];
            let mut streaks = &mut self.unserved_streak[..];
            let mut demands = &mut self.scratch.demands[..];
            let mut node0 = 0usize;
            for r in &ranges {
                let len = r.len();
                let node_len: usize = self.members[r.clone()].iter().map(Vec::len).sum();
                let (u, rest) = units.split_at_mut(len);
                units = rest;
                let (s, rest) = sensors.split_at_mut(len);
                sensors = rest;
                let (c, rest) = currents.split_at_mut(len);
                currents = rest;
                let (v, rest) = voltages.split_at_mut(len);
                voltages = rest;
                let (st, rest) = streaks.split_at_mut(len);
                streaks = rest;
                let (d, rest) = demands.split_at_mut(node_len);
                demands = rest;
                tasks.push(Mutex::new(Some(DayShard {
                    node0,
                    units: u,
                    sensors: s,
                    currents: c,
                    voltages: v,
                    streaks: st,
                    demands: d,
                })));
                node0 += node_len;
            }
        }
        let members = &self.members;
        let socs_acceptances = &self.scratch.socs_acceptances;
        let solar_shares = &self.solar_shares;
        let soc_floors = &self.soc_floors;
        let chargers = &self.chargers;
        let switcher = &self.switcher;
        let injector = &self.injector;
        let cluster = &self.cluster;
        let shard_out: Vec<(Result<Vec<BankOutcome>, SimError>, u64, u64)> =
            pool.run(ranges.len(), |s| {
                let mut mark = profile.then(Instant::now);
                let mut sw_ns = 0u64;
                let mut bat_ns = 0u64;
                let lap = |acc: &mut u64, mark: &mut Option<Instant>| {
                    if let Some(prev) = *mark {
                        let at = Instant::now();
                        *acc += at.duration_since(prev).as_nanos() as u64;
                        *mark = Some(at);
                    }
                };
                let shard = tasks[s]
                    .lock()
                    .expect("day shard state")
                    .take()
                    .expect("each shard is taken exactly once");
                let range = ranges[s].clone();
                let node0 = shard.node0;
                let mut out = Vec::with_capacity(range.len());
                let result = (|| {
                    // Demand snapshot for this shard's node range.
                    for (j, i) in (node0..node0 + shard.demands.len()).enumerate() {
                        shard.demands[j] = cluster.host(i)?.power(tod);
                    }
                    for (k, b) in range.enumerate() {
                        let (soc, acceptance) = socs_acceptances[b];
                        let faults = injector.bank(b);
                        let demand: Watts =
                            members[b].iter().map(|&m| shard.demands[m - node0]).sum();
                        let solar_i = solar_total * solar_shares[b];
                        // `floored_available`, computed from the shard's
                        // own unit — the identical expression, inlined
                        // because the `&self` helper cannot be called
                        // while the pack is mutably chunked.
                        let available = if faults.open_circuit {
                            Watts::ZERO
                        } else {
                            let battery = &shard.units[k];
                            let headroom = battery.soc().value() - soc_floors[b].value();
                            if headroom <= 0.0 {
                                Watts::ZERO
                            } else {
                                let energy_wh = headroom
                                    * battery.effective_capacity().as_f64()
                                    * battery.open_circuit_voltage().as_f64();
                                let cap = Watts::new(energy_wh / dt.as_hours());
                                battery.available_discharge_power().min(cap)
                            }
                        };
                        let routing = switcher.route(demand, solar_i, available, acceptance);
                        lap(&mut sw_ns, &mut mark);
                        let op = if faults.open_circuit {
                            BatteryOp::Idle
                        } else if routing.battery_to_load.as_f64() > 0.0 {
                            BatteryOp::Discharge(routing.battery_to_load)
                        } else {
                            let p = chargers[b].charge_power(soc, routing.surplus_to_charger);
                            if p.as_f64() > 0.0 {
                                BatteryOp::Charge(p)
                            } else {
                                BatteryOp::Idle
                            }
                        };
                        let result = shard.units[k].try_step(op, ambient, now, dt)?;
                        shard.currents[k] = result.current.as_f64();
                        shard.voltages[k] = result.terminal_voltage.as_f64();
                        let fresh = shard.sensors[k].sample(
                            &shard.units[k],
                            Volts::new(shard.voltages[k]),
                            result.current,
                            now,
                        );
                        // Shedding *decision* (per-bank streak state; the
                        // cluster reads touch only this bank's members,
                        // which no other shard's merge can power off).
                        let mut victim: Option<usize> = None;
                        if demand.as_f64() > 0.0 {
                            if routing.unserved.as_f64() > 0.05 * demand.as_f64() {
                                shard.streaks[k] += 1;
                                if shard.streaks[k] >= SHUTDOWN_STREAK {
                                    for &m in &members[b] {
                                        if !cluster.host(m)?.is_online() {
                                            continue;
                                        }
                                        let better = match victim {
                                            None => true,
                                            Some(v) => {
                                                shard.demands[m - node0].as_f64()
                                                    > shard.demands[v - node0].as_f64()
                                            }
                                        };
                                        if better {
                                            victim = Some(m);
                                        }
                                    }
                                    shard.streaks[k] = 0;
                                }
                            } else {
                                shard.streaks[k] = 0;
                            }
                        }
                        lap(&mut bat_ns, &mut mark);
                        out.push(BankOutcome {
                            cutoff: result.cutoff,
                            unserved: routing.unserved * dt,
                            curtailed: routing.curtailed * dt,
                            fresh,
                            victim,
                        });
                    }
                    Ok(out)
                })();
                (result, sw_ns, bat_ns)
            });
        drop(tasks);
        let mut sw_total = 0u64;
        let mut bat_total = 0u64;
        let mut b = 0usize;
        self.scratch.shard_ns.clear();
        for (result, sw_ns, bat_ns) in shard_out {
            sw_total += sw_ns;
            bat_total += bat_ns;
            self.scratch.shard_ns.push(sw_ns + bat_ns);
            for o in result? {
                if o.cutoff {
                    self.counters.battery_cutoffs.inc();
                    Self::log_event(
                        &mut self.events,
                        &mut self.flight,
                        self.now,
                        Event::BatteryCutoff {
                            node: self.members[b][0],
                        },
                    );
                }
                self.unserved_energy += o.unserved;
                self.curtailed_energy += o.curtailed;
                let sample = self.injector.observe_sample(b, o.fresh, self.now);
                for &node in &self.members[b] {
                    if let Some(sample) = sample {
                        self.power_table.record_battery(node, sample);
                    }
                    self.power_table.record_server(
                        node,
                        ServerPowerRecord {
                            at: self.now,
                            power: self.scratch.demands[node],
                        },
                    );
                }
                if let Some(victim) = o.victim {
                    self.cluster.host_mut(victim)?.power_off();
                    self.offline_since[victim] = Some(self.now);
                    self.fleet.mark(victim, DirtyReason::Power);
                    self.counters.shutdowns.inc();
                    Self::log_event(
                        &mut self.events,
                        &mut self.flight,
                        self.now,
                        Event::ServerShutdown { node: victim },
                    );
                }
                b += 1;
            }
        }
        self.fleet.mark_all(DirtyReason::Battery);
        clock.skip();
        clock.add(Stage::Switcher, sw_total);
        clock.add(Stage::BatteryStep, bat_total);
        if let Some(exec) = &self.exec_obs {
            exec.record_shards(&self.scratch.shard_ns);
            exec.merge_wait_battery_step.add(pool.last_caller_wait_ns());
        }
        Ok(())
    }

    fn try_restarts(&mut self, solar_total: Watts) -> Result<(), SimError> {
        let n = self.config.nodes;
        let idle = self.config.server_power.idle();
        for i in 0..n {
            if self.cluster.host(i)?.is_online() {
                continue;
            }
            if self.injector.host_down(i) {
                continue;
            }
            let Some(since) = self.offline_since[i] else {
                continue;
            };
            if self.now.saturating_since(since) < RESTART_DWELL {
                continue;
            }
            let bank = self.bank_of[i];
            let battery = self.batteries.unit(bank)?;
            let soc_ok = battery.soc().value() > self.soc_floors[bank].value() + RESTART_SOC_MARGIN;
            let solar_ok = solar_total.as_f64() / n as f64 > idle.as_f64() * 1.2;
            if soc_ok || solar_ok {
                let host = self.cluster.host_mut(i)?;
                host.power_on();
                host.resume_all();
                self.offline_since[i] = None;
                self.fleet.mark(i, DirtyReason::Power);
                self.counters.restarts.inc();
                Self::log_event(
                    &mut self.events,
                    &mut self.flight,
                    self.now,
                    Event::ServerRestart { node: i },
                );
            }
        }
        Ok(())
    }

    fn ratings(&self, node: usize) -> Result<BatteryRatings, SimError> {
        let spec = self.batteries.unit(self.bank_of[node])?.spec();
        Ok(BatteryRatings {
            capacity: spec.capacity(),
            lifetime_throughput: spec.lifetime_throughput(),
        })
    }

    /// Builds the read-only system view for policies.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the engine's node/bank bookkeeping is
    /// inconsistent with the substrates (an invariant break).
    pub fn build_view(&self) -> Result<SystemView, SimError> {
        let tod = self.now.time_of_day();
        let nodes = self.collect_node_views(tod)?;
        Ok(SystemView {
            now: self.now,
            tod,
            weather: self.weather_today,
            solar: self.last_solar,
            nodes,
        })
    }

    /// Node views for `0..nodes` in node order. [`Simulation::node_view`]
    /// is a pure `&self` read, so with a configured pool (and a fleet
    /// large enough to amortize dispatch) the views are built over
    /// contiguous node-range shards and concatenated in shard order —
    /// the identical vector.
    fn collect_node_views(&self, tod: TimeOfDay) -> Result<Vec<NodeView>, SimError> {
        let n = self.config.nodes;
        let pool = match &self.pool {
            Some(pool) if n >= PAR_VIEW_MIN_NODES => pool,
            _ => return (0..n).map(|i| self.node_view(i, tod)).collect(),
        };
        let ranges = shard_ranges(n, pool.threads());
        let chunks: Vec<Result<Vec<NodeView>, SimError>> = pool.run(ranges.len(), |s| {
            ranges[s].clone().map(|i| self.node_view(i, tod)).collect()
        });
        if let Some(exec) = &self.exec_obs {
            exec.merge_wait_view.add(pool.last_caller_wait_ns());
        }
        let mut nodes = Vec::with_capacity(n);
        for chunk in chunks {
            nodes.extend(chunk?);
        }
        Ok(nodes)
    }

    /// Builds the read-only view of one node — the unit of incremental
    /// view maintenance: after a placement admits a VM, only the admitted
    /// node's entry changes, so the placement loop refreshes that single
    /// entry instead of rebuilding the whole [`SystemView`].
    fn node_view(&self, i: usize, tod: TimeOfDay) -> Result<NodeView, SimError> {
        let bank = self.bank_of[i];
        let share = 1.0 / self.members[bank].len() as f64;
        let battery = self.batteries.unit(bank)?;
        let host = self.cluster.host(i)?;
        let ratings = self.ratings(i)?;
        Ok(NodeView {
            node: i,
            soc: battery.soc(),
            window_metrics: AgingMetrics::from_accumulator(battery.telemetry().window(), &ratings),
            lifetime_metrics: AgingMetrics::from_accumulator(
                battery.telemetry().lifetime(),
                &ratings,
            ),
            damage: battery.total_damage(),
            capacity_fraction: battery.capacity_fraction(),
            server_power: host.power(tod),
            utilization: host.utilization(tod),
            dvfs: host.dvfs(),
            online: host.is_online(),
            degraded: self.degraded[i],
            free_resources: host.free_resources(),
            vms: host
                .vms()
                .map(|vm| VmView {
                    id: vm.id(),
                    kind: vm.kind(),
                    state: vm.state(),
                    progress: vm.progress(),
                })
                .collect(),
            battery_available: self.floored_available(bank, self.config.dt)? * share,
            battery_capacity_wh: battery.effective_capacity().as_f64()
                * battery.spec().nominal_voltage().as_f64()
                * share,
            battery_capacity_ah: battery.spec().capacity().as_f64() * share,
            battery_lifetime_throughput_ah: battery.spec().lifetime_throughput().as_f64() * share,
            soc_floor: self.soc_floors[bank],
            cutoff_events: battery.cutoff_events(),
            hours_since_full: battery.hours_since_full(),
        })
    }

    /// `obs` is the engine's own context, lent by [`Simulation::step`]
    /// while `self.obs` holds a disabled placeholder.
    fn record_row(&mut self, solar: Watts, tod: TimeOfDay, obs: &Obs) -> Result<(), SimError> {
        let n = self.config.nodes;
        // One fused pass builds all three per-node series (the old code
        // walked the fleet three times); and when the flight ring is off
        // the build is handed to the recorder lazily, so sampled rows
        // that the stride/cap will drop anyway are never built at all —
        // on capped long-fleet runs that is most of them.
        let batteries = &self.batteries;
        let cluster = &self.cluster;
        let bank_of = &self.bank_of;
        let last_currents = &self.last_currents;
        let now = self.now;
        let build = move || -> Result<TraceRow, SimError> {
            let mut soc = Vec::with_capacity(n);
            let mut server_power = Vec::with_capacity(n);
            let mut battery_current = Vec::with_capacity(n);
            for (i, &bank) in bank_of.iter().enumerate().take(n) {
                soc.push(batteries.unit(bank)?.soc().value());
                server_power.push(cluster.host(i)?.power(tod));
                battery_current.push(last_currents[bank]);
            }
            Ok(TraceRow {
                at: now,
                solar,
                soc,
                server_power,
                battery_current,
                work_cumulative: cluster.total_work_done(),
            })
        };
        if self.flight.is_enabled() {
            // The flight ring sees every sampled row, so build eagerly.
            let row = build()?;
            self.flight.push(Recorder::row_json(&row));
            self.recorder.push(row);
        } else {
            self.recorder.push_with(build)?;
        }
        // Refresh the observability gauges at the trace cadence: cheap,
        // deterministic values, and read-only with respect to sim state.
        self.counters.unserved_wh.set(self.unserved_energy.as_f64());
        self.counters
            .curtailed_wh
            .set(self.curtailed_energy.as_f64());
        self.counters
            .grid_charge_wh
            .set(self.grid_charge_energy.as_f64());
        if obs.is_enabled() {
            let mut agg = AgingBreakdown::default();
            for b in self.batteries.iter() {
                agg.accumulate(&b.aging_breakdown());
            }
            self.aging_obs.record(&agg);
        }
        // Exec-pool gauges refresh at the same cadence, so a live
        // scrape (`console serve`) sees pool state at most one sample
        // interval old.
        if let (Some(exec), Some(pool)) = (&self.exec_obs, &self.pool) {
            exec.refresh(pool);
        }
        Ok(())
    }

    /// Consumes the simulation and produces the final report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the engine's bookkeeping is inconsistent
    /// with the substrates.
    pub fn into_report(mut self, policy: &'static str) -> Result<SimReport, SimError> {
        // Flush engine-owned health events and flight dumps into the obs
        // store: they export next to metrics and spans, but stay out of
        // the report, which is compared bit-for-bit across obs on/off.
        self.obs.record_health_events(self.health.take_events());
        self.obs.record_flight_dumps(self.flight.take_dumps());
        let completed_jobs = self.cluster.hosts().map(|h| h.completed_jobs()).sum();
        let migrations = self.cluster.migrations_started();
        let nodes = (0..self.config.nodes)
            .map(|i| {
                let battery = self.batteries.unit(self.bank_of[i])?;
                let acc = battery.telemetry().lifetime();
                let ratings = BatteryRatings {
                    capacity: battery.spec().capacity(),
                    lifetime_throughput: battery.spec().lifetime_throughput(),
                };
                Ok(NodeReport {
                    node: i,
                    damage: battery.total_damage(),
                    damage_breakdown: battery.aging_breakdown(),
                    capacity_fraction: battery.capacity_fraction(),
                    lifetime_metrics: AgingMetrics::from_accumulator(acc, &ratings),
                    soc_histogram: acc.soc_time_histogram,
                    deep_discharge_time: acc.deep_discharge_time,
                    observed: acc.observed,
                    cutoff_events: battery.cutoff_events(),
                    downtime: self.downtime[i],
                    full_charge_events: acc.full_charge_events,
                    round_trip_efficiency: acc.round_trip_efficiency(),
                    work_done: self.cluster.host(i)?.work_done(),
                })
            })
            .collect::<Result<_, SimError>>()?;
        Ok(SimReport {
            policy,
            days: self.config.days(),
            nodes,
            total_work: self.cluster.total_work_done(),
            completed_jobs,
            migrations,
            unserved_energy: self.unserved_energy,
            curtailed_energy: self.curtailed_energy,
            grid_charge_energy: self.grid_charge_energy,
            recorder: self.recorder,
            events: self.events,
        })
    }
}

/// Convenience: run one configuration under one policy.
///
/// # Errors
///
/// Returns [`SimError`] if the configuration is rejected or the run hits
/// a broken engine invariant.
///
/// # Examples
///
/// ```
/// use baat_sim::{run_simulation, RoundRobinPolicy, SimConfig};
/// use baat_solar::Weather;
///
/// let config = SimConfig::prototype_day(Weather::Sunny, 42);
/// let report = run_simulation(config, &mut RoundRobinPolicy::new())?;
/// assert_eq!(report.days, 1);
/// # Ok::<(), baat_sim::SimError>(())
/// ```
pub fn run_simulation<P: Policy>(config: SimConfig, policy: &mut P) -> Result<SimReport, SimError> {
    Simulation::new(config)?.run(policy)
}

/// Runs one configuration under one policy while recording metrics and
/// stage timings into `obs`.
///
/// The report is bit-identical to what [`run_simulation`] produces for
/// the same config: observation never perturbs the run.
///
/// # Errors
///
/// Returns [`SimError`] if the configuration is rejected or the run hits
/// a broken engine invariant.
pub fn run_simulation_observed<P: Policy>(
    config: SimConfig,
    policy: &mut P,
    obs: Obs,
) -> Result<SimReport, SimError> {
    Simulation::with_obs(config, obs)?.run(policy)
}

/// Fraction of operating time servers were up, across the run (a simple
/// availability figure).
pub fn availability(report: &SimReport, operating: SimDuration) -> Fraction {
    if operating.is_zero() || report.nodes.is_empty() {
        return Fraction::ONE;
    }
    let total_downtime: f64 = report
        .nodes
        .iter()
        .map(|n| n.downtime.as_secs() as f64)
        .sum();
    let total_operating = operating.as_secs() as f64 * report.nodes.len() as f64;
    Fraction::saturating(1.0 - total_downtime / total_operating)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoundRobinPolicy;

    fn quick_config(weather: Weather) -> SimConfig {
        let mut b = SimConfig::builder();
        b.weather_plan(vec![weather])
            .dt(SimDuration::from_secs(30))
            .sample_every(10)
            .seed(7);
        b.build().unwrap()
    }

    #[test]
    fn one_sunny_day_runs_and_does_work() {
        let report =
            run_simulation(quick_config(Weather::Sunny), &mut RoundRobinPolicy::new()).unwrap();
        assert!(report.total_work > 0.0, "servers must compute");
        assert!(report.completed_jobs > 0, "batch jobs must finish");
        assert!(!report.recorder.is_empty());
        assert_eq!(report.nodes.len(), 6);
    }

    #[test]
    fn batteries_cycle_during_the_day() {
        let report =
            run_simulation(quick_config(Weather::Cloudy), &mut RoundRobinPolicy::new()).unwrap();
        for node in &report.nodes {
            assert!(
                node.lifetime_metrics.nat > 0.0,
                "node {} never discharged",
                node.node
            );
        }
        assert!(report.mean_damage() > 0.0);
    }

    #[test]
    fn rainy_day_stresses_batteries_more_than_sunny() {
        let sunny =
            run_simulation(quick_config(Weather::Sunny), &mut RoundRobinPolicy::new()).unwrap();
        let rainy =
            run_simulation(quick_config(Weather::Rainy), &mut RoundRobinPolicy::new()).unwrap();
        assert!(
            rainy.total_ah_discharged() > sunny.total_ah_discharged(),
            "rainy {} vs sunny {}",
            rainy.total_ah_discharged(),
            sunny.total_ah_discharged()
        );
        assert!(rainy.mean_damage() > sunny.mean_damage());
    }

    #[test]
    fn runs_are_deterministic() {
        let a =
            run_simulation(quick_config(Weather::Cloudy), &mut RoundRobinPolicy::new()).unwrap();
        let b =
            run_simulation(quick_config(Weather::Cloudy), &mut RoundRobinPolicy::new()).unwrap();
        assert_eq!(a.total_work, b.total_work);
        assert_eq!(a.mean_damage(), b.mean_damage());
        assert_eq!(a.events.len(), b.events.len());
    }

    #[test]
    fn observation_does_not_perturb_the_run() {
        let plain =
            run_simulation(quick_config(Weather::Cloudy), &mut RoundRobinPolicy::new()).unwrap();
        let obs = Obs::enabled();
        let observed = run_simulation_observed(
            quick_config(Weather::Cloudy),
            &mut RoundRobinPolicy::new(),
            obs.clone(),
        )
        .unwrap();
        assert_eq!(plain, observed, "obs must be side-effect-free");
        // And the registry actually recorded the run.
        assert!(!obs.snapshot().is_empty());
        assert!(!obs.stage_stats().is_empty());
        let steps = obs
            .stage_stats()
            .iter()
            .find(|s| s.stage == Stage::BatteryStep)
            .map(|s| s.calls)
            .unwrap_or(0);
        assert!(steps > 0, "battery steps must be profiled");
    }

    #[test]
    fn servers_idle_outside_operating_window() {
        let report =
            run_simulation(quick_config(Weather::Sunny), &mut RoundRobinPolicy::new()).unwrap();
        // Find a recorded row before 08:30: server power must be zero.
        let early = report
            .recorder
            .rows()
            .iter()
            .find(|r| r.at.time_of_day() < TimeOfDay::from_hm(8, 0))
            .expect("early rows exist");
        assert!(early.server_power.iter().all(|p| p.as_f64() == 0.0));
        // And a midday row with nonzero power.
        let midday = report
            .recorder
            .rows()
            .iter()
            .find(|r| {
                r.at.time_of_day() > TimeOfDay::from_hm(11, 0)
                    && r.at.time_of_day() < TimeOfDay::from_hm(12, 0)
            })
            .expect("midday rows exist");
        assert!(midday.server_power.iter().any(|p| p.as_f64() > 0.0));
    }

    #[test]
    fn pre_aging_increases_reported_damage() {
        let config = quick_config(Weather::Sunny);
        let mut sim = Simulation::new(config).unwrap();
        sim.pre_age_batteries(0.5);
        let mut policy = RoundRobinPolicy::new();
        let report = sim.run(&mut policy).unwrap();
        assert!(report.mean_damage() >= 0.5);
        for node in &report.nodes {
            assert!(node.capacity_fraction < 0.95);
        }
    }

    #[test]
    fn multi_day_run_advances_clock() {
        let mut b = SimConfig::builder();
        b.weather_plan(vec![Weather::Sunny, Weather::Rainy])
            .dt(SimDuration::from_secs(60))
            .sample_every(10)
            .seed(3);
        let config = b.build().unwrap();
        let report = run_simulation(config, &mut RoundRobinPolicy::new()).unwrap();
        assert_eq!(report.days, 2);
        let last = report.recorder.rows().last().unwrap();
        assert_eq!(last.at.day(), 1);
    }

    #[test]
    fn shared_pool_topology_runs_and_shares_telemetry() {
        use crate::config::BatteryTopology;
        let mut b = SimConfig::builder();
        b.weather_plan(vec![Weather::Cloudy])
            .dt(SimDuration::from_secs(30))
            .sample_every(10)
            .topology(BatteryTopology::SharedPool { pools: 2 })
            .seed(7);
        let config = b.build().unwrap();
        let report = run_simulation(config, &mut RoundRobinPolicy::new()).unwrap();
        assert!(report.total_work > 0.0);
        // Rack members share a bank: their battery stats are identical.
        assert_eq!(report.nodes[0].damage, report.nodes[1].damage);
        assert_eq!(report.nodes[0].damage, report.nodes[2].damage);
        assert_eq!(report.nodes[3].damage, report.nodes[5].damage);
        // The two pools differ (different loads + manufacturing spread).
        assert_ne!(report.nodes[0].damage, report.nodes[3].damage);
    }

    #[test]
    fn shared_pool_must_divide_nodes() {
        use crate::config::BatteryTopology;
        let mut b = SimConfig::builder();
        b.topology(BatteryTopology::SharedPool { pools: 4 }); // 6 % 4 != 0
        assert!(b.build().is_err());
        let mut b2 = SimConfig::builder();
        b2.topology(BatteryTopology::SharedPool { pools: 0 });
        assert!(b2.build().is_err());
    }

    #[test]
    fn shared_pool_sheds_one_server_at_a_time() {
        use crate::config::BatteryTopology;
        use crate::events::Event;
        // One big pool on a rainy day: shedding events must name
        // individual nodes, not kill the whole rack at once.
        let mut b = SimConfig::builder();
        b.weather_plan(vec![Weather::Rainy])
            .dt(SimDuration::from_secs(30))
            .sample_every(10)
            .topology(BatteryTopology::SharedPool { pools: 1 })
            .seed(3);
        let report = run_simulation(b.build().unwrap(), &mut RoundRobinPolicy::new()).unwrap();
        let shutdowns: Vec<usize> = report
            .events
            .iter()
            .filter_map(|e| match e.event {
                Event::ServerShutdown { node } => Some(node),
                _ => None,
            })
            .collect();
        assert!(!shutdowns.is_empty(), "a rainy day must shed load");
        // Nodes survive long enough that sheds happen at distinct times.
        assert!(report.total_work > 0.0);
    }

    #[test]
    fn availability_counts_downtime() {
        let report =
            run_simulation(quick_config(Weather::Rainy), &mut RoundRobinPolicy::new()).unwrap();
        let a = availability(&report, SimDuration::from_hours(10));
        assert!(a.value() <= 1.0);
    }
}
