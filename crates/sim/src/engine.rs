//! The discrete-time green-datacenter simulation engine.
//!
//! Wires the substrates together the way the prototype's hardware is
//! wired (paper Fig 11): a PV array feeds a per-node power switcher;
//! each server has its own battery, charger and sensor; the BAAT
//! controller (a [`Policy`]) observes the power tables every control
//! interval and actuates DVFS, VM migration and discharge floors.

use std::collections::VecDeque;

use baat_battery::{BatteryOp, BatteryPack};
use baat_metrics::{AgingMetrics, BatteryRatings};
use baat_power::{BatterySensor, Charger, PowerSwitcher, PowerTable, ServerPowerRecord};
use baat_server::{Cluster, ServerId};
use baat_solar::{ClearSky, CloudProcess, PvArray, Weather};
use baat_units::{Fraction, SimDuration, SimInstant, Soc, TimeOfDay, Volts, WattHours, Watts};
use baat_workload::{Arrival, Vm, WorkloadGenerator, WorkloadKind};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::events::{Event, EventLog};
use crate::policy::{Action, Policy};
use crate::recorder::{Recorder, TraceRow};
use crate::report::{NodeReport, SimReport};
use crate::view::{NodeView, SystemView, VmView};

/// Consecutive unserved-demand steps before a node checkpoints and shuts
/// down.
const SHUTDOWN_STREAK: u32 = 3;
/// Minimum offline dwell before a restart attempt.
const RESTART_DWELL: SimDuration = SimDuration::from_minutes(5);
/// SoC margin above the floor required to restart a node on battery: the
/// battery must have recovered meaningfully, or the node flaps.
const RESTART_SOC_MARGIN: f64 = 0.45;

/// One green-datacenter simulation instance.
pub struct Simulation {
    config: SimConfig,
    /// Number of physical battery banks (= nodes for per-server
    /// integration; fewer for shared pools).
    banks: usize,
    /// Node → bank mapping.
    bank_of: Vec<usize>,
    /// Bank → member nodes.
    members: Vec<Vec<usize>>,
    cluster: Cluster,
    batteries: BatteryPack,
    sensors: Vec<BatterySensor>,
    chargers: Vec<Charger>,
    switcher: PowerSwitcher,
    array: PvArray,
    power_table: PowerTable,
    generator: WorkloadGenerator,
    events: EventLog,
    recorder: Recorder,
    now: SimInstant,
    step_index: u64,
    soc_floors: Vec<Soc>,
    unserved_streak: Vec<u32>,
    offline_since: Vec<Option<SimInstant>>,
    downtime: Vec<SimDuration>,
    unserved_energy: WattHours,
    curtailed_energy: WattHours,
    grid_charge_energy: WattHours,
    arrivals_today: VecDeque<Arrival>,
    /// Jobs that could not be placed yet; retried every control interval
    /// (the prototype's job queue).
    pending: VecDeque<Vm>,
    clouds: CloudProcess,
    weather_today: Weather,
    started_day: Option<u64>,
    in_window: bool,
    last_currents: Vec<f64>,
    last_voltages: Vec<f64>,
    last_solar: Watts,
}

impl Simulation {
    /// Builds a simulation from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any substrate rejects its derived
    /// parameters.
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        let mut cluster = Cluster::homogeneous(
            config.nodes,
            config.server_power,
            config.server_capacity,
            config.migration,
        )
        .map_err(|e| SimError::component("cluster", e))?;
        // Simulated time starts at midnight; servers power on at the
        // operating-window edge.
        cluster.power_off_all();
        let banks = config.topology.banks(config.nodes);
        let per_bank = config.topology.nodes_per_bank(config.nodes);
        let bank_of: Vec<usize> = (0..config.nodes)
            .map(|i| config.topology.bank_of(i, config.nodes))
            .collect();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); banks];
        for (node, &bank) in bank_of.iter().enumerate() {
            members[bank].push(node);
        }
        // A shared pool aggregates the per-node bank: k× capacity and
        // current limits, 1/k internal resistance.
        let bank_spec = if per_bank == 1 {
            config.battery_spec.clone()
        } else {
            let s = &config.battery_spec;
            let k = per_bank as f64;
            let mut b = baat_battery::BatterySpec::builder();
            b.nominal_voltage(s.nominal_voltage())
                .capacity(s.capacity() * k)
                .internal_resistance(s.internal_resistance() / k)
                .cutoff_voltage(s.cutoff_voltage())
                .max_charge_current(s.max_charge_current() * k)
                .max_discharge_current(s.max_discharge_current() * k)
                .lifetime_throughput(s.lifetime_throughput() * k)
                .manufacturer(s.manufacturer())
                .coulombic_efficiency(s.coulombic_efficiency())
                .self_discharge_per_day(s.self_discharge_per_day())
                .ambient(s.ambient());
            b.build()
                .map_err(|e| SimError::component("shared pool spec", e))?
        };
        let batteries =
            BatteryPack::manufacture(bank_spec, banks, config.variation, config.seed ^ 0xBA77)
                .map_err(|e| SimError::component("battery pack", e))?;
        let array = PvArray::sized_for_daily_energy(
            config.solar_sunny_budget,
            Weather::Sunny,
            ClearSky::temperate(),
        )
        .map_err(|e| SimError::component("pv array", e))?;
        let sensors = (0..banks)
            .map(|i| BatterySensor::new(config.sensor_noise, config.seed ^ (0x5E45 + i as u64)))
            .collect();
        let charger = Charger::new(
            Charger::prototype().max_power() * per_bank as f64,
            Charger::prototype().efficiency(),
        )
        .map_err(|e| SimError::component("charger", e))?;
        let chargers = vec![charger; banks];
        let weather_today = config.weather_plan[0];
        let clouds = CloudProcess::new(weather_today, config.seed);
        let nodes = config.nodes;
        Ok(Self {
            banks,
            bank_of,
            members,
            cluster,
            batteries,
            sensors,
            chargers,
            switcher: PowerSwitcher::prototype(),
            array,
            power_table: PowerTable::new(nodes),
            generator: WorkloadGenerator::new(config.seed ^ 0x10AD),
            events: EventLog::new(),
            recorder: Recorder::new(),
            now: SimInstant::START,
            step_index: 0,
            soc_floors: vec![Soc::EMPTY; banks],
            unserved_streak: vec![0; banks],
            offline_since: vec![None; nodes],
            downtime: vec![SimDuration::ZERO; nodes],
            unserved_energy: WattHours::ZERO,
            curtailed_energy: WattHours::ZERO,
            grid_charge_energy: WattHours::ZERO,
            arrivals_today: VecDeque::new(),
            pending: VecDeque::new(),
            clouds,
            weather_today,
            started_day: None,
            in_window: false,
            last_currents: vec![0.0; banks],
            last_voltages: vec![config.battery_spec.nominal_voltage().as_f64(); banks],
            last_solar: Watts::ZERO,
            config,
        })
    }

    /// Pre-ages every battery to the given damage (the paper's "old"
    /// battery stage).
    pub fn pre_age_batteries(&mut self, damage: f64) {
        for b in self.batteries.iter_mut() {
            b.pre_age(damage);
        }
    }

    /// Pre-ages a single battery bank — fault injection for the paper's
    /// single-point-of-failure scenario, where one "prone-to-wear-out"
    /// unit threatens the node's availability (§IV.B.1).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `bank` is out of range.
    pub fn pre_age_bank(&mut self, bank: usize, damage: f64) -> Result<(), SimError> {
        let unit = self
            .batteries
            .unit_mut(bank)
            .map_err(|e| SimError::InvalidConfig {
                field: "bank",
                reason: e.to_string(),
            })?;
        unit.pre_age(damage);
        Ok(())
    }

    /// Immutable access to the battery pack.
    pub fn batteries(&self) -> &BatteryPack {
        &self.batteries
    }

    /// Immutable access to the cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The controller-facing power table.
    pub fn power_table(&self) -> &PowerTable {
        &self.power_table
    }

    /// Current simulation time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Runs the configured weather plan to completion under `policy` and
    /// returns the report.
    pub fn run<P: Policy>(mut self, policy: &mut P) -> SimReport {
        let total_steps = self.config.days() as u64 * 86_400 / self.config.dt.as_secs();
        for _ in 0..total_steps {
            self.step(policy);
        }
        self.into_report(policy.name())
    }

    /// Advances the simulation one timestep.
    pub fn step<P: Policy>(&mut self, policy: &mut P) {
        let dt = self.config.dt;
        let day = self.now.day();
        if self.started_day != Some(day) {
            self.start_day(day);
        }
        let tod = self.now.time_of_day();

        // Operating-window edges: power on at day start, checkpoint and
        // shut down at day end.
        let in_window = tod.is_between(self.config.day_start, self.config.day_end);
        if in_window && !self.in_window {
            self.cluster.power_on_all();
            for since in &mut self.offline_since {
                *since = None;
            }
        } else if !in_window && self.in_window {
            self.cluster.power_off_all();
        }
        self.in_window = in_window;

        // Workload arrivals.
        if in_window {
            while let Some(arrival) = self.arrivals_today.front().copied() {
                if arrival.at > tod {
                    break;
                }
                self.arrivals_today.pop_front();
                let vm = self.generator.spawn(arrival.kind);
                if let Some(vm) = self.place_vm(vm, arrival.kind, policy) {
                    self.pending.push_back(vm);
                }
            }
        }

        // Solar generation for this step (also exposed to the policy).
        let attenuation = self.clouds.step();
        let solar_total = self.array.output(tod, attenuation);
        self.last_solar = solar_total;

        // Policy control interval.
        let control_steps = self.config.control_interval.as_secs() / dt.as_secs();
        if in_window && self.step_index.is_multiple_of(control_steps.max(1)) {
            for host in self.cluster.hosts_mut() {
                host.reap_completed();
            }
            let view = self.build_view();
            let actions = policy.control(&view);
            self.apply_actions(actions);
            self.retry_pending(policy);
        }

        // Per-node power routing.
        self.route_power(solar_total, tod, dt);

        // Node restart checks.
        if in_window {
            self.try_restarts(solar_total);
        }

        // Advance the cluster (migrations + VM execution).
        self.cluster.step(self.now, tod, dt);

        // Downtime accounting.
        if in_window {
            for i in 0..self.config.nodes {
                if !self.cluster.host(i).expect("index in range").is_online() {
                    self.downtime[i] += dt;
                }
            }
        }

        // Trace recording.
        if self
            .step_index
            .is_multiple_of(self.config.sample_every as u64)
        {
            self.record_row(solar_total, tod);
        }

        self.now += dt;
        self.step_index += 1;
    }

    fn start_day(&mut self, day: u64) {
        self.started_day = Some(day);
        // Jobs still queued from yesterday are reported once and carried
        // over.
        for _ in 0..self.pending.len() {
            self.events.push(
                self.now,
                Event::PlacementFailed {
                    node: self.config.nodes,
                },
            );
        }
        let plan_len = self.config.weather_plan.len() as u64;
        self.weather_today = self.config.weather_plan[(day % plan_len) as usize];
        self.clouds = CloudProcess::new(self.weather_today, self.config.seed ^ (day + 1));
        let services = if day == 0 { self.config.services } else { 0 };
        self.arrivals_today = self
            .generator
            .daily_plan(services, self.config.batch_jobs_per_day)
            .into();
        // Daily metric window reset (the controller's observation period).
        for b in self.batteries.iter_mut() {
            b.telemetry_mut().reset_window();
        }
    }

    /// Attempts to place a VM; returns it back if no node can take it.
    fn place_vm<P: Policy>(&mut self, vm: Vm, kind: WorkloadKind, policy: &mut P) -> Option<Vm> {
        let view = self.build_view();
        let order = policy.placement_order(kind, &view);
        let request = kind.resource_request();
        for node in order {
            if node >= self.config.nodes {
                continue;
            }
            let host = self.cluster.host_mut(node).expect("index in range");
            if host.is_online() && host.fits(request) {
                host.admit(vm).expect("fits was checked");
                return None;
            }
        }
        Some(vm)
    }

    /// Retries queued jobs in arrival order.
    fn retry_pending<P: Policy>(&mut self, policy: &mut P) {
        let mut still_pending = VecDeque::with_capacity(self.pending.len());
        while let Some(vm) = self.pending.pop_front() {
            let kind = vm.kind();
            if let Some(vm) = self.place_vm(vm, kind, policy) {
                still_pending.push_back(vm);
            }
        }
        self.pending = still_pending;
    }

    fn apply_actions(&mut self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::SetDvfs { node, level } => {
                    if let Ok(host) = self.cluster.host_mut(node) {
                        if host.dvfs() != level {
                            host.set_dvfs(level);
                            self.events
                                .push(self.now, Event::DvfsChanged { node, level });
                        }
                    } else {
                        self.events.push(self.now, Event::ActionRejected { node });
                    }
                }
                Action::Migrate { vm, target } => {
                    let from = self.cluster.locate(vm).map(|s| s.0);
                    match self.cluster.begin_migration(vm, ServerId(target), self.now) {
                        Ok(()) => self.events.push(
                            self.now,
                            Event::MigrationStarted {
                                vm,
                                from: from.unwrap_or(usize::MAX),
                                to: target,
                            },
                        ),
                        Err(_) => self.events.push(
                            self.now,
                            Event::ActionRejected {
                                node: from.unwrap_or(target),
                            },
                        ),
                    }
                }
                Action::SetSocFloor { node, floor } => {
                    if node < self.bank_of.len() {
                        let bank = self.bank_of[node];
                        if self.soc_floors[bank] != floor {
                            self.soc_floors[bank] = floor;
                            self.events
                                .push(self.now, Event::SocFloorChanged { node, floor });
                        }
                    }
                }
            }
        }
    }

    /// Battery terminal power available without crossing the bank's SoC
    /// floor within one step.
    fn floored_available(&self, bank: usize, dt: SimDuration) -> Watts {
        let battery = self.batteries.unit(bank).expect("index in range");
        let floor = self.soc_floors[bank];
        let headroom = battery.soc().value() - floor.value();
        if headroom <= 0.0 {
            return Watts::ZERO;
        }
        let energy_wh = headroom
            * battery.effective_capacity().as_f64()
            * battery.open_circuit_voltage().as_f64();
        let cap = Watts::new(energy_wh / dt.as_hours());
        battery.available_discharge_power().min(cap)
    }

    fn route_power(&mut self, solar_total: Watts, tod: TimeOfDay, dt: SimDuration) {
        let n = self.config.nodes;
        // Outside the operating window the prototype's power switcher
        // recharges batteries from the utility line ("switch the utility
        // or renewable power to charge batteries", §V.A), so every day
        // starts from full charge and batteries never sulphate at low
        // SoC overnight.
        if !self.in_window {
            for b in 0..self.banks {
                let battery = self.batteries.unit(b).expect("index in range");
                let soc = battery.soc();
                let p = self.chargers[b].charge_power(soc, self.chargers[b].max_power());
                let op = if p.as_f64() > 0.0 {
                    BatteryOp::Charge(p)
                } else {
                    BatteryOp::Idle
                };
                let result = self.batteries.unit_mut(b).expect("index in range").step(
                    op,
                    self.config.ambient,
                    self.now,
                    dt,
                );
                self.grid_charge_energy += result.accepted * dt;
                self.last_currents[b] = result.current.as_f64();
                self.last_voltages[b] = result.terminal_voltage.as_f64();
                let battery = self.batteries.unit(b).expect("index in range");
                let sample = self.sensors[b].sample(
                    battery,
                    Volts::new(self.last_voltages[b]),
                    result.current,
                    self.now,
                );
                for &node in &self.members[b] {
                    self.power_table.record_battery(node, sample);
                }
            }
            return;
        }
        let demands: Vec<Watts> = (0..n)
            .map(|i| self.cluster.host(i).expect("index in range").power(tod))
            .collect();

        for b in 0..self.banks {
            // Every bank hangs off its share of the PV feed proportional
            // to the servers it backs (per-server integration: one node,
            // one bank; shared pools: a rack's worth). The bank's surplus
            // charges its own battery, so load placement really decides
            // which battery suffers — the usage imbalance BAAT-h and
            // BAAT exist to hide.
            let member_nodes = self.members[b].clone();
            let demand: Watts = member_nodes.iter().map(|&m| demands[m]).sum();
            let solar_i = solar_total * (member_nodes.len() as f64 / n as f64);

            let battery_available = self.floored_available(b, dt);
            let soc = self.batteries.unit(b).expect("index in range").soc();
            let acceptance = self.chargers[b].acceptance(soc);
            let routing = self
                .switcher
                .route(demand, solar_i, battery_available, acceptance);

            // Apply the battery operation.
            let op = if routing.battery_to_load.as_f64() > 0.0 {
                BatteryOp::Discharge(routing.battery_to_load)
            } else {
                let p = self.chargers[b].charge_power(soc, routing.surplus_to_charger);
                if p.as_f64() > 0.0 {
                    BatteryOp::Charge(p)
                } else {
                    BatteryOp::Idle
                }
            };
            let result = self.batteries.unit_mut(b).expect("index in range").step(
                op,
                self.config.ambient,
                self.now,
                dt,
            );
            if result.cutoff {
                self.events.push(
                    self.now,
                    Event::BatteryCutoff {
                        node: member_nodes[0],
                    },
                );
            }
            self.last_currents[b] = result.current.as_f64();
            self.last_voltages[b] = result.terminal_voltage.as_f64();

            // Accounting.
            self.unserved_energy += routing.unserved * dt;
            self.curtailed_energy += routing.curtailed * dt;

            // Sensor row into the power table (every member node sees its
            // bank's telemetry, like rack members sharing a UPS monitor).
            let battery = self.batteries.unit(b).expect("index in range");
            let sample = self.sensors[b].sample(
                battery,
                Volts::new(self.last_voltages[b]),
                result.current,
                self.now,
            );
            for &node in &member_nodes {
                self.power_table.record_battery(node, sample);
                self.power_table.record_server(
                    node,
                    ServerPowerRecord {
                        at: self.now,
                        power: demands[node],
                    },
                );
            }

            // Emergency shedding on sustained unserved demand: shut down
            // the hungriest online member first (a shared pool browns out
            // one server at a time, not the whole rack at once).
            if demand.as_f64() > 0.0 {
                if routing.unserved.as_f64() > 0.05 * demand.as_f64() {
                    self.unserved_streak[b] += 1;
                    if self.unserved_streak[b] >= SHUTDOWN_STREAK {
                        let victim = member_nodes
                            .iter()
                            .copied()
                            .filter(|&m| self.cluster.host(m).expect("index in range").is_online())
                            .max_by(|&a, &x| demands[a].as_f64().total_cmp(&demands[x].as_f64()));
                        if let Some(victim) = victim {
                            self.cluster
                                .host_mut(victim)
                                .expect("index in range")
                                .power_off();
                            self.offline_since[victim] = Some(self.now);
                            self.events
                                .push(self.now, Event::ServerShutdown { node: victim });
                        }
                        self.unserved_streak[b] = 0;
                    }
                } else {
                    self.unserved_streak[b] = 0;
                }
            }
        }
    }

    fn try_restarts(&mut self, solar_total: Watts) {
        let n = self.config.nodes;
        let idle = self.config.server_power.idle();
        for i in 0..n {
            let host = self.cluster.host(i).expect("index in range");
            if host.is_online() {
                continue;
            }
            let Some(since) = self.offline_since[i] else {
                continue;
            };
            if self.now.saturating_since(since) < RESTART_DWELL {
                continue;
            }
            let bank = self.bank_of[i];
            let battery = self.batteries.unit(bank).expect("index in range");
            let soc_ok = battery.soc().value() > self.soc_floors[bank].value() + RESTART_SOC_MARGIN;
            let solar_ok = solar_total.as_f64() / n as f64 > idle.as_f64() * 1.2;
            if soc_ok || solar_ok {
                let host = self.cluster.host_mut(i).expect("index in range");
                host.power_on();
                host.resume_all();
                self.offline_since[i] = None;
                self.events.push(self.now, Event::ServerRestart { node: i });
            }
        }
    }

    fn ratings(&self, node: usize) -> BatteryRatings {
        let spec = self
            .batteries
            .unit(self.bank_of[node])
            .expect("index in range")
            .spec();
        BatteryRatings {
            capacity: spec.capacity(),
            lifetime_throughput: spec.lifetime_throughput(),
        }
    }

    /// Builds the read-only system view for policies.
    pub fn build_view(&self) -> SystemView {
        let tod = self.now.time_of_day();
        let nodes = (0..self.config.nodes)
            .map(|i| {
                let bank = self.bank_of[i];
                let share = 1.0 / self.members[bank].len() as f64;
                let battery = self.batteries.unit(bank).expect("index in range");
                let host = self.cluster.host(i).expect("index in range");
                let ratings = self.ratings(i);
                NodeView {
                    node: i,
                    soc: battery.soc(),
                    window_metrics: AgingMetrics::from_accumulator(
                        battery.telemetry().window(),
                        &ratings,
                    ),
                    lifetime_metrics: AgingMetrics::from_accumulator(
                        battery.telemetry().lifetime(),
                        &ratings,
                    ),
                    damage: battery.aging().total_damage(),
                    capacity_fraction: battery.aging().capacity_fraction(),
                    server_power: host.power(tod),
                    utilization: host.utilization(tod),
                    dvfs: host.dvfs(),
                    online: host.is_online(),
                    free_resources: host.free_resources(),
                    vms: host
                        .vms()
                        .map(|vm| VmView {
                            id: vm.id(),
                            kind: vm.kind(),
                            state: vm.state(),
                            progress: vm.progress(),
                        })
                        .collect(),
                    battery_available: self.floored_available(bank, self.config.dt) * share,
                    battery_capacity_wh: battery.effective_capacity().as_f64()
                        * battery.spec().nominal_voltage().as_f64()
                        * share,
                    battery_capacity_ah: battery.spec().capacity().as_f64() * share,
                    battery_lifetime_throughput_ah: battery.spec().lifetime_throughput().as_f64()
                        * share,
                    soc_floor: self.soc_floors[bank],
                    cutoff_events: battery.cutoff_events(),
                    hours_since_full: battery.hours_since_full(),
                }
            })
            .collect();
        SystemView {
            now: self.now,
            tod,
            weather: self.weather_today,
            solar: self.last_solar,
            nodes,
        }
    }

    fn record_row(&mut self, solar: Watts, tod: TimeOfDay) {
        let n = self.config.nodes;
        let row = TraceRow {
            at: self.now,
            solar,
            soc: (0..n)
                .map(|i| {
                    self.batteries
                        .unit(self.bank_of[i])
                        .expect("index in range")
                        .soc()
                        .value()
                })
                .collect(),
            server_power: (0..n)
                .map(|i| self.cluster.host(i).expect("index in range").power(tod))
                .collect(),
            battery_current: (0..n)
                .map(|i| self.last_currents[self.bank_of[i]])
                .collect(),
            work_cumulative: self.cluster.total_work_done(),
        };
        self.recorder.push(row);
    }

    /// Consumes the simulation and produces the final report.
    pub fn into_report(self, policy: &'static str) -> SimReport {
        let completed_jobs = self.cluster.hosts().map(|h| h.completed_jobs()).sum();
        let migrations = self.cluster.migrations_started();
        let nodes = (0..self.config.nodes)
            .map(|i| {
                let battery = self
                    .batteries
                    .unit(self.bank_of[i])
                    .expect("index in range");
                let acc = battery.telemetry().lifetime();
                let ratings = BatteryRatings {
                    capacity: battery.spec().capacity(),
                    lifetime_throughput: battery.spec().lifetime_throughput(),
                };
                NodeReport {
                    node: i,
                    damage: battery.aging().total_damage(),
                    damage_breakdown: *battery.aging().breakdown(),
                    capacity_fraction: battery.aging().capacity_fraction(),
                    lifetime_metrics: AgingMetrics::from_accumulator(acc, &ratings),
                    soc_histogram: acc.soc_time_histogram,
                    deep_discharge_time: acc.deep_discharge_time,
                    observed: acc.observed,
                    cutoff_events: battery.cutoff_events(),
                    downtime: self.downtime[i],
                    full_charge_events: acc.full_charge_events,
                    round_trip_efficiency: acc.round_trip_efficiency(),
                    work_done: self.cluster.host(i).expect("index in range").work_done(),
                }
            })
            .collect();
        SimReport {
            policy,
            days: self.config.days(),
            nodes,
            total_work: self.cluster.total_work_done(),
            completed_jobs,
            migrations,
            unserved_energy: self.unserved_energy,
            curtailed_energy: self.curtailed_energy,
            grid_charge_energy: self.grid_charge_energy,
            recorder: self.recorder,
            events: self.events,
        }
    }
}

/// Convenience: run one configuration under one policy.
///
/// # Errors
///
/// Returns [`SimError`] if the configuration is rejected.
///
/// # Examples
///
/// ```
/// use baat_sim::{run_simulation, RoundRobinPolicy, SimConfig};
/// use baat_solar::Weather;
///
/// let config = SimConfig::prototype_day(Weather::Sunny, 42);
/// let report = run_simulation(config, &mut RoundRobinPolicy::new())?;
/// assert_eq!(report.days, 1);
/// # Ok::<(), baat_sim::SimError>(())
/// ```
pub fn run_simulation<P: Policy>(config: SimConfig, policy: &mut P) -> Result<SimReport, SimError> {
    Ok(Simulation::new(config)?.run(policy))
}

/// Fraction of operating time servers were up, across the run (a simple
/// availability figure).
pub fn availability(report: &SimReport, operating: SimDuration) -> Fraction {
    if operating.is_zero() || report.nodes.is_empty() {
        return Fraction::ONE;
    }
    let total_downtime: f64 = report
        .nodes
        .iter()
        .map(|n| n.downtime.as_secs() as f64)
        .sum();
    let total_operating = operating.as_secs() as f64 * report.nodes.len() as f64;
    Fraction::saturating(1.0 - total_downtime / total_operating)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoundRobinPolicy;

    fn quick_config(weather: Weather) -> SimConfig {
        let mut b = SimConfig::builder();
        b.weather_plan(vec![weather])
            .dt(SimDuration::from_secs(30))
            .sample_every(10)
            .seed(7);
        b.build().unwrap()
    }

    #[test]
    fn one_sunny_day_runs_and_does_work() {
        let report =
            run_simulation(quick_config(Weather::Sunny), &mut RoundRobinPolicy::new()).unwrap();
        assert!(report.total_work > 0.0, "servers must compute");
        assert!(report.completed_jobs > 0, "batch jobs must finish");
        assert!(!report.recorder.is_empty());
        assert_eq!(report.nodes.len(), 6);
    }

    #[test]
    fn batteries_cycle_during_the_day() {
        let report =
            run_simulation(quick_config(Weather::Cloudy), &mut RoundRobinPolicy::new()).unwrap();
        for node in &report.nodes {
            assert!(
                node.lifetime_metrics.nat > 0.0,
                "node {} never discharged",
                node.node
            );
        }
        assert!(report.mean_damage() > 0.0);
    }

    #[test]
    fn rainy_day_stresses_batteries_more_than_sunny() {
        let sunny =
            run_simulation(quick_config(Weather::Sunny), &mut RoundRobinPolicy::new()).unwrap();
        let rainy =
            run_simulation(quick_config(Weather::Rainy), &mut RoundRobinPolicy::new()).unwrap();
        assert!(
            rainy.total_ah_discharged() > sunny.total_ah_discharged(),
            "rainy {} vs sunny {}",
            rainy.total_ah_discharged(),
            sunny.total_ah_discharged()
        );
        assert!(rainy.mean_damage() > sunny.mean_damage());
    }

    #[test]
    fn runs_are_deterministic() {
        let a =
            run_simulation(quick_config(Weather::Cloudy), &mut RoundRobinPolicy::new()).unwrap();
        let b =
            run_simulation(quick_config(Weather::Cloudy), &mut RoundRobinPolicy::new()).unwrap();
        assert_eq!(a.total_work, b.total_work);
        assert_eq!(a.mean_damage(), b.mean_damage());
        assert_eq!(a.events.len(), b.events.len());
    }

    #[test]
    fn servers_idle_outside_operating_window() {
        let report =
            run_simulation(quick_config(Weather::Sunny), &mut RoundRobinPolicy::new()).unwrap();
        // Find a recorded row before 08:30: server power must be zero.
        let early = report
            .recorder
            .rows()
            .iter()
            .find(|r| r.at.time_of_day() < TimeOfDay::from_hm(8, 0))
            .expect("early rows exist");
        assert!(early.server_power.iter().all(|p| p.as_f64() == 0.0));
        // And a midday row with nonzero power.
        let midday = report
            .recorder
            .rows()
            .iter()
            .find(|r| {
                r.at.time_of_day() > TimeOfDay::from_hm(11, 0)
                    && r.at.time_of_day() < TimeOfDay::from_hm(12, 0)
            })
            .expect("midday rows exist");
        assert!(midday.server_power.iter().any(|p| p.as_f64() > 0.0));
    }

    #[test]
    fn pre_aging_increases_reported_damage() {
        let config = quick_config(Weather::Sunny);
        let mut sim = Simulation::new(config).unwrap();
        sim.pre_age_batteries(0.5);
        let mut policy = RoundRobinPolicy::new();
        let report = sim.run(&mut policy);
        assert!(report.mean_damage() >= 0.5);
        for node in &report.nodes {
            assert!(node.capacity_fraction < 0.95);
        }
    }

    #[test]
    fn multi_day_run_advances_clock() {
        let mut b = SimConfig::builder();
        b.weather_plan(vec![Weather::Sunny, Weather::Rainy])
            .dt(SimDuration::from_secs(60))
            .sample_every(10)
            .seed(3);
        let config = b.build().unwrap();
        let report = run_simulation(config, &mut RoundRobinPolicy::new()).unwrap();
        assert_eq!(report.days, 2);
        let last = report.recorder.rows().last().unwrap();
        assert_eq!(last.at.day(), 1);
    }

    #[test]
    fn shared_pool_topology_runs_and_shares_telemetry() {
        use crate::config::BatteryTopology;
        let mut b = SimConfig::builder();
        b.weather_plan(vec![Weather::Cloudy])
            .dt(SimDuration::from_secs(30))
            .sample_every(10)
            .topology(BatteryTopology::SharedPool { pools: 2 })
            .seed(7);
        let config = b.build().unwrap();
        let report = run_simulation(config, &mut RoundRobinPolicy::new()).unwrap();
        assert!(report.total_work > 0.0);
        // Rack members share a bank: their battery stats are identical.
        assert_eq!(report.nodes[0].damage, report.nodes[1].damage);
        assert_eq!(report.nodes[0].damage, report.nodes[2].damage);
        assert_eq!(report.nodes[3].damage, report.nodes[5].damage);
        // The two pools differ (different loads + manufacturing spread).
        assert_ne!(report.nodes[0].damage, report.nodes[3].damage);
    }

    #[test]
    fn shared_pool_must_divide_nodes() {
        use crate::config::BatteryTopology;
        let mut b = SimConfig::builder();
        b.topology(BatteryTopology::SharedPool { pools: 4 }); // 6 % 4 != 0
        assert!(b.build().is_err());
        let mut b2 = SimConfig::builder();
        b2.topology(BatteryTopology::SharedPool { pools: 0 });
        assert!(b2.build().is_err());
    }

    #[test]
    fn shared_pool_sheds_one_server_at_a_time() {
        use crate::config::BatteryTopology;
        use crate::events::Event;
        // One big pool on a rainy day: shedding events must name
        // individual nodes, not kill the whole rack at once.
        let mut b = SimConfig::builder();
        b.weather_plan(vec![Weather::Rainy])
            .dt(SimDuration::from_secs(30))
            .sample_every(10)
            .topology(BatteryTopology::SharedPool { pools: 1 })
            .seed(3);
        let report = run_simulation(b.build().unwrap(), &mut RoundRobinPolicy::new()).unwrap();
        let shutdowns: Vec<usize> = report
            .events
            .iter()
            .filter_map(|e| match e.event {
                Event::ServerShutdown { node } => Some(node),
                _ => None,
            })
            .collect();
        assert!(!shutdowns.is_empty(), "a rainy day must shed load");
        // Nodes survive long enough that sheds happen at distinct times.
        assert!(report.total_work > 0.0);
    }

    #[test]
    fn availability_counts_downtime() {
        let report =
            run_simulation(quick_config(Weather::Rainy), &mut RoundRobinPolicy::new()).unwrap();
        let a = availability(&report, SimDuration::from_hours(10));
        assert!(a.value() <= 1.0);
    }
}
