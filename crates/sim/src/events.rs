//! The simulation event log.

use baat_server::DvfsLevel;
use baat_units::{SimInstant, Soc};
use baat_workload::VmId;

/// A discrete event the engine records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A server was shut down after sustained unserved demand (checkpoint).
    ServerShutdown {
        /// Affected node.
        node: usize,
    },
    /// A server came back after power recovered.
    ServerRestart {
        /// Affected node.
        node: usize,
    },
    /// A policy changed a server's DVFS level.
    DvfsChanged {
        /// Affected node.
        node: usize,
        /// New level.
        level: DvfsLevel,
    },
    /// A policy started a VM migration.
    MigrationStarted {
        /// The VM in flight.
        vm: VmId,
        /// Source node.
        from: usize,
        /// Destination node.
        to: usize,
    },
    /// A requested action could not be applied.
    ActionRejected {
        /// Affected node (source, for migrations).
        node: usize,
    },
    /// A battery refused (part of) a discharge request.
    BatteryCutoff {
        /// Affected node.
        node: usize,
    },
    /// A policy changed a node's SoC floor.
    SocFloorChanged {
        /// Affected node.
        node: usize,
        /// New floor.
        floor: Soc,
    },
    /// A workload arrival could not be placed anywhere.
    PlacementFailed {
        /// The node count at the time (for context).
        node: usize,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// When the event happened.
    pub at: SimInstant,
    /// What happened.
    pub event: Event,
}

/// Append-only event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    events: Vec<TimedEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, at: SimInstant, event: Event) {
        self.events.push(TimedEvent { at, event });
    }

    /// All events in time order.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts events matching a predicate.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.event)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_ordered_and_countable() {
        let mut log = EventLog::new();
        log.push(SimInstant::from_secs(1), Event::ServerShutdown { node: 0 });
        log.push(SimInstant::from_secs(5), Event::ServerRestart { node: 0 });
        log.push(SimInstant::from_secs(9), Event::ServerShutdown { node: 1 });
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(|e| matches!(e, Event::ServerShutdown { .. })), 2);
        let times: Vec<u64> = log.iter().map(|e| e.at.as_secs()).collect();
        assert_eq!(times, vec![1, 5, 9]);
    }

    #[test]
    fn empty_log() {
        let log = EventLog::new();
        assert!(log.is_empty());
        assert_eq!(log.count(|_| true), 0);
    }
}
