//! The simulation event log.

use baat_faults::FaultKind;
use baat_obs::json::JsonLine;
use baat_server::DvfsLevel;
use baat_units::{SimInstant, Soc};
use baat_workload::VmId;

use crate::policy::{Action, ActionOutcome, ActionResult};

/// A discrete event the engine records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A server was shut down after sustained unserved demand (checkpoint).
    ServerShutdown {
        /// Affected node.
        node: usize,
    },
    /// A server came back after power recovered.
    ServerRestart {
        /// Affected node.
        node: usize,
    },
    /// A policy changed a server's DVFS level.
    DvfsChanged {
        /// Affected node.
        node: usize,
        /// New level.
        level: DvfsLevel,
    },
    /// A policy started a VM migration.
    MigrationStarted {
        /// The VM in flight.
        vm: VmId,
        /// Source node.
        from: usize,
        /// Destination node.
        to: usize,
    },
    /// A policy action was processed (applied or rejected with a typed
    /// reason).
    Action {
        /// The action and its result.
        outcome: ActionOutcome,
    },
    /// A battery refused (part of) a discharge request.
    BatteryCutoff {
        /// Affected node.
        node: usize,
    },
    /// A policy changed a node's SoC floor.
    SocFloorChanged {
        /// Affected node.
        node: usize,
        /// New floor.
        floor: Soc,
    },
    /// A workload arrival could not be placed anywhere.
    PlacementFailed {
        /// The node count at the time (for context).
        node: usize,
    },
    /// A planned fault entered force.
    FaultInjected {
        /// The fault now active.
        fault: FaultKind,
    },
    /// A planned fault left force.
    FaultCleared {
        /// The fault that cleared.
        fault: FaultKind,
    },
    /// A node crossed the telemetry staleness bound (entering degraded
    /// mode) or recovered fresh telemetry (leaving it).
    DegradedMode {
        /// Affected node.
        node: usize,
        /// `true` on entry, `false` on exit.
        active: bool,
    },
}

impl Event {
    /// Stable snake-case kind name used in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ServerShutdown { .. } => "server_shutdown",
            Event::ServerRestart { .. } => "server_restart",
            Event::DvfsChanged { .. } => "dvfs_changed",
            Event::MigrationStarted { .. } => "migration_started",
            Event::Action { .. } => "action",
            Event::BatteryCutoff { .. } => "battery_cutoff",
            Event::SocFloorChanged { .. } => "soc_floor_changed",
            Event::PlacementFailed { .. } => "placement_failed",
            Event::FaultInjected { .. } => "fault_injected",
            Event::FaultCleared { .. } => "fault_cleared",
            Event::DegradedMode { .. } => "degraded_mode",
        }
    }
}

fn fault_fields(line: &mut JsonLine, fault: &FaultKind) {
    line.str_field("fault", fault.name());
    if let Some(target) = fault.target() {
        line.u64_field("target", target as u64);
    }
    if let Some(param) = fault.param() {
        line.f64_field("param", param);
    }
}

fn action_fields(line: &mut JsonLine, action: &Action) {
    match action {
        Action::SetDvfs { node, level } => {
            line.str_field("action", "set_dvfs")
                .u64_field("node", *node as u64)
                .str_field("level", level.name());
        }
        Action::Migrate { vm, target } => {
            line.str_field("action", "migrate")
                .u64_field("vm", vm.0)
                .u64_field("target", *target as u64);
        }
        Action::SetSocFloor { node, floor } => {
            line.str_field("action", "set_soc_floor")
                .u64_field("node", *node as u64)
                .f64_field("floor", floor.value());
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// When the event happened.
    pub at: SimInstant,
    /// What happened.
    pub event: Event,
}

impl TimedEvent {
    /// Serializes the event as one JSON object line.
    pub fn to_json(&self) -> String {
        let mut line = JsonLine::new();
        line.u64_field("at_s", self.at.as_secs())
            .str_field("kind", self.event.kind());
        match &self.event {
            Event::ServerShutdown { node }
            | Event::ServerRestart { node }
            | Event::BatteryCutoff { node }
            | Event::PlacementFailed { node } => {
                line.u64_field("node", *node as u64);
            }
            Event::DvfsChanged { node, level } => {
                line.u64_field("node", *node as u64)
                    .str_field("level", level.name());
            }
            Event::MigrationStarted { vm, from, to } => {
                line.u64_field("vm", vm.0)
                    .u64_field("from", *from as u64)
                    .u64_field("to", *to as u64);
            }
            Event::Action { outcome } => {
                action_fields(&mut line, &outcome.action);
                match outcome.result {
                    ActionResult::Applied => {
                        line.str_field("result", "applied");
                    }
                    ActionResult::Rejected(reason) => {
                        line.str_field("result", "rejected")
                            .str_field("reason", reason.name());
                    }
                }
            }
            Event::SocFloorChanged { node, floor } => {
                line.u64_field("node", *node as u64)
                    .f64_field("floor", floor.value());
            }
            Event::FaultInjected { fault } | Event::FaultCleared { fault } => {
                fault_fields(&mut line, fault);
            }
            Event::DegradedMode { node, active } => {
                line.u64_field("node", *node as u64)
                    .bool_field("active", *active);
            }
        }
        line.finish()
    }
}

/// Append-only event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    events: Vec<TimedEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, at: SimInstant, event: Event) {
        self.events.push(TimedEvent { at, event });
    }

    /// All events in time order.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts events matching a predicate.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.event)).count()
    }

    /// Renders the log as JSONL (one event per line, time order).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_ordered_and_countable() {
        let mut log = EventLog::new();
        log.push(SimInstant::from_secs(1), Event::ServerShutdown { node: 0 });
        log.push(SimInstant::from_secs(5), Event::ServerRestart { node: 0 });
        log.push(SimInstant::from_secs(9), Event::ServerShutdown { node: 1 });
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(|e| matches!(e, Event::ServerShutdown { .. })), 2);
        let times: Vec<u64> = log.iter().map(|e| e.at.as_secs()).collect();
        assert_eq!(times, vec![1, 5, 9]);
    }

    #[test]
    fn empty_log() {
        let log = EventLog::new();
        assert!(log.is_empty());
        assert_eq!(log.count(|_| true), 0);
    }
}
