//! Error types for simulation configuration and execution.
//!
//! `SimError` is the workspace's unifying error: every substrate error
//! converts into it via `From`, so the engine propagates failures with
//! `?` instead of panicking, and callers can still reach the typed
//! source through [`std::error::Error::source`] or by matching the
//! wrapper variant.

use baat_battery::BatteryError;
use baat_power::PowerError;
use baat_server::ServerError;
use baat_solar::SolarError;
use baat_workload::WorkloadError;

use crate::snapshot::SnapshotError;

/// Errors raised while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// The battery substrate failed.
    Battery(BatteryError),
    /// The power-path substrate (switcher/charger/sensor) failed.
    Power(PowerError),
    /// The server/cluster substrate failed.
    Server(ServerError),
    /// The solar substrate failed.
    Solar(SolarError),
    /// The workload substrate failed.
    Workload(WorkloadError),
    /// A checkpoint snapshot could not be encoded, decoded or applied.
    Snapshot(SnapshotError),
}

impl SimError {
    /// Builds an [`SimError::InvalidConfig`] from any displayable reason.
    pub fn invalid_config(field: &'static str, reason: impl core::fmt::Display) -> Self {
        SimError::InvalidConfig {
            field,
            reason: reason.to_string(),
        }
    }
}

impl From<BatteryError> for SimError {
    fn from(err: BatteryError) -> Self {
        SimError::Battery(err)
    }
}

impl From<PowerError> for SimError {
    fn from(err: PowerError) -> Self {
        SimError::Power(err)
    }
}

impl From<ServerError> for SimError {
    fn from(err: ServerError) -> Self {
        SimError::Server(err)
    }
}

impl From<SolarError> for SimError {
    fn from(err: SolarError) -> Self {
        SimError::Solar(err)
    }
}

impl From<WorkloadError> for SimError {
    fn from(err: WorkloadError) -> Self {
        SimError::Workload(err)
    }
}

impl From<SnapshotError> for SimError {
    fn from(err: SnapshotError) -> Self {
        SimError::Snapshot(err)
    }
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid simulation config field `{field}`: {reason}")
            }
            SimError::Battery(e) => write!(f, "battery subsystem: {e}"),
            SimError::Power(e) => write!(f, "power subsystem: {e}"),
            SimError::Server(e) => write!(f, "server subsystem: {e}"),
            SimError::Solar(e) => write!(f, "solar subsystem: {e}"),
            SimError::Workload(e) => write!(f, "workload subsystem: {e}"),
            SimError::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidConfig { .. } => None,
            SimError::Battery(e) => Some(e),
            SimError::Power(e) => Some(e),
            SimError::Server(e) => Some(e),
            SimError::Solar(e) => Some(e),
            SimError::Workload(e) => Some(e),
            SimError::Snapshot(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wrapped_errors_expose_their_source() {
        let inner = ServerError::UnknownServer { index: 9, len: 6 };
        let err = SimError::from(inner.clone());
        assert!(err.to_string().contains("server subsystem"));
        assert!(err.to_string().contains("index 9"));
        let source = err.source().expect("wrapper has a source");
        assert_eq!(source.to_string(), inner.to_string());
    }

    #[test]
    fn invalid_config_has_no_source() {
        let err = SimError::invalid_config("nodes", "must be positive");
        assert!(err.source().is_none());
        assert!(err.to_string().contains("nodes"));
    }
}
