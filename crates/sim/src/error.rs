//! Error types for simulation configuration and execution.

/// Errors raised while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// An underlying component rejected a setup parameter.
    Component {
        /// Which subsystem failed.
        subsystem: &'static str,
        /// The component's error message.
        message: String,
    },
}

impl SimError {
    /// Wraps a component error under a subsystem label.
    pub fn component(subsystem: &'static str, err: impl core::fmt::Display) -> Self {
        SimError::Component {
            subsystem,
            message: err.to_string(),
        }
    }
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid simulation config field `{field}`: {reason}")
            }
            SimError::Component { subsystem, message } => {
                write!(f, "{subsystem} setup failed: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_wrapper_preserves_message() {
        let err = SimError::component("battery", "bad spec");
        assert!(err.to_string().contains("battery"));
        assert!(err.to_string().contains("bad spec"));
    }
}
