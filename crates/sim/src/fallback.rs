//! The conservative fallback scheme for degraded nodes.
//!
//! When a node's telemetry goes stale past the configured bound, the
//! engine cannot trust the policy's battery-aware decisions for it (the
//! policy is reading last-known-good data). The prototype's answer is to
//! fail safe: raise the discharge floor so the battery is preserved, and
//! throttle the server so the unknown battery is asked for as little as
//! possible. [`FallbackScheme`] issues exactly those two actions per
//! degraded node, through the same typed actuation path policies use.
//!
//! The scheme honours the actuation feedback contract: an action the
//! engine rejected on one control interval is **never re-issued on the
//! next** — it may be retried one interval later, matching how the
//! prototype's controller backs off from failed Xen commands.

use baat_server::DvfsLevel;
use baat_units::Soc;

use crate::policy::{Action, ActionOutcome};

/// The SoC floor forced on a degraded node: half charge preserves the
/// battery through a sensing blackout of several hours.
pub const FALLBACK_SOC_FLOOR: f64 = 0.5;

/// The DVFS level forced on a degraded node: the deepest throttle.
pub const FALLBACK_DVFS: DvfsLevel = DvfsLevel::P4;

/// Per-node state the fallback scheme needs to decide its actions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FallbackInput {
    /// Node index.
    pub node: usize,
    /// `true` if the node is currently degraded.
    pub degraded: bool,
    /// The node's SoC floor currently in force.
    pub soc_floor: Soc,
    /// The node's current DVFS level.
    pub dvfs: DvfsLevel,
}

/// Issues conservative actions for degraded nodes, never repeating an
/// action rejected on the immediately preceding interval.
#[derive(Debug, Clone, Default)]
pub struct FallbackScheme {
    rejected_last: Vec<Action>,
}

impl FallbackScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans this interval's fallback actions from the per-node state:
    /// for every degraded node whose floor is below
    /// [`FALLBACK_SOC_FLOOR`] or whose DVFS is above [`FALLBACK_DVFS`],
    /// the corrective action — minus anything rejected last interval.
    pub fn plan(&self, nodes: &[FallbackInput]) -> Vec<Action> {
        let mut actions = Vec::new();
        for n in nodes {
            if !n.degraded {
                continue;
            }
            if n.soc_floor.value() < FALLBACK_SOC_FLOOR {
                actions.push(Action::SetSocFloor {
                    node: n.node,
                    floor: Soc::saturating(FALLBACK_SOC_FLOOR),
                });
            }
            if n.dvfs != FALLBACK_DVFS {
                actions.push(Action::SetDvfs {
                    node: n.node,
                    level: FALLBACK_DVFS,
                });
            }
        }
        actions
            .into_iter()
            .filter(|a| !self.rejected_last.contains(a))
            .collect()
    }

    /// Records this interval's outcomes; the rejected actions are
    /// excluded from the next [`FallbackScheme::plan`] call.
    pub fn record_outcomes(&mut self, outcomes: &[ActionOutcome]) {
        self.rejected_last = outcomes
            .iter()
            .filter(|o| o.is_rejected())
            .map(|o| o.action)
            .collect();
    }

    /// Checkpoint view: the actions rejected on the last interval.
    pub fn rejected_last(&self) -> &[Action] {
        &self.rejected_last
    }

    /// Rebuilds the scheme at a saved position (see
    /// [`FallbackScheme::rejected_last`]).
    pub fn restore(rejected_last: Vec<Action>) -> Self {
        Self { rejected_last }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ActionResult, RejectReason};

    fn degraded(node: usize) -> FallbackInput {
        FallbackInput {
            node,
            degraded: true,
            soc_floor: Soc::EMPTY,
            dvfs: DvfsLevel::P0,
        }
    }

    #[test]
    fn healthy_nodes_get_no_actions() {
        let scheme = FallbackScheme::new();
        let input = [FallbackInput {
            node: 0,
            degraded: false,
            soc_floor: Soc::EMPTY,
            dvfs: DvfsLevel::P0,
        }];
        assert!(scheme.plan(&input).is_empty());
    }

    #[test]
    fn degraded_node_gets_floor_and_throttle_once() {
        let scheme = FallbackScheme::new();
        let actions = scheme.plan(&[degraded(2)]);
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            actions[0],
            Action::SetSocFloor { node: 2, floor } if floor.value() == FALLBACK_SOC_FLOOR
        ));
        assert!(matches!(
            actions[1],
            Action::SetDvfs { node: 2, level } if level == FALLBACK_DVFS
        ));
        // Once the state is conservative, nothing more is issued.
        let settled = [FallbackInput {
            node: 2,
            degraded: true,
            soc_floor: Soc::saturating(FALLBACK_SOC_FLOOR),
            dvfs: FALLBACK_DVFS,
        }];
        assert!(scheme.plan(&settled).is_empty());
    }

    #[test]
    fn rejected_action_is_not_reissued_next_interval() {
        let mut scheme = FallbackScheme::new();
        let first = scheme.plan(&[degraded(1)]);
        assert_eq!(first.len(), 2);
        // The engine rejects the floor action (say the node vanished).
        scheme.record_outcomes(&[
            ActionOutcome {
                action: first[0],
                result: ActionResult::Rejected(RejectReason::UnknownNode),
            },
            ActionOutcome {
                action: first[1],
                result: ActionResult::Applied,
            },
        ]);
        let second = scheme.plan(&[degraded(1)]);
        assert!(
            !second.contains(&first[0]),
            "a just-rejected action must not repeat"
        );
        // With no fresh rejection recorded, the interval after may retry.
        scheme.record_outcomes(&[]);
        let third = scheme.plan(&[degraded(1)]);
        assert!(third.contains(&first[0]));
    }
}
