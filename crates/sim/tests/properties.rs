//! Property-based tests for engine-level invariants, run on coarse
//! timesteps to keep the case count affordable.

use baat_sim::{
    run_simulation, FaultMix, FaultPlan, RoundRobinPolicy, ScratchPlacement, SimConfig, Simulation,
};
use baat_solar::Weather;
use baat_testkit::prelude::*;
use baat_units::SimDuration;

fn weather_strategy() -> impl Strategy<Value = Weather> {
    prop_oneof![
        Just(Weather::Sunny),
        Just(Weather::Cloudy),
        Just(Weather::Rainy),
    ]
}

fn coarse_config(weather: Weather, seed: u64, nodes: usize) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![weather])
        .nodes(nodes)
        .dt(SimDuration::from_secs(300))
        .control_interval(SimDuration::from_secs(300))
        .sample_every(2)
        .seed(seed);
    b.build().expect("coarse config is valid")
}

/// The coarse config plus a seeded heavy fault plan over its topology.
fn faulted_config(weather: Weather, seed: u64, nodes: usize) -> SimConfig {
    let plan = FaultPlan::generate(seed, 1, nodes, nodes, &FaultMix::heavy());
    let mut b = SimConfig::builder();
    b.weather_plan(vec![weather])
        .nodes(nodes)
        .dt(SimDuration::from_secs(300))
        .control_interval(SimDuration::from_secs(300))
        .sample_every(2)
        .seed(seed)
        .faults(plan);
    b.build().expect("faulted config is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SoC traces stay in [0, 1] for any weather/seed/fleet size.
    #[test]
    fn soc_always_bounded(weather in weather_strategy(), seed in 0u64..500, nodes in 1usize..8) {
        let report = run_simulation(
            coarse_config(weather, seed, nodes),
            &mut RoundRobinPolicy::new(),
        ).expect("simulation runs");
        for row in report.recorder.rows() {
            for &soc in &row.soc {
                prop_assert!((0.0..=1.0).contains(&soc), "soc {soc}");
            }
        }
    }

    /// Damage is non-negative, monotone with usage, and every node report
    /// is internally consistent.
    #[test]
    fn reports_are_consistent(weather in weather_strategy(), seed in 0u64..500) {
        let report = run_simulation(
            coarse_config(weather, seed, 6),
            &mut RoundRobinPolicy::new(),
        ).expect("simulation runs");
        for node in &report.nodes {
            prop_assert!(node.damage >= 0.0);
            prop_assert!((0.5..=1.0).contains(&node.capacity_fraction));
            prop_assert!(node.deep_discharge_time <= node.observed);
            let hist_total: u64 = node.soc_histogram.iter().map(|d| d.as_secs()).sum();
            prop_assert_eq!(hist_total, node.observed.as_secs());
            prop_assert!(node.work_done >= 0.0);
        }
        prop_assert!(report.unserved_energy.as_f64() >= 0.0);
        prop_assert!(report.curtailed_energy.as_f64() >= 0.0);
        prop_assert!(report.grid_charge_energy.as_f64() >= 0.0);
        let node_work: f64 = report.nodes.iter().map(|n| n.work_done).sum();
        prop_assert!((node_work - report.total_work).abs() < 1e-6);
    }

    /// Determinism: the same config twice gives the same report skeleton.
    #[test]
    fn runs_are_deterministic(weather in weather_strategy(), seed in 0u64..500) {
        let a = run_simulation(coarse_config(weather, seed, 6), &mut RoundRobinPolicy::new())
            .expect("simulation runs");
        let b = run_simulation(coarse_config(weather, seed, 6), &mut RoundRobinPolicy::new())
            .expect("simulation runs");
        prop_assert_eq!(a.total_work, b.total_work);
        prop_assert_eq!(a.completed_jobs, b.completed_jobs);
        prop_assert_eq!(a.events.len(), b.events.len());
    }

    /// An explicitly-set empty fault plan is bit-identical to the
    /// fault-free default: installing the subsystem perturbs nothing.
    #[test]
    fn empty_fault_plan_is_bit_identical(weather in weather_strategy(), seed in 0u64..500) {
        let baseline = run_simulation(coarse_config(weather, seed, 6), &mut RoundRobinPolicy::new())
            .expect("simulation runs");
        let mut b = SimConfig::builder();
        b.weather_plan(vec![weather])
            .nodes(6)
            .dt(SimDuration::from_secs(300))
            .control_interval(SimDuration::from_secs(300))
            .sample_every(2)
            .seed(seed)
            .faults(FaultPlan::new());
        let with_empty_plan = run_simulation(
            b.build().expect("config valid"),
            &mut RoundRobinPolicy::new(),
        ).expect("simulation runs");
        prop_assert_eq!(baseline, with_empty_plan);
    }

    /// Snapshot-forked runs are bit-identical to from-scratch runs: a
    /// clean prefix advanced once, cloned, and finished per variant
    /// (with or without a fault plan installed at the fork point) must
    /// reproduce the monolithic run byte for byte.
    #[test]
    fn forked_runs_are_bit_identical_to_from_scratch(weather in weather_strategy(), seed in 0u64..500) {
        let clean_cfg = coarse_config(weather, seed, 6);
        let faulted_cfg = faulted_config(weather, seed, 6);
        let plan = faulted_cfg.faults.clone();
        let dt_secs = clean_cfg.dt.as_secs();

        // Shared warm-up: stop before the window opens and before the
        // earliest fault arms.
        let mut prefix = Simulation::new(clean_cfg.clone()).expect("sim builds");
        let earliest = plan
            .faults()
            .iter()
            .map(|s| s.start.as_secs() / dt_secs)
            .min()
            .unwrap_or(u64::MAX);
        let fork = prefix.policy_free_prefix_steps().min(earliest);
        prefix.run_steps(&mut RoundRobinPolicy::new(), fork).expect("prefix runs");

        let clean_fork = prefix.clone().run_remaining(&mut RoundRobinPolicy::new())
            .expect("clean fork runs");
        let mut faulted_fork_sim = prefix.clone();
        faulted_fork_sim.install_fault_plan(plan).expect("plan installs at fork");
        let faulted_fork = faulted_fork_sim.run_remaining(&mut RoundRobinPolicy::new())
            .expect("faulted fork runs");

        let clean_scratch = run_simulation(clean_cfg, &mut RoundRobinPolicy::new())
            .expect("simulation runs");
        let faulted_scratch = run_simulation(faulted_cfg, &mut RoundRobinPolicy::new())
            .expect("simulation runs");
        prop_assert_eq!(clean_fork, clean_scratch);
        prop_assert_eq!(faulted_fork, faulted_scratch);
    }

    /// The incremental placement ranker is unobservable: a policy served
    /// by the engine's dirty-set fleet ranker ([`RoundRobinPolicy`]
    /// declares a placement spec) must produce bit-identical reports to
    /// the same policy masked behind [`ScratchPlacement`], which forces
    /// the legacy recompute-from-`SystemView` path — across clean runs,
    /// arbitrary fleet sizes, and heavy fault plans (degraded nodes,
    /// host failures, mode switches all invalidating mid-run).
    #[test]
    fn incremental_placement_matches_scratch(
        weather in weather_strategy(),
        seed in 0u64..500,
        nodes in 1usize..8,
    ) {
        let clean_fast = run_simulation(
            coarse_config(weather, seed, nodes),
            &mut RoundRobinPolicy::new(),
        ).expect("fast clean run");
        let clean_scratch = run_simulation(
            coarse_config(weather, seed, nodes),
            &mut ScratchPlacement(RoundRobinPolicy::new()),
        ).expect("scratch clean run");
        prop_assert_eq!(clean_fast, clean_scratch);

        let faulted_fast = run_simulation(
            faulted_config(weather, seed, nodes),
            &mut RoundRobinPolicy::new(),
        ).expect("fast faulted run");
        let faulted_scratch = run_simulation(
            faulted_config(weather, seed, nodes),
            &mut ScratchPlacement(RoundRobinPolicy::new()),
        ).expect("scratch faulted run");
        prop_assert_eq!(faulted_fast, faulted_scratch);
    }

    /// Engine invariants survive arbitrary generated fault plans: SoC
    /// traces stay in [0, 1], reports stay internally consistent, and
    /// the perturbed run is byte-for-byte replayable from its seed.
    #[test]
    fn invariants_hold_under_faults(weather in weather_strategy(), seed in 0u64..500) {
        let report = run_simulation(
            faulted_config(weather, seed, 6),
            &mut RoundRobinPolicy::new(),
        ).expect("faulted simulation runs");
        for row in report.recorder.rows() {
            for &soc in &row.soc {
                prop_assert!((0.0..=1.0).contains(&soc), "soc {soc}");
            }
        }
        for node in &report.nodes {
            prop_assert!(node.damage >= 0.0);
            prop_assert!(node.work_done >= 0.0);
        }
        let replay = run_simulation(
            faulted_config(weather, seed, 6),
            &mut RoundRobinPolicy::new(),
        ).expect("faulted simulation runs");
        prop_assert_eq!(report.events.to_jsonl(), replay.events.to_jsonl());
    }
}

/// A fork must happen before the earliest fault arms: installing a plan
/// whose first window has already opened would skip its transition, so
/// the engine rejects it with a typed error.
#[test]
fn installing_a_plan_past_its_onset_is_rejected() {
    use baat_sim::FaultKind;
    use baat_units::{SimDuration as Dur, SimInstant};

    let mut sim = Simulation::new(coarse_config(Weather::Sunny, 7, 6)).expect("sim builds");
    sim.run_steps(&mut RoundRobinPolicy::new(), 10)
        .expect("prefix runs");
    let mut plan = FaultPlan::new();
    plan.push(baat_sim::FaultSpec {
        kind: FaultKind::PvOutage,
        start: SimInstant::from_secs(60),
        duration: Dur::from_secs(600),
    });
    let err = sim
        .install_fault_plan(plan)
        .expect_err("onset predates fork");
    assert!(err.to_string().contains("fork"), "got: {err}");
}

/// The same faulted seed produces a byte-identical event log no matter
/// how many runs execute concurrently: fault injection shares no state
/// across simulations and never consults thread identity.
#[test]
fn faulted_event_logs_are_thread_invariant() {
    let reference = run_simulation(
        faulted_config(Weather::Cloudy, 77, 6),
        &mut RoundRobinPolicy::new(),
    )
    .expect("simulation runs")
    .events
    .to_jsonl();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                run_simulation(
                    faulted_config(Weather::Cloudy, 77, 6),
                    &mut RoundRobinPolicy::new(),
                )
                .expect("simulation runs")
                .events
                .to_jsonl()
            })
        })
        .collect();
    for handle in handles {
        let jsonl = handle.join().expect("thread completes");
        assert_eq!(jsonl, reference, "event log must not depend on threading");
    }
}
