//! The resume-equivalence test layer for versioned [`SimSnapshot`]s.
//!
//! Resume equivalence is pinned three ways:
//!
//! 1. **Property**: over random seeds, weathers, chemistries, fleet
//!    sizes and checkpoint steps, a run snapshotted at an arbitrary
//!    step — serialized to bytes, parsed back, and restored into a
//!    fresh engine + policy — finishes with a report and event JSONL
//!    **byte-identical** to the uninterrupted run (faulted configs
//!    included).
//! 2. **Golden**: a committed binary checkpoint file restores in this
//!    (necessarily different) process and finishes identically to a
//!    from-scratch run; the current encoder also still produces those
//!    exact bytes, pinning format version 1. Regenerate with
//!    `BAAT_UPDATE_GOLDEN=1` only on an intentional format change
//!    (which must bump `SNAPSHOT_VERSION`).
//! 3. **CI**: `ci/check.sh replay` kills a checkpointing console run
//!    mid-flight and resumes it in a fresh process (see `ci/`).
//!
//! Version/config/chemistry skew must surface as typed
//! [`SnapshotError`]s — never a panic, never a silently-wrong resume.

use std::path::PathBuf;

use baat_battery::Chemistry;
use baat_sim::{
    config_hash, ChemistrySpec, FaultMix, FaultPlan, Policy, RoundRobinPolicy, SimConfig, SimError,
    SimSnapshot, Simulation, SnapshotError, SNAPSHOT_VERSION,
};
use baat_solar::Weather;
use baat_testkit::prelude::*;
use baat_units::SimDuration;

fn weather_strategy() -> impl Strategy<Value = Weather> {
    prop_oneof![
        Just(Weather::Sunny),
        Just(Weather::Cloudy),
        Just(Weather::Rainy),
    ]
}

fn chemistry_strategy() -> impl Strategy<Value = Chemistry> {
    prop_oneof![Just(Chemistry::LeadAcid), Just(Chemistry::LiIon)]
}

/// Coarse-timestep config in the given chemistry, optionally with a
/// seeded heavy fault plan (non-empty for every seed), so snapshots
/// carry live fault-injector state.
fn coarse_config(chemistry: Chemistry, weather: Weather, seed: u64, nodes: usize) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![weather])
        .nodes(nodes)
        .dt(SimDuration::from_secs(300))
        .control_interval(SimDuration::from_secs(300))
        .sample_every(2)
        .seed(seed)
        .chemistry(ChemistrySpec::new(chemistry));
    b.build().expect("coarse config is valid")
}

fn faulted_config(chemistry: Chemistry, weather: Weather, seed: u64, nodes: usize) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![weather])
        .nodes(nodes)
        .dt(SimDuration::from_secs(300))
        .control_interval(SimDuration::from_secs(300))
        .sample_every(2)
        .seed(seed)
        .chemistry(ChemistrySpec::new(chemistry))
        .faults(FaultPlan::generate(
            seed,
            1,
            nodes,
            nodes,
            &FaultMix::heavy(),
        ));
    b.build().expect("faulted config is valid")
}

fn total_steps(config: &SimConfig) -> u64 {
    config.days() as u64 * 86_400 / config.dt.as_secs()
}

/// Runs `config` to completion in one piece.
fn straight_run(config: SimConfig) -> baat_sim::SimReport {
    let sim = Simulation::new(config).expect("sim builds");
    let mut policy = RoundRobinPolicy::new();
    sim.run(&mut policy).expect("straight run succeeds")
}

/// Runs `config` to `split` steps, round-trips a policy-inclusive
/// snapshot through bytes, restores a fresh engine + policy from it,
/// and finishes.
fn split_run(config: SimConfig, split: u64) -> baat_sim::SimReport {
    let mut sim = Simulation::new(config.clone()).expect("sim builds");
    let mut policy = RoundRobinPolicy::new();
    sim.run_steps(&mut policy, split).expect("prefix runs");
    let bytes = sim.snapshot_with_policy(&policy).to_bytes();
    drop(sim);
    let snapshot = SimSnapshot::from_bytes(&bytes).expect("bytes parse back");
    let resumed = Simulation::restore(config, &snapshot).expect("snapshot restores");
    let mut fresh_policy = RoundRobinPolicy::new();
    assert!(
        snapshot.apply_policy_state(&mut fresh_policy),
        "policy names match, so state must apply"
    );
    resumed
        .run_remaining(&mut fresh_policy)
        .expect("resumed run succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A simulation cloned (via snapshot bytes) at an arbitrary step and
    /// finished equals the uninterrupted run — both chemistries, with a
    /// non-empty fault plan in the mix.
    #[test]
    fn resume_at_any_step_is_bit_identical(
        weather in weather_strategy(),
        chemistry in chemistry_strategy(),
        seed in 0u64..500,
        nodes in 2usize..6,
        split_permille in 1u64..999,
    ) {
        let config = faulted_config(chemistry, weather, seed, nodes);
        let split = (total_steps(&config) * split_permille / 1000).max(1);
        let straight = straight_run(config.clone());
        let resumed = split_run(config, split);
        // Report equality covers aging, throughput, recorder rows and
        // the event log; JSONL byte-equality additionally pins the
        // serialized artifacts CI compares.
        prop_assert_eq!(&straight, &resumed);
        prop_assert_eq!(straight.events.to_jsonl(), resumed.events.to_jsonl());
        prop_assert_eq!(
            straight.recorder.to_jsonl(),
            resumed.recorder.to_jsonl()
        );
    }

    /// Fault-free runs resume identically too (the injector state is
    /// empty but still round-trips).
    #[test]
    fn clean_runs_resume_identically(
        weather in weather_strategy(),
        chemistry in chemistry_strategy(),
        seed in 0u64..500,
    ) {
        let config = coarse_config(chemistry, weather, seed, 4);
        let split = total_steps(&config) / 2;
        let straight = straight_run(config.clone());
        let resumed = split_run(config, split);
        prop_assert_eq!(straight, resumed);
    }

    /// The state hash is position-independent: pausing a run at STEP and
    /// restoring an earlier checkpoint then re-stepping to STEP land on
    /// the same hash — the invariant `console replay` prints.
    #[test]
    fn replay_lands_on_the_paused_state_hash(
        weather in weather_strategy(),
        chemistry in chemistry_strategy(),
        seed in 0u64..500,
    ) {
        let config = faulted_config(chemistry, weather, seed, 4);
        let steps = total_steps(&config);
        let (checkpoint, target) = (steps / 4, steps / 2);

        let mut paused = Simulation::new(config.clone()).expect("sim builds");
        let mut policy = RoundRobinPolicy::new();
        paused.run_steps(&mut policy, target).expect("paused run");
        let paused_hash = paused.state_hash();

        let mut sim = Simulation::new(config.clone()).expect("sim builds");
        let mut policy = RoundRobinPolicy::new();
        sim.run_steps(&mut policy, checkpoint).expect("prefix runs");
        let bytes = sim.snapshot_with_policy(&policy).to_bytes();
        let snapshot = SimSnapshot::from_bytes(&bytes).expect("bytes parse");
        let mut replayed = Simulation::restore(config, &snapshot).expect("restores");
        let mut fresh = RoundRobinPolicy::new();
        snapshot.apply_policy_state(&mut fresh);
        replayed
            .run_steps(&mut fresh, target - checkpoint)
            .expect("replay steps");
        prop_assert_eq!(replayed.state_hash(), paused_hash);
    }
}

#[test]
fn unsupported_version_is_a_typed_error() {
    let config = coarse_config(Chemistry::LeadAcid, Weather::Cloudy, 7, 3);
    let sim = Simulation::new(config.clone()).expect("sim builds");
    let mut snapshot = sim.snapshot();
    snapshot.version = SNAPSHOT_VERSION + 1;
    match Simulation::restore(config, &snapshot)
        .err()
        .expect("restore must fail")
    {
        SimError::Snapshot(SnapshotError::UnsupportedVersion { found, expected }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(expected, SNAPSHOT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn config_skew_is_a_typed_error() {
    let config = coarse_config(Chemistry::LeadAcid, Weather::Cloudy, 7, 3);
    let sim = Simulation::new(config).expect("sim builds");
    let snapshot = sim.snapshot();
    // Same shape, different seed: the config hash must catch it.
    let skewed = coarse_config(Chemistry::LeadAcid, Weather::Cloudy, 8, 3);
    match Simulation::restore(skewed, &snapshot)
        .err()
        .expect("restore must fail")
    {
        SimError::Snapshot(SnapshotError::ConfigMismatch { snapshot, config }) => {
            assert_ne!(snapshot, config);
        }
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn chemistry_skew_is_a_typed_error() {
    let config = coarse_config(Chemistry::LeadAcid, Weather::Cloudy, 7, 3);
    let sim = Simulation::new(config).expect("sim builds");
    let snapshot = sim.snapshot();
    let li_ion = coarse_config(Chemistry::LiIon, Weather::Cloudy, 7, 3);
    match Simulation::restore(li_ion, &snapshot)
        .err()
        .expect("restore must fail")
    {
        SimError::Snapshot(SnapshotError::ChemistryMismatch { snapshot, config }) => {
            assert_eq!(snapshot, Chemistry::LeadAcid);
            assert_eq!(config, Chemistry::LiIon);
        }
        other => panic!("expected ChemistryMismatch, got {other:?}"),
    }
}

#[test]
fn truncated_and_corrupt_files_are_typed_errors() {
    let config = coarse_config(Chemistry::LeadAcid, Weather::Cloudy, 7, 3);
    let sim = Simulation::new(config).expect("sim builds");
    let bytes = sim.snapshot().to_bytes();

    // Every prefix must fail cleanly, never panic.
    for cut in [0, 4, 8, 12, 13, 21, 29, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            SimSnapshot::from_bytes(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes must not parse"
        );
    }
    // A flipped body bit fails the checksum.
    let mut corrupt = bytes.clone();
    let mid = 37 + (corrupt.len() - 37) / 2;
    corrupt[mid] ^= 0x01;
    match SimSnapshot::from_bytes(&corrupt) {
        Err(SnapshotError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

/// `checkpoint_every` sinks snapshots at interior boundaries only, and
/// the checkpointed run's report equals the uninterrupted one.
#[test]
fn checkpoint_every_sinks_interior_boundaries_and_matches_straight_run() {
    let config = faulted_config(Chemistry::LeadAcid, Weather::Cloudy, 11, 4);
    let steps = total_steps(&config);
    let every = 50;

    let straight = straight_run(config.clone());

    let sim = Simulation::new(config).expect("sim builds");
    let mut policy = RoundRobinPolicy::new();
    let mut seen = Vec::new();
    let report = sim
        .checkpoint_every(&mut policy, every, |snap| {
            seen.push(snap.state.step_index);
            Ok(())
        })
        .expect("checkpointed run succeeds");

    let expected: Vec<u64> = (1..)
        .map(|i| i * every)
        .take_while(|&s| s < steps)
        .collect();
    assert_eq!(
        seen, expected,
        "interior boundaries only, no final snapshot"
    );
    assert_eq!(straight, report);
}

/// Resuming from the *last* snapshot of an interrupted checkpointed run
/// reproduces the uninterrupted artifacts — the library half of the CI
/// kill-and-resume cell.
#[test]
fn interrupted_checkpoint_run_resumes_to_identical_artifacts() {
    let config = faulted_config(Chemistry::LiIon, Weather::Rainy, 23, 4);
    let steps = total_steps(&config);
    let straight = straight_run(config.clone());

    // "Interrupt" by running only to the third boundary, keeping the
    // snapshot bytes a killed process would have flushed to disk.
    let every = steps / 5;
    let mut sim = Simulation::new(config.clone()).expect("sim builds");
    let mut policy = RoundRobinPolicy::new();
    sim.run_steps(&mut policy, every * 3).expect("prefix runs");
    let bytes = sim.snapshot_with_policy(&policy).to_bytes();
    drop(sim);

    let snapshot = SimSnapshot::from_bytes(&bytes).expect("bytes parse");
    let resumed = Simulation::restore(config, &snapshot).expect("restores");
    let mut fresh = RoundRobinPolicy::new();
    snapshot.apply_policy_state(&mut fresh);
    let report = resumed.run_remaining(&mut fresh).expect("resumed run");
    assert_eq!(straight.events.to_jsonl(), report.events.to_jsonl());
    assert_eq!(straight.recorder.to_jsonl(), report.recorder.to_jsonl());
    assert_eq!(straight, report);
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/checkpoint_v1.snap")
}

/// The golden checkpoint's scenario: fixed chemistry, weather, seed,
/// fleet and fault plan, snapshotted at step 120 of 288.
fn golden_config() -> SimConfig {
    faulted_config(Chemistry::LeadAcid, Weather::Cloudy, 4242, 4)
}

const GOLDEN_SPLIT: u64 = 120;

fn golden_bytes_now() -> Vec<u8> {
    let mut sim = Simulation::new(golden_config()).expect("sim builds");
    let mut policy = RoundRobinPolicy::new();
    sim.run_steps(&mut policy, GOLDEN_SPLIT)
        .expect("prefix runs");
    sim.snapshot_with_policy(&policy).to_bytes()
}

/// The committed checkpoint file — written by an earlier process — still
/// parses, carries format version 1 and the scenario's config hash, and
/// byte-matches what the current encoder produces.
#[test]
fn golden_checkpoint_file_is_byte_stable() {
    let actual = golden_bytes_now();
    let path = golden_path();
    if std::env::var_os("BAAT_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden checkpoint");
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden checkpoint {} ({e}); regenerate with BAAT_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        committed, actual,
        "snapshot encoding drifted from the committed checkpoint; an \
         intentional format change must bump SNAPSHOT_VERSION and \
         regenerate with BAAT_UPDATE_GOLDEN=1"
    );
}

/// Cross-process resume: restoring the committed checkpoint file and
/// finishing the run matches a from-scratch run bit for bit.
#[test]
fn golden_checkpoint_resumes_identically_across_processes() {
    let path = golden_path();
    if std::env::var_os("BAAT_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, golden_bytes_now()).expect("write golden checkpoint");
    }
    let snapshot = SimSnapshot::read_file(&path).unwrap_or_else(|e| {
        panic!("golden checkpoint unreadable ({e}); regenerate with BAAT_UPDATE_GOLDEN=1")
    });
    assert_eq!(snapshot.version, SNAPSHOT_VERSION);
    assert_eq!(snapshot.chemistry, Chemistry::LeadAcid);
    assert_eq!(snapshot.config_hash, config_hash(&golden_config()));
    assert_eq!(snapshot.state.step_index, GOLDEN_SPLIT);

    let resumed = Simulation::restore(golden_config(), &snapshot).expect("restores");
    let mut policy = RoundRobinPolicy::new();
    assert!(snapshot.apply_policy_state(&mut policy));
    let report = resumed.run_remaining(&mut policy).expect("resumed run");
    let straight = straight_run(golden_config());
    assert_eq!(straight, report);
}

/// A policy with a different name than the snapshot's recorded state
/// keeps its fresh state (no cross-policy contamination).
#[test]
fn policy_state_only_applies_to_the_matching_policy() {
    struct Renamed(RoundRobinPolicy);
    impl Policy for Renamed {
        fn name(&self) -> &'static str {
            "renamed"
        }
        fn control(
            &mut self,
            view: &baat_sim::SystemView,
            ctx: &baat_sim::ControlCtx<'_>,
        ) -> Vec<baat_sim::Action> {
            self.0.control(view, ctx)
        }
        fn placement_order(
            &mut self,
            kind: baat_workload::WorkloadKind,
            view: &baat_sim::SystemView,
        ) -> Vec<usize> {
            self.0.placement_order(kind, view)
        }
        fn save_state(&self) -> Vec<u64> {
            self.0.save_state()
        }
        fn load_state(&mut self, state: &[u64]) {
            self.0.load_state(state);
        }
    }

    let config = coarse_config(Chemistry::LeadAcid, Weather::Sunny, 3, 3);
    let mut sim = Simulation::new(config).expect("sim builds");
    let mut policy = RoundRobinPolicy::new();
    sim.run_steps(&mut policy, 50).expect("prefix runs");
    let snapshot = sim.snapshot_with_policy(&policy);

    let mut other = Renamed(RoundRobinPolicy::new());
    assert!(!snapshot.apply_policy_state(&mut other));
    assert_eq!(other.0.save_state(), RoundRobinPolicy::new().save_state());
}
