//! Integration tests for causal trace spans, the health monitor and the
//! flight recorder, wired through a full faulted run.
//!
//! The acceptance property: in a seeded faulted run, every
//! `fallback.action` span links via parent ids back to the originating
//! `fault` span (fault → degraded → fallback.action), so the whole
//! chain "fault injected → telemetry staleness → degraded mode →
//! conservative actuation → per-mechanism aging delta" is one linked
//! trace.

use baat_obs::{Obs, SpanRecord};
use baat_sim::{
    FaultKind, FaultMix, FaultPlan, FaultSpec, RoundRobinPolicy, SimConfig, SimReport, Simulation,
};
use baat_solar::Weather;
use baat_units::{SimDuration, SimInstant};

/// A 40-minute sensor dropout: long past the 5-minute staleness bound,
/// so bank 0's nodes enter degraded mode, draw fallback actions, and
/// stay degraded long enough for the sustained-degraded health check.
fn dropout_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.push(FaultSpec {
        kind: FaultKind::SensorDropout { bank: 0 },
        start: SimInstant::from_secs(10 * 3600),
        duration: SimDuration::from_minutes(40),
    });
    plan
}

fn faulted_config(plan: FaultPlan, seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![Weather::Cloudy])
        .dt(SimDuration::from_secs(60))
        .sample_every(30)
        .seed(seed)
        .faults(plan);
    b.build().expect("config is valid")
}

fn run_observed(plan: FaultPlan, seed: u64) -> (SimReport, Obs) {
    let obs = Obs::enabled();
    let sim = Simulation::with_obs(faulted_config(plan, seed), obs.clone()).expect("config valid");
    let report = sim.run(&mut RoundRobinPolicy::new()).expect("run succeeds");
    (report, obs)
}

fn span_by_id(spans: &[SpanRecord], id: u64) -> &SpanRecord {
    spans
        .iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("span {id} referenced but not recorded"))
}

/// Asserts the causal chain for every `fallback.action` span in `spans`:
/// its parent is a `degraded` span whose parent is a `fault` span.
/// Returns how many fallback spans were checked.
fn assert_fallback_chain(spans: &[SpanRecord]) -> usize {
    let fallbacks: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.name == "fallback.action")
        .collect();
    for fb in &fallbacks {
        let parent = fb
            .parent
            .unwrap_or_else(|| panic!("fallback span {} has no parent", fb.id));
        let degraded = span_by_id(spans, parent);
        assert_eq!(
            degraded.name, "degraded",
            "fallback span {} must parent onto a degraded span",
            fb.id
        );
        let grandparent = degraded
            .parent
            .unwrap_or_else(|| panic!("degraded span {} has no fault parent", degraded.id));
        let fault = span_by_id(spans, grandparent);
        assert_eq!(
            fault.name, "fault",
            "degraded span {} must parent onto a fault span",
            degraded.id
        );
    }
    fallbacks.len()
}

#[test]
fn fallback_actions_trace_back_to_the_injected_fault() {
    let (_report, obs) = run_observed(dropout_plan(), 2015);
    let spans = obs.spans();
    assert!(!spans.is_empty(), "a traced faulted run records spans");

    // Ids are sequential and parents always refer to earlier spans.
    for (i, s) in spans.iter().enumerate() {
        assert_eq!(s.id, i as u64 + 1, "span ids are sequential from 1");
        if let Some(p) = s.parent {
            assert!(p < s.id, "parent {p} of span {} must be earlier", s.id);
        }
    }

    let checked = assert_fallback_chain(&spans);
    assert!(checked > 0, "the dropout must provoke fallback actions");

    // The degraded exit attaches an aging delta to the degraded span.
    let delta = spans
        .iter()
        .find(|s| s.name == "aging.delta")
        .expect("degraded exit records an aging delta");
    assert_eq!(span_by_id(&spans, delta.parent.unwrap()).name, "degraded");

    // Roots and lifecycle spans exist alongside the chain.
    assert!(spans.iter().any(|s| s.name == "policy.control"));
    assert!(spans.iter().any(|s| s.name == "charger.mode"));
    let fault = spans
        .iter()
        .find(|s| s.name == "fault")
        .expect("fault span");
    assert!(fault.parent.is_none(), "fault spans are roots");
    assert!(fault.end_s.is_some(), "the cleared fault closes its span");
}

/// The same chain property over a generated light fault mix — the
/// `console --faults light` shape. Seeds are scanned deterministically
/// for one whose plan provokes fallback actions; the chain must then
/// hold for every one of them.
#[test]
fn light_fault_mix_preserves_the_causal_chain() {
    let nodes = 6;
    let mut checked_any = false;
    for seed in 0..64u64 {
        let plan = FaultPlan::generate(seed, 1, nodes, nodes, &FaultMix::light());
        let (_report, obs) = run_observed(plan, seed);
        let spans = obs.spans();
        if assert_fallback_chain(&spans) > 0 {
            checked_any = true;
            break;
        }
    }
    assert!(
        checked_any,
        "no seed in 0..64 produced fallback actions under the light mix"
    );
}

#[test]
fn tracing_and_health_do_not_perturb_the_run() {
    let off = Simulation::new(faulted_config(dropout_plan(), 7))
        .expect("config valid")
        .run(&mut RoundRobinPolicy::new())
        .expect("run succeeds");
    let (on, obs) = run_observed(dropout_plan(), 7);
    assert_eq!(off, on, "obs on/off must be bit-identical under faults");
    assert!(!obs.spans().is_empty());
}

#[test]
fn health_and_flight_exports_capture_the_blackout() {
    let (_report, obs) = run_observed(dropout_plan(), 2015);

    // 40 minutes of stale telemetry at a 60-second control interval is
    // far past the sustained-degraded streak.
    let health = obs.health_jsonl();
    assert!(
        health.contains(r#""check":"sustained_degraded""#),
        "sustained degraded must fire: {health}"
    );

    // Degraded-mode entry dumps the flight ring.
    let flight = obs.flight_jsonl();
    assert!(
        flight.contains(r#""reason":"degraded_mode""#),
        "degraded entry must dump the flight ring"
    );
    // The ring carries the triggering event line.
    assert!(flight.contains(r#""kind":"degraded_mode""#));

    // OpenMetrics export is well-formed and carries the fault counters.
    let om = obs.metrics_openmetrics();
    assert!(om.ends_with("# EOF\n"), "OpenMetrics ends with EOF");
    assert!(om.contains("# TYPE faults_injected counter"));
    assert!(om.contains("faults_injected_total 1"));

    // The spans JSONL round-trips the same span set.
    let jsonl = obs.spans_jsonl();
    assert_eq!(jsonl.lines().count(), obs.spans().len());
    assert!(jsonl.lines().all(|l| l.starts_with(r#"{"span":"#)));
}
