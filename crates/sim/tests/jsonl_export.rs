//! Golden-snapshot tests for the structured JSONL exports.
//!
//! A seeded run's event log, recorder trace and metric snapshot are all
//! deterministic, so their JSONL renderings are pinned byte-for-byte
//! against checked-in golden files. This catches accidental format
//! drift (a renamed field, a reordered key, a float formatting change)
//! that downstream consumers of `events.jsonl` / `trace.jsonl` /
//! `metrics.jsonl` would silently mis-parse.
//!
//! Stage-profile lines carry wall-clock nanoseconds and are inherently
//! non-reproducible; they are checked structurally, never against a
//! golden file.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! BAAT_UPDATE_GOLDEN=1 cargo test -p baat-sim --test jsonl_export
//! ```

use std::path::PathBuf;

use baat_obs::Obs;
use baat_server::DvfsLevel;
use baat_sim::{
    Action, ChemistrySpec, ControlCtx, FaultKind, FaultPlan, FaultSpec, Policy, RejectReason,
    SimConfig, SimReport, Simulation, SystemView,
};
use baat_solar::Weather;
use baat_units::{SimDuration, SimInstant, Soc};
use baat_workload::{VmId, WorkloadKind};

/// A policy that exercises every action kind once, including two that
/// must be rejected, so the golden event log covers both
/// `ActionOutcome` results.
struct ExerciseActions {
    issued: bool,
}

impl Policy for ExerciseActions {
    fn name(&self) -> &'static str {
        "exercise-actions"
    }

    fn control(&mut self, view: &SystemView, _ctx: &ControlCtx<'_>) -> Vec<Action> {
        if self.issued || view.nodes.is_empty() {
            return Vec::new();
        }
        self.issued = true;
        vec![
            Action::SetSocFloor {
                node: 0,
                floor: Soc::saturating(0.35),
            },
            Action::SetDvfs {
                node: 0,
                level: DvfsLevel::P2,
            },
            // Rejected: no such node.
            Action::SetDvfs {
                node: 999,
                level: DvfsLevel::P1,
            },
            // Rejected: no such VM.
            Action::Migrate {
                vm: VmId(u64::MAX),
                target: 0,
            },
        ]
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        (0..view.nodes.len()).collect()
    }
}

fn config() -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![Weather::Cloudy])
        .dt(SimDuration::from_secs(60))
        .sample_every(240)
        .seed(2015);
    b.build().expect("config is valid")
}

fn observed_run() -> (SimReport, Obs) {
    let obs = Obs::enabled();
    let sim = Simulation::with_obs(config(), obs.clone()).expect("config valid");
    let mut policy = ExerciseActions { issued: false };
    let report = sim.run(&mut policy).expect("run succeeds");
    (report, obs)
}

/// A hand-built plan exercising every fault seam: sensors (dropout,
/// noise), the PV feed (outage, derate), a charger, a battery string,
/// a host, and the migration path. The dropout window is long enough to
/// push bank 0 past the default 5-minute staleness bound, so the golden
/// log also pins the degraded-mode transitions and fallback actions.
fn fault_plan() -> FaultPlan {
    let at = |h: u64, m: u64| SimInstant::from_secs(h * 3600 + m * 60);
    let mut plan = FaultPlan::new();
    for (kind, start, minutes) in [
        (FaultKind::MigrationsBlocked, at(9, 0), 7 * 60),
        (FaultKind::SensorDropout { bank: 0 }, at(10, 0), 20),
        (
            FaultKind::SensorNoise {
                bank: 1,
                sigma: 0.05,
            },
            at(10, 0),
            10,
        ),
        (FaultKind::ChargerFailure { bank: 2 }, at(11, 0), 30),
        (FaultKind::BatteryOpenCircuit { bank: 3 }, at(11, 30), 20),
        (FaultKind::PvOutage, at(12, 0), 15),
        (FaultKind::InverterDerate { fraction: 0.5 }, at(13, 0), 30),
        (FaultKind::HostFailure { node: 4 }, at(14, 0), 20),
    ] {
        plan.push(FaultSpec {
            kind,
            start,
            duration: SimDuration::from_minutes(minutes),
        });
    }
    plan
}

fn faulted_config() -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![Weather::Cloudy])
        .dt(SimDuration::from_secs(60))
        .sample_every(240)
        .seed(2015)
        .faults(fault_plan());
    b.build().expect("faulted config is valid")
}

fn faulted_observed_run() -> (SimReport, Obs) {
    let obs = Obs::enabled();
    let sim = Simulation::with_obs(faulted_config(), obs.clone()).expect("config valid");
    let mut policy = ExerciseActions { issued: false };
    let report = sim.run(&mut policy).expect("run succeeds");
    (report, obs)
}

/// The [`config`] run with li-ion node batteries — everything else
/// (weather, seed, sampling, policy) identical, so the golden pins the
/// alternative chemistry's full event stream.
fn li_ion_observed_run() -> (SimReport, Obs) {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![Weather::Cloudy])
        .dt(SimDuration::from_secs(60))
        .sample_every(240)
        .seed(2015)
        .chemistry(ChemistrySpec::li_ion());
    let obs = Obs::enabled();
    let sim = Simulation::with_obs(b.build().expect("li-ion config is valid"), obs.clone())
        .expect("config valid");
    let mut policy = ExerciseActions { issued: false };
    let report = sim.run(&mut policy).expect("run succeeds");
    (report, obs)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BAAT_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with BAAT_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot; if the format change is \
         intentional, regenerate with BAAT_UPDATE_GOLDEN=1"
    );
}

#[test]
fn event_log_jsonl_matches_golden() {
    let (report, _) = observed_run();
    assert_matches_golden("events.jsonl", &report.events.to_jsonl());
}

#[test]
fn recorder_trace_jsonl_matches_golden() {
    let (report, _) = observed_run();
    assert_matches_golden("trace.jsonl", &report.recorder.to_jsonl());
}

#[test]
fn metric_snapshot_jsonl_matches_golden() {
    let (_, obs) = observed_run();
    assert_matches_golden("metrics.jsonl", &obs.metrics_jsonl());
}

#[test]
fn li_ion_event_log_matches_golden() {
    let (report, obs) = li_ion_observed_run();
    let jsonl = report.events.to_jsonl();
    assert_matches_golden("li_ion_events.jsonl", &jsonl);
    // The lead-acid golden must not be re-pinned by accident: the li-ion
    // stream has to actually differ from the lead-acid one.
    let lead_acid =
        std::fs::read_to_string(golden_path("events.jsonl")).expect("lead-acid golden exists");
    assert_ne!(
        jsonl, lead_acid,
        "li-ion run replayed the lead-acid event stream — the chemistry \
         swap did not reach the engine"
    );
    // And the aging gauges are the chemistry's own mechanisms.
    let metrics = obs.metrics_jsonl();
    for gauge in ["battery.aging.calendar", "battery.aging.cycle"] {
        assert!(metrics.contains(gauge), "missing {gauge}");
    }
    assert!(
        !metrics.contains("battery.aging.corrosion"),
        "li-ion run registered lead-acid aging gauges"
    );
}

#[test]
fn profile_jsonl_is_structurally_sound() {
    // Wall-clock timings cannot be golden-pinned; pin the shape instead:
    // one JSON object per exercised stage with calls and total_ns.
    let (_, obs) = observed_run();
    let profile = obs.profile_jsonl();
    assert!(!profile.is_empty(), "enabled run must profile stages");
    for line in profile.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line: {line}"
        );
        for field in ["\"stage\":", "\"calls\":", "\"total_ns\":", "\"mean_ns\":"] {
            assert!(line.contains(field), "line missing {field}: {line}");
        }
    }
    let battery_line = profile
        .lines()
        .find(|l| l.contains("\"stage\":\"battery_step\""))
        .expect("battery step is always exercised");
    assert!(!battery_line.contains("\"calls\":0"));
}

#[test]
fn faulted_event_log_matches_golden() {
    let (report, obs) = faulted_observed_run();
    let jsonl = report.events.to_jsonl();
    assert_matches_golden("faults.jsonl", &jsonl);
    // The log must actually carry the fault vocabulary being pinned.
    for kind in ["fault_injected", "fault_cleared", "degraded_mode"] {
        assert!(
            jsonl.contains(&format!("\"kind\":\"{kind}\"")),
            "faulted run must log {kind} events"
        );
    }
    for fault in [
        "sensor_dropout",
        "sensor_noise",
        "charger_failure",
        "battery_open_circuit",
        "pv_outage",
        "inverter_derate",
        "host_failure",
        "migrations_blocked",
    ] {
        assert!(
            jsonl.contains(&format!("\"fault\":\"{fault}\"")),
            "faulted run must log the {fault} fault"
        );
    }
    // And the fault counters must be registered and populated.
    let metrics = obs.metrics_jsonl();
    for metric in [
        "faults.injected",
        "faults.cleared",
        "faults.active",
        "sim.degraded.nodes",
        "sim.degraded.intervals",
        "sim.fallback.actions",
    ] {
        assert!(
            metrics.contains(&format!("\"name\":\"{metric}\"")),
            "faulted run must register {metric}"
        );
    }
}

#[test]
fn fault_free_run_registers_no_fault_metrics() {
    // The lazy registration contract: a clean run's metric export is
    // exactly the pre-fault set (pinned by metrics.jsonl above), with no
    // zero-valued fault counters leaking in.
    let (_, obs) = observed_run();
    assert!(!obs.metrics_jsonl().contains("faults."));
}

#[test]
fn rejected_actions_surface_with_their_reasons() {
    use baat_sim::Event;
    let (report, _) = observed_run();
    let rejected: Vec<RejectReason> = report
        .events
        .iter()
        .filter_map(|e| match &e.event {
            Event::Action { outcome } => outcome.reject_reason(),
            _ => None,
        })
        .collect();
    assert_eq!(
        rejected,
        vec![RejectReason::UnknownNode, RejectReason::UnknownVm],
        "both bad actions must be rejected, each with its own reason"
    );
    // And the applied ones really were applied.
    let applied = report
        .events
        .iter()
        .filter(|e| matches!(&e.event, Event::Action { outcome } if !outcome.is_rejected()))
        .count();
    assert!(applied >= 2, "floor + DVFS actions must apply");
}
