//! Shard-count invariance for the parallel stepping engine.
//!
//! The engine shards the hot per-bank stages across a worker pool when
//! `SimConfig::threads` is above one, merging shard results in bank
//! order. The contract is *bit-identity*: any thread count produces the
//! same simulated state, the same serialized artifacts, and the same
//! state hash as the sequential reference path. These tests pin that
//! contract over a matrix of shard counts, chemistries and fault plans,
//! and across a snapshot taken mid-parallel-run and resumed at a
//! *different* thread count.

use baat_battery::Chemistry;
use baat_obs::Obs;
use baat_sim::{
    BatteryTopology, ChemistrySpec, FaultMix, FaultPlan, Policy, RoundRobinPolicy, SimConfig,
    SimReport, SimSnapshot, Simulation,
};
use baat_solar::Weather;
use baat_units::SimDuration;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A 12-node per-server fleet (12 banks — enough for uneven shard
/// splits at every count in the matrix) on a coarse timestep.
fn matrix_config(chemistry: Chemistry, light_faults: bool, threads: usize) -> SimConfig {
    let nodes = 12;
    let mut b = SimConfig::builder();
    b.weather_plan(vec![Weather::Cloudy])
        .nodes(nodes)
        .workload_mix(nodes, 60)
        .dt(SimDuration::from_secs(120))
        .control_interval(SimDuration::from_secs(600))
        .sample_every(4)
        .seed(97)
        .chemistry(ChemistrySpec::new(chemistry))
        .threads(threads);
    if light_faults {
        b.faults(FaultPlan::generate(97, 1, nodes, nodes, &FaultMix::light()));
    }
    b.build().expect("matrix config is valid")
}

fn total_steps(config: &SimConfig) -> u64 {
    config.days() as u64 * 86_400 / config.dt.as_secs()
}

/// Runs to completion, returning the final state hash alongside the
/// report (the report alone does not pin RNG tails and scratch state).
fn run_hashed(config: SimConfig) -> (u64, SimReport) {
    let steps = total_steps(&config);
    let mut sim = Simulation::new(config).expect("sim builds");
    let mut policy = RoundRobinPolicy::new();
    sim.run_steps(&mut policy, steps).expect("run completes");
    let hash = sim.state_hash();
    let report = sim.into_report(policy.name()).expect("report builds");
    (hash, report)
}

/// 1/2/4/8 shards × lead-acid/li-ion × clean/light-faults: byte-identical
/// JSONL artifacts and equal state hashes against the sequential
/// reference.
#[test]
fn shard_count_invariance_matrix() {
    for chemistry in [Chemistry::LeadAcid, Chemistry::LiIon] {
        for light_faults in [false, true] {
            let (ref_hash, reference) = run_hashed(matrix_config(chemistry, light_faults, 1));
            let ref_events = reference.events.to_jsonl();
            let ref_trace = reference.recorder.to_jsonl();
            for threads in SHARD_COUNTS {
                let (hash, report) = run_hashed(matrix_config(chemistry, light_faults, threads));
                assert_eq!(
                    hash, ref_hash,
                    "state hash diverged at {threads} threads ({chemistry:?}, light_faults={light_faults})"
                );
                assert_eq!(
                    report.events.to_jsonl(),
                    ref_events,
                    "event JSONL diverged at {threads} threads ({chemistry:?}, light_faults={light_faults})"
                );
                assert_eq!(
                    report.recorder.to_jsonl(),
                    ref_trace,
                    "trace JSONL diverged at {threads} threads ({chemistry:?}, light_faults={light_faults})"
                );
                assert_eq!(
                    report, reference,
                    "report diverged at {threads} threads ({chemistry:?}, light_faults={light_faults})"
                );
            }
        }
    }
}

/// Observed runs are thread-invariant too, including the metric
/// export: every metric except the `exec.*` pool-introspection family
/// (wall-clock figures, registered only when a pool exists) is
/// byte-identical across 1/2/8 threads, and sharded runs do expose the
/// `exec.*` family while sequential runs register none of it — so the
/// CI OpenMetrics golden stays byte-stable at any `--threads`.
#[test]
fn observed_runs_export_identical_metrics_at_any_thread_count() {
    let run_observed = |threads: usize| {
        let config = matrix_config(Chemistry::LeadAcid, true, threads);
        let steps = total_steps(&config);
        let obs = Obs::enabled();
        let mut sim = Simulation::with_obs(config, obs.clone()).expect("sim builds");
        let mut policy = RoundRobinPolicy::new();
        sim.run_steps(&mut policy, steps).expect("run completes");
        (sim.state_hash(), obs)
    };
    let non_exec_metrics = |obs: &Obs| -> String {
        obs.metrics_jsonl()
            .lines()
            .filter(|l| !l.contains("\"name\":\"exec."))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (ref_hash, ref_obs) = run_observed(1);
    assert!(
        !ref_obs
            .snapshot()
            .iter()
            .any(|s| s.name.starts_with("exec.")),
        "a sequential run must register no exec.* metrics"
    );
    let reference = non_exec_metrics(&ref_obs);
    for threads in [2, 8] {
        let (hash, obs) = run_observed(threads);
        assert_eq!(hash, ref_hash, "state hash diverged at {threads} threads");
        assert_eq!(
            non_exec_metrics(&obs),
            reference,
            "metric export (minus exec.*) diverged at {threads} threads"
        );
        let snapshot = obs.snapshot();
        for required in [
            "exec.pool.threads",
            "exec.pool.batches",
            "exec.pool.wall_ns",
        ] {
            assert!(
                snapshot.iter().any(|s| s.name == required),
                "sharded run at {threads} threads is missing {required}"
            );
        }
        assert!(
            snapshot
                .iter()
                .any(|s| s.name.starts_with("exec.worker.") && s.name.ends_with(".busy_ns")),
            "sharded run at {threads} threads exports no per-worker meters"
        );
    }
}

/// Shared pools shard too (fewer banks than threads clamps the shard
/// count; banks stay the independence boundary).
#[test]
fn shared_pool_topology_is_thread_invariant() {
    let build = |threads: usize| {
        let mut b = SimConfig::builder();
        b.weather_plan(vec![Weather::Sunny])
            .nodes(12)
            .workload_mix(12, 60)
            .topology(BatteryTopology::SharedPool { pools: 4 })
            .dt(SimDuration::from_secs(120))
            .control_interval(SimDuration::from_secs(600))
            .sample_every(4)
            .seed(31)
            .threads(threads);
        b.build().expect("shared-pool config is valid")
    };
    let (ref_hash, reference) = run_hashed(build(1));
    for threads in [2, 8] {
        let (hash, report) = run_hashed(build(threads));
        assert_eq!(hash, ref_hash, "state hash diverged at {threads} threads");
        assert_eq!(report, reference, "report diverged at {threads} threads");
    }
}

/// A snapshot taken in the middle of a parallel (4-thread) run restores
/// and finishes identically at *any* thread count: the thread knob is
/// invisible to config identity, so checkpoints move freely between
/// sequential and sharded engines.
#[test]
fn mid_parallel_snapshot_resumes_at_any_thread_count() {
    let parallel = matrix_config(Chemistry::LeadAcid, true, 4);
    let steps = total_steps(&parallel);
    let split = steps / 3;

    let mut sim = Simulation::new(parallel.clone()).expect("sim builds");
    let mut policy = RoundRobinPolicy::new();
    sim.run_steps(&mut policy, split).expect("prefix runs");
    let bytes = sim.snapshot_with_policy(&policy).to_bytes();
    sim.run_steps(&mut policy, steps - split)
        .expect("suffix runs");
    let straight_hash = sim.state_hash();
    let straight = sim.into_report(policy.name()).expect("report builds");

    let snapshot = SimSnapshot::from_bytes(&bytes).expect("bytes parse back");
    for resume_threads in SHARD_COUNTS {
        let config = matrix_config(Chemistry::LeadAcid, true, resume_threads);
        let mut resumed = Simulation::restore(config, &snapshot).expect("snapshot restores");
        let mut fresh = RoundRobinPolicy::new();
        assert!(snapshot.apply_policy_state(&mut fresh));
        resumed
            .run_steps(&mut fresh, steps - split)
            .expect("resumed run completes");
        assert_eq!(
            resumed.state_hash(),
            straight_hash,
            "resume at {resume_threads} threads diverged from the 4-thread run"
        );
        let report = resumed.into_report(fresh.name()).expect("report builds");
        assert_eq!(
            report.events.to_jsonl(),
            straight.events.to_jsonl(),
            "event JSONL diverged resuming at {resume_threads} threads"
        );
        assert_eq!(
            report, straight,
            "report diverged resuming at {resume_threads} threads"
        );
    }
}
